//! Deterministic fault-injection failpoints.
//!
//! A *failpoint* is a named site in production code where a test can
//! inject a fault: `failpoint::hit("omprt.worker.claim")`. When no plan
//! is armed (the production case, and every non-chaos test) a hit is a
//! single relaxed atomic load — no locks, no allocation, no branch the
//! predictor cannot fold away. When a [`FailPlan`] is armed, each hit
//! consults the plan and may execute one of four *arms*:
//!
//! * [`Arm::Panic`] — unwind with an [`InjectedPanic`] payload (a worker
//!   that hits this outside any `catch_unwind` dies, which is how the
//!   pool's watchdog/respawn path is exercised);
//! * [`Arm::Delay`] — sleep for a fixed number of milliseconds (wedged
//!   or slow thread);
//! * [`Arm::Error`] — return [`Action::Error`], which the site maps to
//!   its own failure path (an inspection that cannot complete, a cache
//!   insert that is dropped);
//! * [`Arm::Corrupt`] — return [`Action::Corrupt`], which the site maps
//!   to a data-integrity fault (the guarded harness tampers an index
//!   array between inspection and dispatch).
//!
//! Schedules are *seeded*: [`FailPlan::seeded`] derives, from one `u64`,
//! which sites participate, which arm each uses, and at which hit
//! indices it fires. Per-site hit indices are assigned by an atomic
//! counter, so the k-th hit of a site fires deterministically even when
//! the *thread* that performs the k-th hit varies between runs — chaos
//! runs replay bug-for-bug from their seed.
//!
//! Arming is process-global and serialized: [`arm`] returns an
//! [`ArmedGuard`] that holds a global scope lock, so two chaos tests in
//! one test binary cannot interleave their plans. Counters ([`hits`],
//! [`fired`]) remain readable after the guard drops, until the next
//! [`arm`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Unwind with an [`InjectedPanic`] payload.
    Panic,
    /// Sleep this many milliseconds, then proceed.
    Delay(u64),
    /// Return [`Action::Error`] for the site to map to its failure path.
    Error,
    /// Return [`Action::Corrupt`] for the site to map to a
    /// data-integrity fault.
    Corrupt,
}

/// What the caller of [`hit`] must do. `Panic` and `Delay` arms are
/// executed inside [`hit`] itself and never surface here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Nothing injected; continue normally.
    Proceed,
    /// The site's failure path was requested.
    Error,
    /// The site's corruption path was requested.
    Corrupt,
}

/// Panic payload of an [`Arm::Panic`] firing, distinguishable from real
/// bugs by downcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedPanic {
    /// The site that fired.
    pub site: String,
}

impl std::fmt::Display for InjectedPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failpoint: injected panic at {}", self.site)
    }
}

/// When a rule fires, relative to the site's 0-based hit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fire {
    /// First hit index that fires.
    pub from_hit: u64,
    /// Fire every `period`-th hit from `from_hit` on (1 = every hit).
    pub period: u64,
    /// Stop after this many firings.
    pub max_fires: u64,
}

impl Fire {
    /// Fire exactly once, at hit index `n`.
    pub fn nth(n: u64) -> Fire {
        Fire {
            from_hit: n,
            period: 1,
            max_fires: 1,
        }
    }

    /// Fire on every hit.
    pub fn always() -> Fire {
        Fire {
            from_hit: 0,
            period: 1,
            max_fires: u64::MAX,
        }
    }
}

#[derive(Debug, Clone)]
struct Rule {
    arm: Arm,
    fire: Fire,
}

/// A set of (site → rule) injections, armed via [`arm`].
#[derive(Debug, Clone, Default)]
pub struct FailPlan {
    rules: HashMap<String, Rule>,
}

impl FailPlan {
    /// An empty plan. Arming it injects nothing but still takes the
    /// global chaos scope (useful to serialize failpoint-sensitive tests).
    pub fn new() -> FailPlan {
        FailPlan::default()
    }

    /// Adds (or replaces) a rule for one site.
    pub fn with(mut self, site: &str, arm: Arm, fire: Fire) -> FailPlan {
        self.rules.insert(site.to_string(), Rule { arm, fire });
        self
    }

    /// Derives a reproducible plan from a seed. Each entry of `sites`
    /// names a site and the arms it may legally use (sites on
    /// coordinator-only paths, for example, must never be given
    /// `Arm::Panic`). Roughly two thirds of the sites participate; the
    /// arm, first firing hit, period and firing budget are all drawn
    /// from the seed.
    pub fn seeded(seed: u64, sites: &[(&str, &[Arm])]) -> FailPlan {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FailPlan::new();
        for (site, allowed) in sites {
            if allowed.is_empty() || rng.next() % 100 >= 65 {
                continue;
            }
            let arm = allowed[(rng.next() % allowed.len() as u64) as usize];
            let fire = Fire {
                from_hit: rng.next() % 6,
                period: 1 + rng.next() % 5,
                max_fires: 1 + rng.next() % 3,
            };
            plan = plan.with(site, arm, fire);
        }
        plan
    }

    /// The sites this plan injects at.
    pub fn sites(&self) -> Vec<String> {
        let mut s: Vec<String> = self.rules.keys().cloned().collect();
        s.sort();
        s
    }
}

/// SplitMix64: tiny, seedable, good enough to scatter chaos schedules.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[derive(Debug, Default)]
struct SiteState {
    hits: u64,
    fired: u64,
}

#[derive(Debug, Default)]
struct Active {
    rules: HashMap<String, Rule>,
    sites: HashMap<String, SiteState>,
}

/// Fast-path flag: a disarmed [`hit`] is exactly one relaxed load.
static ARMED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<Active> {
    static STATE: OnceLock<Mutex<Active>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(Active::default()))
}

fn scope() -> &'static Mutex<()> {
    static SCOPE: OnceLock<Mutex<()>> = OnceLock::new();
    SCOPE.get_or_init(|| Mutex::new(()))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Keeps a plan armed; disarms (but keeps counters readable) on drop.
/// Holding the guard also holds the global chaos scope lock, so armed
/// sections in one process are serialized.
pub struct ArmedGuard {
    _scope: MutexGuard<'static, ()>,
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
    }
}

/// Arms a plan process-wide. Blocks until any previously armed scope has
/// been dropped. Counters start at zero.
pub fn arm(plan: FailPlan) -> ArmedGuard {
    let scope_guard = lock(scope());
    {
        let mut st = lock(state());
        st.rules = plan.rules;
        st.sites.clear();
    }
    ARMED.store(true, Ordering::SeqCst);
    ArmedGuard {
        _scope: scope_guard,
    }
}

/// Reports a site hit. Disarmed: one relaxed load, `Action::Proceed`.
/// Armed: bumps the site's hit counter, fires the matching rule if its
/// schedule says so (executing `Panic`/`Delay` in place), and returns
/// the action the caller must map.
#[inline]
pub fn hit(site: &'static str) -> Action {
    if !ARMED.load(Ordering::Relaxed) {
        return Action::Proceed;
    }
    hit_slow(site)
}

#[cold]
fn hit_slow(site: &'static str) -> Action {
    let arm = {
        let mut st = lock(state());
        let entry = st.sites.entry(site.to_string()).or_default();
        let h = entry.hits;
        entry.hits += 1;
        let fired_so_far = entry.fired;
        match st.rules.get(site) {
            Some(rule)
                if h >= rule.fire.from_hit
                    && (h - rule.fire.from_hit).is_multiple_of(rule.fire.period)
                    && fired_so_far < rule.fire.max_fires =>
            {
                let arm = rule.arm;
                // Re-borrow to record the firing (rules and sites are
                // disjoint maps in the same guard).
                if let Some(e) = st.sites.get_mut(site) {
                    e.fired += 1;
                }
                Some(arm)
            }
            _ => None,
        }
    };
    // Act only after the registry lock is dropped: a panic or sleep must
    // never hold it.
    if arm.is_some() {
        subsub_telemetry::instant_labeled(
            subsub_telemetry::EventKind::FailpointTrip,
            subsub_telemetry::Phase::None,
            site,
            0,
        );
    }
    match arm {
        None => Action::Proceed,
        Some(Arm::Panic) => std::panic::panic_any(InjectedPanic {
            site: site.to_string(),
        }),
        Some(Arm::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Action::Proceed
        }
        Some(Arm::Error) => Action::Error,
        Some(Arm::Corrupt) => Action::Corrupt,
    }
}

/// Total hits a site has taken under the current (or last) armed plan.
pub fn hits(site: &str) -> u64 {
    lock(state()).sites.get(site).map_or(0, |s| s.hits)
}

/// Times a site's rule actually fired under the current (or last) plan.
pub fn fired(site: &str) -> u64 {
    lock(state()).sites.get(site).map_or(0, |s| s.fired)
}

type Silencer = Box<dyn Fn(&(dyn std::any::Any + Send)) -> bool + Send + Sync>;

fn silencers() -> &'static Mutex<Vec<Silencer>> {
    static SILENCERS: OnceLock<Mutex<Vec<Silencer>>> = OnceLock::new();
    SILENCERS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Installs (once) a panic hook that suppresses the default "thread
/// panicked" report for [`InjectedPanic`] payloads — chaos suites kill
/// workers on purpose and should not spray stderr — while delegating
/// every real panic to the previous hook.
pub fn silence_injected_panics() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.downcast_ref::<InjectedPanic>().is_some() {
                return;
            }
            if lock(silencers()).iter().any(|pred| pred(payload)) {
                return;
            }
            prev(info);
        }));
    });
}

/// Registers an extra predicate with the hook installed by
/// [`silence_injected_panics`]: any panic whose payload matches is also
/// reported nowhere. Lets chaos harnesses quiet panics that are injected
/// *consequences* carrying a foreign payload type (e.g. a runtime
/// re-raising a region abort caused by an injected worker death) without
/// this crate depending on those types.
pub fn silence_panics_when(
    pred: impl Fn(&(dyn std::any::Any + Send)) -> bool + Send + Sync + 'static,
) {
    silence_injected_panics();
    lock(silencers()).push(Box::new(pred));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_hits_proceed_and_count_nothing() {
        // No plan armed in this test: the fast path must not record hits.
        assert_eq!(hit("unit.nothing"), Action::Proceed);
    }

    #[test]
    fn error_arm_fires_on_schedule() {
        let _g = arm(FailPlan::new().with(
            "unit.err",
            Arm::Error,
            Fire {
                from_hit: 1,
                period: 2,
                max_fires: 2,
            },
        ));
        let got: Vec<Action> = (0..6).map(|_| hit("unit.err")).collect();
        assert_eq!(
            got,
            vec![
                Action::Proceed, // hit 0: before from_hit
                Action::Error,   // hit 1: fires
                Action::Proceed, // hit 2: off-period
                Action::Error,   // hit 3: fires (2nd, budget exhausted)
                Action::Proceed, // hit 4
                Action::Proceed, // hit 5: budget spent
            ]
        );
        assert_eq!(hits("unit.err"), 6);
        assert_eq!(fired("unit.err"), 2);
    }

    #[test]
    fn panic_arm_unwinds_with_typed_payload() {
        silence_injected_panics();
        let _g = arm(FailPlan::new().with("unit.boom", Arm::Panic, Fire::nth(0)));
        let r = std::panic::catch_unwind(|| hit("unit.boom"));
        let payload = r.expect_err("must panic");
        let inj = payload
            .downcast_ref::<InjectedPanic>()
            .expect("typed payload");
        assert_eq!(inj.site, "unit.boom");
        // Second hit: budget spent, proceeds.
        assert_eq!(hit("unit.boom"), Action::Proceed);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_respect_allowed_arms() {
        let sites: &[(&str, &[Arm])] = &[
            ("a", &[Arm::Panic, Arm::Delay(1)]),
            ("b", &[Arm::Error]),
            ("c", &[Arm::Corrupt, Arm::Error]),
            ("d", &[Arm::Delay(2)]),
        ];
        for seed in 0..50u64 {
            let p1 = FailPlan::seeded(seed, sites);
            let p2 = FailPlan::seeded(seed, sites);
            assert_eq!(p1.sites(), p2.sites(), "seed {seed}");
            for (site, rule) in &p1.rules {
                let allowed = sites
                    .iter()
                    .find(|(s, _)| s == site)
                    .map(|(_, a)| *a)
                    .expect("known site");
                assert!(allowed.contains(&rule.arm), "seed {seed} site {site}");
                assert_eq!(p2.rules[site].arm, rule.arm);
                assert_eq!(p2.rules[site].fire, rule.fire);
            }
        }
        // Different seeds eventually give different plans.
        let all_same = (1..20u64)
            .all(|s| FailPlan::seeded(s, sites).sites() == FailPlan::seeded(0, sites).sites());
        assert!(!all_same, "seeds must vary the schedule");
    }

    #[test]
    fn rearming_resets_counters() {
        {
            let _g = arm(FailPlan::new().with("unit.reset", Arm::Error, Fire::always()));
            assert_eq!(hit("unit.reset"), Action::Error);
            assert_eq!(fired("unit.reset"), 1);
        }
        // Counters survive the drop for post-hoc assertions…
        assert_eq!(fired("unit.reset"), 1);
        // …and the disarmed site no longer fires.
        assert_eq!(hit("unit.reset"), Action::Proceed);
        // A fresh arm starts from zero.
        let _g = arm(FailPlan::new());
        assert_eq!(fired("unit.reset"), 0);
        assert_eq!(hit("unit.reset"), Action::Proceed);
        assert_eq!(hits("unit.reset"), 1);
    }
}
