//! The sharded, content-addressed verdict cache at the heart of the
//! service.
//!
//! The per-executor [`subsub_rtcheck::InspectorCache`] keys verdicts on
//! an array's *identity* (name + address + length) and write-version —
//! perfect for one long-lived caller re-running one instance, useless
//! for a service where every request may materialize its own copy of
//! the same logical data at a fresh address. This cache keys on
//! *content*: the [`ValidatedIndexArray`] checksum, its provenance tag,
//! and the inspector kind ([`VerdictKey`]). Two requests carrying
//! bit-identical arrays share one verdict no matter where the bytes
//! live — and, because the key is position-independent, verdicts
//! survive across processes via the `subsub-cache/v2` snapshot
//! ([`crate::snapshot`]).
//!
//! Three properties the service relies on:
//!
//! * **sharding** — the key space is split over N independently-locked
//!   shards (shard = key hash modulo N), so concurrent requests on
//!   different arrays never contend on one global lock;
//! * **single-flight** — racing lookups of the *same* key coalesce:
//!   the first becomes the leader and computes, the rest park on the
//!   shard condvar and are served the leader's verdict. An N-way race
//!   costs exactly one verdict computation;
//! * **bounded memory** — each shard holds a capacity-bounded
//!   [`VerdictCache`] with LRU-ish eviction, so an adversarial client
//!   streaming novel arrays cannot grow the cache without bound.
//!
//! Soundness: a cached verdict describes exactly the content its key's
//! checksum fingerprints. [`ShardedVerdictCache::verdict_for`] accepts
//! only a [`ValidatedIndexArray`] and (optionally, see
//! [`crate::ServiceConfig::paranoid_verify`]) re-verifies it first, so
//! an array tampered through the trust boundary (version bump →
//! checksum refresh) computes a *different key* and misses, while a
//! bypassing writer (stale checksum) is rejected outright. Dispatch
//! additionally re-validates write-versions (the executor's tamper
//! gate), so a verdict — live or warm-started — is never trusted for
//! dispatch on content that drifted after inspection.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use subsub_failpoint as failpoint;
use subsub_omprt::ThreadPool;
use subsub_rtcheck::{
    MonotoneVerdict, ValidatedIndexArray, ValidationError, VerdictCache, FINGERPRINT_VERSION,
};
use subsub_telemetry as telemetry;
use subsub_telemetry::{EventKind, Phase};

/// Which inspector produced a verdict. One monotonicity scan proves
/// both the strict and non-strict flavours, so the requirement is *not*
/// part of the key — the kind names the inspector algorithm, leaving
/// room for the wider pattern language on the roadmap (periodic,
/// block-monotone, injectivity-only inspectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum InspectorKind {
    /// The adjacent-pair monotonicity scan.
    Monotone = 0,
}

impl InspectorKind {
    /// Stable numeric code (snapshot wire form).
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`InspectorKind::code`].
    pub fn from_code(code: u8) -> Option<InspectorKind> {
        match code {
            0 => Some(InspectorKind::Monotone),
            _ => None,
        }
    }
}

/// Content-addressed cache key: checksum, fingerprint scheme, length,
/// provenance tag, and inspector kind. Length rides along so two arrays
/// whose FNV checksums collide across different lengths still key
/// apart; the fingerprint version rides along so a checksum computed
/// under one scheme (the byte-wise v1, the block-folded v2, ...) is
/// never matched against one computed under another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerdictKey {
    /// Content fingerprint from the ingestion trust boundary
    /// (`subsub-fingerprint/v{fp}`).
    pub checksum: u64,
    /// Element count of the fingerprinted content.
    pub len: usize,
    /// Stable tag of where the bytes came from
    /// ([`ValidatedIndexArray::provenance_tag`]).
    pub provenance: u64,
    /// Which inspector the verdict belongs to.
    pub kind: InspectorKind,
    /// Which fingerprint scheme produced `checksum`
    /// ([`FINGERPRINT_VERSION`] for everything this build computes).
    pub fp: u8,
}

impl VerdictKey {
    /// The key for `array` under `kind`. The caller is responsible for
    /// the array being in a verified state (see the module docs).
    pub fn of(array: &ValidatedIndexArray, kind: InspectorKind) -> VerdictKey {
        VerdictKey {
            checksum: array.checksum(),
            len: array.len(),
            provenance: array.provenance_tag(),
            kind,
            fp: FINGERPRINT_VERSION,
        }
    }
}

/// A cached verdict plus where it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedVerdict {
    /// The inspection result.
    pub verdict: MonotoneVerdict,
    /// True when the entry was warm-started from a snapshot rather than
    /// inspected by this process.
    pub warm: bool,
}

/// How a lookup was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Served from a live entry this process inspected.
    Hit,
    /// Served from a warm-started snapshot entry.
    WarmHit,
    /// Waited for a concurrent leader's in-flight inspection.
    Coalesced,
    /// This lookup ran the inspection.
    Miss,
}

impl Lookup {
    /// Everything except a [`Lookup::Miss`] reused an existing or
    /// in-flight inspection.
    pub fn is_hit(self) -> bool {
        !matches!(self, Lookup::Miss)
    }
}

/// Cumulative counters for one sharded cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups served from a live entry.
    pub hits: u64,
    /// Lookups served from a warm-started snapshot entry.
    pub warm_hits: u64,
    /// Lookups that coalesced onto a concurrent leader's inspection.
    pub coalesced: u64,
    /// Lookups that ran an inspection.
    pub misses: u64,
    /// Entries evicted under capacity pressure.
    pub evictions: u64,
    /// Entries currently resident across all shards.
    pub entries: u64,
}

impl ShardStats {
    /// Fraction of lookups that did not inspect (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let reused = self.hits + self.warm_hits + self.coalesced;
        let total = reused + self.misses;
        if total == 0 {
            0.0
        } else {
            reused as f64 / total as f64
        }
    }
}

struct ShardState {
    cache: VerdictCache<VerdictKey, CachedVerdict>,
    inflight: HashSet<VerdictKey>,
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

/// Removes the in-flight marker and wakes waiters even if the leader's
/// compute unwinds — a leaked marker would park every later lookup of
/// the key forever.
struct FlightGuard<'a> {
    shard: &'a Shard,
    key: VerdictKey,
    done: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            let mut st = lock(&self.shard.state);
            st.inflight.remove(&self.key);
            self.shard.cv.notify_all();
        }
    }
}

/// N independently-locked shards of content-keyed verdicts with
/// single-flight inspection. See the module docs.
pub struct ShardedVerdictCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    warm_hits: AtomicU64,
    coalesced: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for ShardedVerdictCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedVerdictCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

fn lock<'a>(m: &'a Mutex<ShardState>) -> MutexGuard<'a, ShardState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ShardedVerdictCache {
    /// A cache of `shards` shards (clamped to at least 1), each bounded
    /// at `per_shard_capacity` entries.
    pub fn new(shards: usize, per_shard_capacity: usize) -> ShardedVerdictCache {
        let shards = shards.max(1);
        ShardedVerdictCache {
            shards: (0..shards)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        cache: VerdictCache::with_capacity(per_shard_capacity),
                        inflight: HashSet::new(),
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
            hits: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &VerdictKey) -> &Shard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    /// The verdict for `array` under `required`-agnostic inspection:
    /// verifies the array first when `paranoid` is set (catching
    /// bypassing writers), then serves the content-keyed verdict,
    /// coalescing concurrent misses on the same key into one verdict
    /// computation.
    ///
    /// A miss is served from the array's block summaries in O(blocks) —
    /// the trust boundary already paid the O(n) scan at ingestion (and
    /// O(Δ) per ranged mutation), and its dirty-window bookkeeping
    /// keeps the summaries current through every sanctioned write.
    /// That summary-derived verdict and the key's checksum describe the
    /// same validated state by construction; `paranoid` mode
    /// additionally proves (by recomputing the fingerprint from raw
    /// data in `verify()`) that the *bytes* still match that state, so
    /// a bypassing writer is rejected before the summaries are
    /// consulted. The `pool` parameter is kept for call-site
    /// compatibility: no per-request O(n) scan remains to parallelize.
    pub fn verdict_for(
        &self,
        array: &ValidatedIndexArray,
        _pool: Option<&ThreadPool>,
        paranoid: bool,
    ) -> Result<(MonotoneVerdict, Lookup), ValidationError> {
        if paranoid {
            array.verify()?;
        }
        let key = VerdictKey::of(array, InspectorKind::Monotone);
        let (verdict, lookup) = self.get_or_compute(key, || array.summary_verdict());
        Ok((verdict, lookup))
    }

    /// Core single-flight lookup: returns the cached verdict for `key`
    /// or runs `compute` exactly once across every concurrent caller of
    /// the same key. `compute` runs outside the shard lock.
    pub fn get_or_compute(
        &self,
        key: VerdictKey,
        compute: impl FnOnce() -> MonotoneVerdict,
    ) -> (MonotoneVerdict, Lookup) {
        let shard = self.shard_of(&key);
        let mut waited = false;
        let mut st = lock(&shard.state);
        loop {
            if let Some(entry) = st.cache.get(&key) {
                let (lookup, counter) = if waited {
                    (Lookup::Coalesced, &self.coalesced)
                } else if entry.warm {
                    (Lookup::WarmHit, &self.warm_hits)
                } else {
                    (Lookup::Hit, &self.hits)
                };
                counter.fetch_add(1, Ordering::Relaxed);
                telemetry::instant(EventKind::CacheHit, Phase::Service, 0, key.len as u64);
                return (entry.verdict, lookup);
            }
            if !st.inflight.contains(&key) {
                st.inflight.insert(key);
                break;
            }
            waited = true;
            st = shard.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        drop(st);
        // Leader: inspect outside the lock. The guard guarantees the
        // in-flight marker is cleared even if `compute` unwinds.
        let mut guard = FlightGuard {
            shard,
            key,
            done: false,
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::instant(EventKind::CacheMiss, Phase::Service, 0, key.len as u64);
        // Chaos site: a panicking or stalled single-flight leader. The
        // FlightGuard above guarantees an unwinding leader clears the
        // in-flight marker and wakes waiters (who elect a new leader),
        // so an injected panic here must never wedge coalesced lookups.
        failpoint::hit("service.flight.leader");
        let verdict = {
            let _span = telemetry::span(Phase::Inspect, 0);
            compute()
        };
        let mut st = lock(&shard.state);
        st.inflight.remove(&key);
        let evicted = st.cache.insert(
            key,
            CachedVerdict {
                verdict,
                warm: false,
            },
        );
        if evicted.is_some() {
            telemetry::instant(EventKind::CacheEvict, Phase::Service, 0, key.len as u64);
        }
        guard.done = true;
        shard.cv.notify_all();
        drop(st);
        (verdict, Lookup::Miss)
    }

    /// Inserts a warm-started entry (snapshot load). Never overwrites a
    /// live entry this process inspected itself.
    pub fn insert_warm(&self, key: VerdictKey, verdict: MonotoneVerdict) {
        let shard = self.shard_of(&key);
        let mut st = lock(&shard.state);
        if st.cache.get(&key).is_none() {
            st.cache.insert(
                key,
                CachedVerdict {
                    verdict,
                    warm: true,
                },
            );
        }
    }

    /// Every resident entry, for snapshotting. Order is unspecified.
    pub fn entries(&self) -> Vec<(VerdictKey, CachedVerdict)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let st = lock(&shard.state);
            out.extend(st.cache.iter().map(|(k, v)| (*k, *v)));
        }
        out
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            lock(&shard.state).cache.clear();
        }
    }

    /// Counter snapshot across all shards.
    pub fn stats(&self) -> ShardStats {
        let mut evictions = 0;
        let mut entries = 0;
        for shard in &self.shards {
            let st = lock(&shard.state);
            evictions += st.cache.evictions();
            entries += st.cache.len() as u64;
        }
        ShardStats {
            hits: self.hits.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsub_rtcheck::Provenance;

    fn ingest(name: &str, data: Vec<usize>) -> ValidatedIndexArray {
        ValidatedIndexArray::ingest(
            name,
            data,
            usize::MAX,
            Provenance::Untrusted {
                source: "shard-test".into(),
            },
        )
        .expect("in-domain")
    }

    #[test]
    fn same_content_different_identity_shares_one_verdict() {
        let cache = ShardedVerdictCache::new(4, 64);
        let a = ingest("a", vec![0, 1, 2, 3]);
        let b = ingest("a", vec![0, 1, 2, 3]); // separate allocation
        let (va, la) = cache.verdict_for(&a, None, true).unwrap();
        let (vb, lb) = cache.verdict_for(&b, None, true).unwrap();
        assert_eq!((la, lb), (Lookup::Miss, Lookup::Hit));
        assert_eq!(va, vb);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn mutation_through_the_boundary_changes_the_key() {
        let cache = ShardedVerdictCache::new(4, 64);
        let mut a = ingest("a", vec![0, 1, 2, 3]);
        let (v, _) = cache.verdict_for(&a, None, true).unwrap();
        assert!(v.strict);
        a.mutate(|d| d[2] = 0).unwrap();
        // Version bumped, checksum refreshed: new key, fresh inspection.
        let (v2, lookup) = cache.verdict_for(&a, None, true).unwrap();
        assert_eq!(lookup, Lookup::Miss);
        assert!(!v2.nonstrict);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn bypassing_writer_is_rejected_in_paranoid_mode() {
        let cache = ShardedVerdictCache::new(2, 64);
        let mut a = ingest("a", vec![0, 1, 2, 3]);
        cache.verdict_for(&a, None, true).unwrap();
        a.bypass_validation_mut()[1] = 3; // unannounced write
        let err = cache.verdict_for(&a, None, true).unwrap_err();
        assert!(matches!(err, ValidationError::ChecksumMismatch { .. }));
    }

    #[test]
    fn provenance_is_part_of_the_key() {
        let cache = ShardedVerdictCache::new(2, 64);
        let a = ingest("a", vec![0, 1, 2]);
        let b = ValidatedIndexArray::ingest(
            "a",
            vec![0, 1, 2],
            usize::MAX,
            Provenance::Generated { seed: 7 },
        )
        .unwrap();
        cache.verdict_for(&a, None, true).unwrap();
        let (_, lookup) = cache.verdict_for(&b, None, true).unwrap();
        assert_eq!(lookup, Lookup::Miss, "different provenance, different key");
    }

    #[test]
    fn warm_entries_serve_and_are_counted_separately() {
        let cache = ShardedVerdictCache::new(2, 64);
        let a = ingest("a", vec![0, 1, 2]);
        let key = VerdictKey::of(&a, InspectorKind::Monotone);
        cache.insert_warm(
            key,
            MonotoneVerdict {
                nonstrict: true,
                strict: true,
                first_violation: None,
                len: 3,
            },
        );
        let (v, lookup) = cache.verdict_for(&a, None, true).unwrap();
        assert_eq!(lookup, Lookup::WarmHit);
        assert!(v.strict);
        let s = cache.stats();
        assert_eq!((s.warm_hits, s.misses), (1, 0));
    }

    #[test]
    fn eviction_pressure_is_bounded_per_shard() {
        let cache = ShardedVerdictCache::new(1, 4);
        for i in 0..32usize {
            let a = ingest("a", vec![i, i + 1, i + 2]);
            cache.verdict_for(&a, None, true).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.entries, 4);
        assert_eq!(s.evictions, 28);
        assert_eq!(s.misses, 32);
    }
}
