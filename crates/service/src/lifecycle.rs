//! Per-request lifecycle control: deadlines, cancellation, and the
//! doomed-request taxonomy.
//!
//! Every admitted request gets one [`JobControl`] shared between its
//! [`crate::Ticket`], the queue entry, the worker that executes it, and
//! the janitor thread. The control carries the request's absolute
//! deadline (stamped at admission) and an `omprt` [`CancelToken`] the
//! worker installs as the *ambient* token while running the payload —
//! so tripping the token stops the request's parallel regions at the
//! next cooperative boundary, wherever in the pipeline they are.
//!
//! A request becomes *doomed* two ways:
//!
//! - **Expired** — its deadline passed. The janitor trips the token of
//!   a running job within one tick; a queued job is reaped without ever
//!   reaching a worker.
//! - **Abandoned** — its waiter gave up ([`crate::Ticket`] dropped
//!   without receiving, or `wait_timeout` returned `None`). The ticket
//!   trips the token on the way out and asks the service to reap the
//!   job from the queue immediately, freeing its fairness-cap slot.
//!
//! Either way the outcome is a typed error response
//! ([`crate::ServiceError::Expired`] / [`crate::ServiceError::Abandoned`]),
//! never silent loss: the response slot is always fulfilled, and the
//! accounting (in-flight count, per-client budget) is always released
//! exactly once.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use subsub_omprt::CancelToken;

use crate::request::ServiceError;

/// Why a request is doomed (will never produce an outcome).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Doom {
    /// The request's deadline passed before a response was produced.
    Expired,
    /// The waiter abandoned the ticket (drop or timed-out wait).
    Abandoned,
}

impl Doom {
    /// The typed terminal error for this doom.
    pub fn error(self) -> ServiceError {
        match self {
            Doom::Expired => ServiceError::Expired,
            Doom::Abandoned => ServiceError::Abandoned,
        }
    }

    /// `arg` payload for the `request_expired` telemetry instant.
    pub fn code(self) -> u64 {
        match self {
            Doom::Expired => 1,
            Doom::Abandoned => 2,
        }
    }
}

/// Shared lifecycle state of one admitted request.
#[derive(Debug)]
pub struct JobControl {
    cancel: Arc<CancelToken>,
    deadline: Option<Instant>,
    abandoned: AtomicBool,
}

impl JobControl {
    /// A fresh control with an optional absolute deadline.
    pub fn new(deadline: Option<Instant>) -> Arc<JobControl> {
        Arc::new(JobControl {
            cancel: Arc::new(CancelToken::new()),
            deadline,
            abandoned: AtomicBool::new(false),
        })
    }

    /// The per-job cancel token (installed as the worker's ambient
    /// token for the duration of the payload).
    pub fn cancel_token(&self) -> &Arc<CancelToken> {
        &self.cancel
    }

    /// The absolute deadline, if the request carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Marks the waiter gone and trips the token. Idempotent.
    pub fn abandon(&self) {
        self.abandoned.store(true, Ordering::Release);
        self.cancel.cancel();
    }

    /// Trips the token because the deadline passed (janitor path).
    /// The doom classification itself comes from [`JobControl::doom`],
    /// which re-derives expiry from the clock — so an expired job is
    /// `Expired` even if no janitor tick happened to run.
    pub fn expire(&self) {
        self.cancel.cancel();
    }

    /// Whether this request is doomed, and why. Abandonment wins over
    /// expiry: a waiter that gave up is gone regardless of deadline.
    pub fn doom(&self) -> Option<Doom> {
        if self.abandoned.load(Ordering::Acquire) {
            return Some(Doom::Abandoned);
        }
        if self.deadline.is_some_and(|dl| Instant::now() >= dl) {
            return Some(Doom::Expired);
        }
        None
    }
}

/// The set of controls currently executing on workers, scanned by the
/// janitor to trip deadlines of in-flight jobs within one tick.
#[derive(Debug, Default)]
pub struct RunningSet {
    jobs: std::sync::Mutex<Vec<Arc<JobControl>>>,
}

impl RunningSet {
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Arc<JobControl>>> {
        self.jobs.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a control for the duration of its payload run.
    pub fn register(&self, control: &Arc<JobControl>) {
        self.lock().push(Arc::clone(control));
    }

    /// Removes a control after its payload run settles.
    pub fn unregister(&self, control: &Arc<JobControl>) {
        self.lock().retain(|c| !Arc::ptr_eq(c, control));
    }

    /// Trips the token of every running job whose deadline has passed
    /// or whose waiter abandoned it; returns how many tokens tripped
    /// this scan (already-cancelled tokens are not re-counted).
    pub fn trip_doomed(&self) -> u64 {
        let mut tripped = 0;
        for c in self.lock().iter() {
            if c.doom().is_some() && !c.cancel_token().is_cancelled() {
                c.expire();
                tripped += 1;
            }
        }
        tripped
    }

    /// Number of registered (currently running) jobs.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no job is currently running.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn doom_classifies_abandonment_over_expiry() {
        let c = JobControl::new(Some(Instant::now() - Duration::from_secs(1)));
        assert_eq!(c.doom(), Some(Doom::Expired));
        c.abandon();
        assert_eq!(c.doom(), Some(Doom::Abandoned));
        assert!(c.cancel_token().is_cancelled());
    }

    #[test]
    fn undoomed_without_deadline() {
        let c = JobControl::new(None);
        assert_eq!(c.doom(), None);
        assert!(!c.cancel_token().is_cancelled());
    }

    #[test]
    fn running_set_trips_only_doomed_jobs() {
        let set = RunningSet::default();
        let live = JobControl::new(Some(Instant::now() + Duration::from_secs(60)));
        let dead = JobControl::new(Some(Instant::now() - Duration::from_millis(1)));
        set.register(&live);
        set.register(&dead);
        assert_eq!(set.trip_doomed(), 1);
        assert!(dead.cancel_token().is_cancelled());
        assert!(!live.cancel_token().is_cancelled());
        // Second scan does not re-count the already-tripped token.
        assert_eq!(set.trip_doomed(), 0);
        set.unregister(&dead);
        set.unregister(&live);
        assert!(set.is_empty());
    }
}
