//! The long-lived analysis service: bounded admission queue, worker
//! threads multiplexed over one shared omprt pool, and the sharded
//! verdict cache.
//!
//! ## Request lifecycle
//!
//! `submit` walks the admission ladder under the queue lock —
//! shutdown → queue bound → per-client fairness cap → poison
//! quarantine → degradation shed — and either returns a [`ShedReason`]
//! immediately or enqueues the job and hands back a [`Ticket`]. A
//! worker dequeues, stamps the queue wait, consults the degradation
//! mode (requests admitted while the service is `Serialized` run
//! serial-only), executes the payload with the job's cancel token
//! installed as the ambient token, and fulfills the ticket with a
//! [`Response`] carrying per-request telemetry. Kernel executions flow
//! through [`KernelRegistry`] and the [`ShardedVerdictCache`]; every
//! parallel region of every request shares the single omprt pool, whose
//! nested-region degradation makes concurrent multiplexing safe by
//! construction.
//!
//! Full state machine (see DESIGN.md §8):
//!
//! ```text
//! submit ──shed──────────────────────────────▶ Shed(reason)
//!   │
//!   ▼
//! Queued ──reaped (janitor / ticket drop)────▶ Expired | Abandoned
//!   │
//!   ▼
//! Running ──token tripped, worker settles────▶ Expired | Abandoned
//!   │
//!   ▼
//! Done (Ok | Rejected | Failed)  [probe: settles the quarantine]
//! ```
//!
//! ## Deadlines, abandonment, and the janitor
//!
//! Every [`crate::Request`] may carry a deadline; the absolute doom
//! instant is stamped at admission. A dedicated *janitor* thread ticks
//! every [`ServiceConfig::janitor_tick`]: it trips the cancel token of
//! any running job past its deadline (the ambient-token plumbing stops
//! the job's parallel regions at the next cooperative boundary), reaps
//! doomed jobs still in the queue (typed response, fairness slot
//! freed), and drives snapshot autosave. Ticket abandonment (drop or
//! timed-out wait) additionally reaps synchronously, so a saturated
//! queue of abandoned tickets frees its slots without waiting a tick.
//!
//! ## Degradation ladder
//!
//! The service watches [`PoolHealth`] deltas (worker deaths, reclaimed
//! tids, aborted regions) and guarded-execution outcomes (breaker-open
//! denials, parallel faults). Any observation flips the mode to
//! `Serialized { remaining }`: the next `remaining` admitted kernel
//! requests run the serial golden path only — no inspection, no
//! parallel dispatch — giving the pool's self-healing watchdog room to
//! respawn workers without a stampede of faulting regions. While
//! serialized, a queue at half capacity sheds new work as `Degraded`
//! instead of letting latency balloon. The cooldown spent, the mode
//! snaps back to `Normal`. Identities that keep *causing* faults are
//! handled one rung up by the [`Quarantine`] ladder, so one poison
//! input cannot re-trigger the cooldown forever.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::time::{Duration, Instant};
use subsub_cfront::ParseBudget;
use subsub_core::{analyze_lowered, analyze_program_with, AlgorithmLevel, AnalyzeError};
use subsub_failpoint::{self as failpoint, Action};
use subsub_omprt::cancel::with_ambient_cancel;
use subsub_omprt::{PoolHealth, ThreadPool};
use subsub_rtcheck::ExecError;
use subsub_telemetry as telemetry;
use subsub_telemetry::{EventKind, Phase, SpanGuard};

use crate::exec::KernelRegistry;
use crate::lifecycle::{Doom, JobControl, RunningSet};
use crate::quarantine::{Admission, Quarantine, QuarantineConfig, QuarantineStats};
use crate::request::{
    Outcome, Payload, Request, RequestTelemetry, Response, ServiceError, ShedReason,
    NUM_SHED_REASONS,
};
use crate::shard::{ShardStats, ShardedVerdictCache};
use crate::snapshot::{self, SnapshotError};
use crate::store::{Recovery, SnapshotStore, StoreStats};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Tunables for one [`AnalysisService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the queue (≥1).
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it shed `QueueFull`.
    pub queue_capacity: usize,
    /// Max in-flight (queued + executing) requests per client id;
    /// submissions beyond it shed `FairnessCap`.
    pub fairness_cap: usize,
    /// Shards of the verdict cache.
    pub shards: usize,
    /// Capacity bound of each shard.
    pub shard_capacity: usize,
    /// Analysis level for kernel requests.
    pub level: AlgorithmLevel,
    /// Threads in the shared omprt pool.
    pub pool_threads: usize,
    /// Re-verify ingested arrays before serving cached verdicts.
    pub paranoid_verify: bool,
    /// Kernel requests to serialize after observing degradation.
    pub serialized_cooldown: u64,
    /// Deadline applied to requests that carry none (`None` = requests
    /// without a deadline never expire).
    pub default_deadline: Option<Duration>,
    /// Poison-quarantine ladder tunables.
    pub quarantine: QuarantineConfig,
    /// Janitor scan period: the bound on how stale a deadline trip or
    /// queued-job reap can be.
    pub janitor_tick: Duration,
    /// Snapshot persistence directory (`None` = in-memory only).
    pub snapshot_dir: Option<PathBuf>,
    /// Autosave once this many new inspections (cache misses) have
    /// accumulated since the last successful save.
    pub autosave_dirty: u64,
    /// Frontend resource limits applied to `AnalyzeSource` payloads:
    /// oversized sources shed [`ShedReason::OverBudget`] at admission,
    /// and the lexer/parser enforce the token/depth/node bounds while
    /// the request runs.
    pub parse_budget: ParseBudget,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            fairness_cap: 8,
            shards: 8,
            shard_capacity: 256,
            level: AlgorithmLevel::New,
            pool_threads: 3,
            paranoid_verify: true,
            serialized_cooldown: 16,
            default_deadline: None,
            quarantine: QuarantineConfig::default(),
            janitor_tick: Duration::from_millis(2),
            snapshot_dir: None,
            autosave_dirty: 64,
            parse_budget: ParseBudget::DEFAULT,
        }
    }
}

/// Cumulative service counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests completed (fulfilled tickets).
    pub completed: u64,
    /// Requests shed at admission, by reason code order (queue-full,
    /// fairness, degraded, shutdown, quarantined, over-budget).
    pub shed: [u64; NUM_SHED_REASONS],
    /// High-water mark of concurrently in-flight requests.
    pub max_inflight: u64,
    /// Requests executed under serialized (degraded) mode.
    pub serialized_requests: u64,
    /// Times the mode flipped Normal → Serialized.
    pub degradations: u64,
    /// Requests answered [`ServiceError::Expired`].
    pub expired: u64,
    /// Requests answered [`ServiceError::Abandoned`].
    pub abandoned: u64,
    /// Doomed jobs reaped from the queue before reaching a worker.
    pub reaped_queued: u64,
    /// Quarantine-ladder counters.
    pub quarantine: QuarantineStats,
    /// Snapshot-store counters (zero when persistence is off).
    pub store: StoreStats,
    /// Verdict-cache counters.
    pub cache: ShardStats,
}

impl ServiceStats {
    /// Total shed count.
    pub fn total_shed(&self) -> u64 {
        self.shed.iter().sum()
    }
}

/// One completed response slot, fulfilled exactly once.
struct ResponseSlot {
    state: Mutex<Option<Response>>,
    cv: Condvar,
}

impl ResponseSlot {
    fn new() -> ResponseSlot {
        ResponseSlot {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fulfill(&self, response: Response) {
        let mut st = lock(&self.state);
        if st.is_none() {
            *st = Some(response);
        }
        self.cv.notify_all();
    }
}

/// Handle to a submitted request. Dropping the ticket without receiving
/// its response *abandons* the request: the job's cancel token trips, a
/// queued job is reaped immediately (fairness slot freed), and a
/// running one stops at its next cooperative boundary — its typed
/// [`ServiceError::Abandoned`] response goes to no one, but the
/// accounting is always settled.
pub struct Ticket {
    slot: Arc<ResponseSlot>,
    control: Arc<JobControl>,
    inner: Weak<Inner>,
    received: bool,
}

impl Ticket {
    /// Blocks until the response is ready. An expired request resolves
    /// with [`ServiceError::Expired`] within a janitor tick plus one
    /// cooperative cancellation interval — never unboundedly.
    pub fn wait(mut self) -> Response {
        let mut st = lock(&self.slot.state);
        loop {
            if let Some(r) = st.take() {
                drop(st);
                self.received = true;
                return r;
            }
            st = self.slot.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks up to `timeout`; `None` abandons the request (see the
    /// type docs) — the job stops consuming service time and its
    /// fairness slot frees, so a caller that gave up cannot wedge
    /// admission for its client id.
    pub fn wait_timeout(mut self, timeout: Duration) -> Option<Response> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.slot.state);
        loop {
            if let Some(r) = st.take() {
                drop(st);
                self.received = true;
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                // Dropping `self` below runs the abandonment path.
                return None;
            }
            let (guard, _) = self
                .slot
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        if self.received {
            return;
        }
        self.control.abandon();
        if let Some(inner) = self.inner.upgrade() {
            inner.reap_queued(&self.control);
        }
    }
}

struct Job {
    request: Request,
    slot: Arc<ResponseSlot>,
    enqueued_at: Instant,
    control: Arc<JobControl>,
    /// Quarantine-probe job: forced serial, settles the probe slot.
    probe: bool,
    poison_key: u64,
    /// Taken and dropped at dequeue: records the queue wait into the
    /// telemetry histogram for `Phase::Queue`.
    queue_span: Option<SpanGuard>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Normal,
    Serialized { remaining: u64 },
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// In-flight (queued + executing) per client id.
    per_client: HashMap<String, usize>,
    inflight: u64,
    shutdown: bool,
}

/// How a settled (non-doomed) completion moves the quarantine ladder.
enum Settle {
    Clean,
    Strike,
    Neutral,
}

struct Inner {
    cfg: ServiceConfig,
    queue: Mutex<QueueState>,
    jobs_cv: Condvar,
    cache: ShardedVerdictCache,
    registry: KernelRegistry,
    pool: Arc<ThreadPool>,
    mode: Mutex<Mode>,
    health_baseline: Mutex<PoolHealth>,
    running: RunningSet,
    quarantine: Quarantine,
    store: Option<SnapshotStore>,
    recovery: Mutex<Option<Recovery>>,
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: [AtomicU64; NUM_SHED_REASONS],
    max_inflight: AtomicU64,
    serialized_requests: AtomicU64,
    degradations: AtomicU64,
    expired: AtomicU64,
    abandoned: AtomicU64,
    reaped_queued: AtomicU64,
    /// Cache-miss count at the last successful save (autosave dirt
    /// metric: misses since then are new inspections worth persisting).
    saved_misses: AtomicU64,
    draining: AtomicBool,
    janitor_stop: Mutex<bool>,
    janitor_cv: Condvar,
}

impl Inner {
    fn note_shed(&self, reason: ShedReason) {
        let idx = (reason.code() - 1) as usize;
        self.shed[idx].fetch_add(1, Ordering::Relaxed);
        telemetry::instant(EventKind::ServiceShed, Phase::Service, 0, reason.code());
    }

    fn note_doom(&self, doom: Doom) {
        match doom {
            Doom::Expired => self.expired.fetch_add(1, Ordering::Relaxed),
            Doom::Abandoned => self.abandoned.fetch_add(1, Ordering::Relaxed),
        };
        telemetry::instant(EventKind::RequestExpired, Phase::Service, 0, doom.code());
    }

    /// Releases one job's admission accounting (in-flight count +
    /// per-client fairness slot). Called exactly once per admitted job:
    /// by the worker that settled it, or by the reaper that removed it
    /// from the queue.
    fn release_accounting(&self, client: &str) {
        let mut q = lock(&self.queue);
        q.inflight = q.inflight.saturating_sub(1);
        if let Some(n) = q.per_client.get_mut(client) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                q.per_client.remove(client);
            }
        }
    }

    /// Fulfills a doomed job's slot with its typed error and settles
    /// all accounting. The job must already be out of the queue.
    fn finish_doomed(&self, job: &Job, doom: Doom, queued: Duration) {
        self.note_doom(doom);
        if job.probe {
            self.quarantine.abort_probe(job.poison_key);
        }
        job.slot.fulfill(Response {
            result: Err(doom.error()),
            telemetry: RequestTelemetry {
                queued,
                ..RequestTelemetry::default()
            },
        });
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.release_accounting(&job.request.client);
    }

    /// Removes a specific still-queued job (abandoned-ticket path) and
    /// settles it. No-op if a worker already claimed it.
    fn reap_queued(&self, control: &Arc<JobControl>) {
        let job = {
            let mut q = lock(&self.queue);
            let at = q.jobs.iter().position(|j| Arc::ptr_eq(&j.control, control));
            at.and_then(|i| q.jobs.remove(i))
        };
        if let Some(job) = job {
            let doom = job.control.doom().unwrap_or(Doom::Abandoned);
            self.reaped_queued.fetch_add(1, Ordering::Relaxed);
            self.finish_doomed(&job, doom, job.enqueued_at.elapsed());
        }
    }

    /// Janitor sweep: removes every doomed job from the queue.
    fn reap_doomed_queue(&self) {
        loop {
            let job = {
                let mut q = lock(&self.queue);
                let at = q.jobs.iter().position(|j| j.control.doom().is_some());
                at.and_then(|i| q.jobs.remove(i))
            };
            let Some(job) = job else { break };
            let doom = job.control.doom().unwrap_or(Doom::Expired);
            self.reaped_queued.fetch_add(1, Ordering::Relaxed);
            self.finish_doomed(&job, doom, job.enqueued_at.elapsed());
        }
    }

    /// Enters serialized mode (or extends an active cooldown).
    fn degrade(&self) {
        let mut mode = lock(&self.mode);
        if *mode == Mode::Normal {
            self.degradations.fetch_add(1, Ordering::Relaxed);
        }
        *mode = Mode::Serialized {
            remaining: self.cfg.serialized_cooldown,
        };
    }

    /// Consumes one serialized-mode token; returns whether this request
    /// must run serial-only.
    fn take_mode(&self) -> bool {
        let mut mode = lock(&self.mode);
        match *mode {
            Mode::Normal => false,
            Mode::Serialized { remaining } => {
                *mode = if remaining <= 1 {
                    Mode::Normal
                } else {
                    Mode::Serialized {
                        remaining: remaining - 1,
                    }
                };
                true
            }
        }
    }

    /// Polls pool health; any degradation delta since the last poll
    /// flips the mode.
    fn observe_health(&self) {
        let health = self.pool.health();
        let mut baseline = lock(&self.health_baseline);
        if health.degradation_since(&baseline) > 0 {
            drop(baseline);
            self.degrade();
            *lock(&self.health_baseline) = health;
        } else {
            *baseline = health;
        }
    }

    fn execute_payload(&self, job: &Job, serialized: bool) -> ExecOutcome {
        // Chaos site: a worker faulting at dispatch — before the payload
        // machinery runs. Panic arms land in the worker's catch_unwind
        // and surface as a classified Failed response.
        failpoint::hit("service.worker.dispatch");
        let cancel = Some(job.control.cancel_token());
        match &job.request.payload {
            Payload::AnalyzeSource { source, level } => {
                // Ambient cancel makes the job's deadline reach the
                // lex/parse loops, which poll it cooperatively.
                let analyzed = with_ambient_cancel(job.control.cancel_token(), || {
                    analyze_program_with(source, *level, &self.cfg.parse_budget)
                });
                match analyzed {
                    Ok(report) => ExecOutcome {
                        result: Ok(Outcome::Analyzed(report)),
                        cache: None,
                    },
                    // A parse abandoned because the deadline fired is the
                    // service's timeout, not the client's bad input.
                    Err(AnalyzeError::Parse(d)) if d.is_cancelled() => ExecOutcome {
                        result: Err(ServiceError::Expired),
                        cache: None,
                    },
                    Err(e) => {
                        let arg = match &e {
                            AnalyzeError::Parse(d) => u64::from(d.code.code()),
                            AnalyzeError::Lower { .. } => 0,
                        };
                        telemetry::instant(EventKind::FrontendReject, Phase::Service, 0, arg);
                        ExecOutcome {
                            result: Err(ServiceError::Rejected {
                                code: e.code().to_string(),
                                detail: e.to_string(),
                            }),
                            cache: None,
                        }
                    }
                }
            }
            Payload::AnalyzeLowered { funcs, level } => ExecOutcome {
                result: Ok(Outcome::Analyzed(analyze_lowered(funcs, *level))),
                cache: None,
            },
            Payload::Execute { kernel, dataset } => {
                match self.registry.entry(kernel, dataset).and_then(|e| {
                    e.execute(
                        &self.cache,
                        &self.pool,
                        serialized,
                        self.cfg.paranoid_verify,
                        cancel,
                    )
                }) {
                    Ok(report) => {
                        // Guarded outcomes that fell back for fault-like
                        // reasons feed the degradation ladder.
                        if let Outcome::Executed {
                            degraded: Some(reason),
                            ..
                        } = &report.outcome
                        {
                            if matches!(
                                reason,
                                ExecError::ParallelFault { .. }
                                    | ExecError::Timeout
                                    | ExecError::BreakerOpen { .. }
                            ) {
                                self.degrade();
                            }
                        }
                        ExecOutcome {
                            result: Ok(report.outcome),
                            cache: report.cache,
                        }
                    }
                    Err(e) => ExecOutcome {
                        result: Err(e),
                        cache: None,
                    },
                }
            }
        }
    }

    /// How this completion moves the quarantine ladder. Worker-faulting
    /// completions strike; deterministic results (including rejections,
    /// which cost nothing parallel) are clean; doomed/cancelled runs
    /// prove nothing.
    fn classify_settle(result: &Result<Outcome, ServiceError>) -> Settle {
        match result {
            Ok(Outcome::Executed {
                degraded: Some(ExecError::ParallelFault { .. } | ExecError::Timeout),
                ..
            }) => Settle::Strike,
            Ok(_) => Settle::Clean,
            Err(ServiceError::Failed(_)) => Settle::Strike,
            Err(ServiceError::Rejected { .. } | ServiceError::UnknownKernel { .. }) => {
                Settle::Clean
            }
            Err(
                ServiceError::Canceled
                | ServiceError::Expired
                | ServiceError::Abandoned
                | ServiceError::Shed(_),
            ) => Settle::Neutral,
        }
    }

    fn settle_quarantine(&self, job: &Job, settle: &Settle) {
        match settle {
            Settle::Clean => self.quarantine.record_clean(job.poison_key),
            Settle::Strike => {
                self.quarantine
                    .record_strike(job.poison_key, Instant::now());
            }
            Settle::Neutral => {
                if job.probe {
                    self.quarantine.abort_probe(job.poison_key);
                }
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let mut job = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.jobs_cv.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            let queued = job.enqueued_at.elapsed();
            drop(job.queue_span.take());
            // Doomed at dequeue (expired in the queue between janitor
            // ticks, or abandoned racing the pop): settle without
            // spending any worker time.
            if let Some(doom) = job.control.doom() {
                self.finish_doomed(&job, doom, queued);
                continue;
            }
            let started = Instant::now();
            let _service_span =
                telemetry::span_labeled(Phase::Service, job.request.payload.label());
            self.observe_health();
            let wants_kernel = matches!(job.request.payload, Payload::Execute { .. });
            // Quarantine probes are serial by construction; degraded
            // mode serializes kernel requests as before.
            let serialized = job.probe || (wants_kernel && self.take_mode());
            if serialized {
                self.serialized_requests.fetch_add(1, Ordering::Relaxed);
            }
            self.running.register(&job.control);
            // A panicking payload must not take the worker down with it:
            // the queue would lose a drainer and eventually wedge.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.execute_payload(&job, serialized)
            }))
            .unwrap_or_else(|_| {
                self.degrade();
                ExecOutcome {
                    result: Err(ServiceError::Failed(ExecError::ParallelFault {
                        detail: "request processing panicked".into(),
                    })),
                    cache: None,
                }
            });
            self.running.unregister(&job.control);
            // A doomed run's result — even a successful one — is
            // replaced by the typed lifecycle error: the waiter is gone
            // or the budget is spent, and partial work must never be
            // mistaken for an answer.
            let (result, settle) = match job.control.doom() {
                Some(doom) => {
                    self.note_doom(doom);
                    (Err(doom.error()), Settle::Neutral)
                }
                None => {
                    let settle = Inner::classify_settle(&outcome.result);
                    (outcome.result, settle)
                }
            };
            self.settle_quarantine(&job, &settle);
            let response = Response {
                result,
                telemetry: RequestTelemetry {
                    queued,
                    service: started.elapsed(),
                    cache: outcome.cache,
                    serialized,
                },
            };
            job.slot.fulfill(response);
            self.completed.fetch_add(1, Ordering::Relaxed);
            self.release_accounting(&job.request.client);
        }
    }

    /// One janitor tick: trip deadlines of running jobs, reap doomed
    /// queued jobs, autosave the snapshot when enough new inspections
    /// accumulated.
    fn janitor_tick(&self) {
        self.running.trip_doomed();
        self.reap_doomed_queue();
        self.maybe_autosave(false);
    }

    /// Autosave gate; `force` saves any dirt (shutdown path). Save
    /// panics (injected crashes) are contained here — the janitor must
    /// survive every chaos schedule.
    fn maybe_autosave(&self, force: bool) {
        let Some(store) = &self.store else { return };
        let misses = self.cache.stats().misses;
        let dirty = misses.saturating_sub(self.saved_misses.load(Ordering::Relaxed));
        let threshold = if force {
            1
        } else {
            self.cfg.autosave_dirty.max(1)
        };
        if dirty < threshold {
            return;
        }
        let saved =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.save(&self.cache)));
        if let Ok(Ok(_)) = saved {
            self.saved_misses.store(misses, Ordering::Relaxed);
        }
    }

    fn janitor_loop(&self) {
        let mut stop = lock(&self.janitor_stop);
        loop {
            if *stop {
                return;
            }
            drop(stop);
            self.janitor_tick();
            stop = lock(&self.janitor_stop);
            if *stop {
                return;
            }
            let (guard, _) = self
                .janitor_cv
                .wait_timeout(stop, self.cfg.janitor_tick)
                .unwrap_or_else(|e| e.into_inner());
            stop = guard;
        }
    }
}

struct ExecOutcome {
    result: Result<Outcome, ServiceError>,
    cache: Option<crate::shard::Lookup>,
}

/// The concurrent analysis front door. See the module docs.
pub struct AnalysisService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl AnalysisService {
    /// Starts the service: spawns the worker threads and the shared
    /// omprt pool.
    pub fn start(cfg: ServiceConfig) -> AnalysisService {
        let pool = Arc::new(ThreadPool::new(cfg.pool_threads.max(1)));
        AnalysisService::start_with_pool(cfg, pool)
    }

    /// Starts the service over a caller-provided pool (shared with
    /// other subsystems).
    pub fn start_with_pool(cfg: ServiceConfig, pool: Arc<ThreadPool>) -> AnalysisService {
        let store = cfg
            .snapshot_dir
            .as_ref()
            .and_then(|dir| SnapshotStore::open(dir).ok());
        let inner = Arc::new(Inner {
            cache: ShardedVerdictCache::new(cfg.shards, cfg.shard_capacity),
            registry: KernelRegistry::new(cfg.level),
            pool,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                per_client: HashMap::new(),
                inflight: 0,
                shutdown: false,
            }),
            jobs_cv: Condvar::new(),
            mode: Mutex::new(Mode::Normal),
            health_baseline: Mutex::new(PoolHealth::default()),
            running: RunningSet::default(),
            quarantine: Quarantine::new(cfg.quarantine.clone()),
            store,
            recovery: Mutex::new(None),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: Default::default(),
            max_inflight: AtomicU64::new(0),
            serialized_requests: AtomicU64::new(0),
            degradations: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            reaped_queued: AtomicU64::new(0),
            saved_misses: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            janitor_stop: Mutex::new(false),
            janitor_cv: Condvar::new(),
            cfg,
        });
        // Boot-time recovery: warm the cache from the newest verified
        // on-disk generation (falling back or starting cold — never a
        // partial load).
        if let Some(store) = &inner.store {
            let r = store.recover(&inner.cache);
            *lock(&inner.recovery) = Some(r);
        }
        let mut workers: Vec<_> = (0..inner.cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.worker_loop())
            })
            .collect();
        {
            let inner = Arc::clone(&inner);
            workers.push(std::thread::spawn(move || inner.janitor_loop()));
        }
        AnalysisService {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Submits a request, returning a [`Ticket`] or the shed reason.
    pub fn submit(&self, request: Request) -> Result<Ticket, ShedReason> {
        let inner = &self.inner;
        if inner.draining.load(Ordering::Acquire) {
            inner.note_shed(ShedReason::Shutdown);
            return Err(ShedReason::Shutdown);
        }
        // Frontend budget rung: an oversized source is refused before it
        // can occupy queue space or a worker — the lexer would reject it
        // anyway, but only after the bytes sat in the queue.
        if let Payload::AnalyzeSource { source, .. } = &request.payload {
            if source.len() > inner.cfg.parse_budget.max_input_bytes {
                inner.note_shed(ShedReason::OverBudget);
                return Err(ShedReason::OverBudget);
            }
        }
        let poison_key = request.payload.poison_key();
        let mut q = lock(&inner.queue);
        if q.shutdown {
            drop(q);
            inner.note_shed(ShedReason::Shutdown);
            return Err(ShedReason::Shutdown);
        }
        if q.jobs.len() >= inner.cfg.queue_capacity {
            drop(q);
            inner.note_shed(ShedReason::QueueFull);
            return Err(ShedReason::QueueFull);
        }
        let client_load = q.per_client.get(&request.client).copied().unwrap_or(0);
        if client_load >= inner.cfg.fairness_cap {
            drop(q);
            inner.note_shed(ShedReason::FairnessCap);
            return Err(ShedReason::FairnessCap);
        }
        // Poison-quarantine rung: a quarantined identity is admitted
        // only as its single-flight serial probe.
        let probe = match inner.quarantine.admit(poison_key, Instant::now()) {
            Admission::Normal => false,
            Admission::Probe => true,
            Admission::Refused => {
                drop(q);
                inner.note_shed(ShedReason::Quarantined);
                return Err(ShedReason::Quarantined);
            }
        };
        // Degradation shed: while serialized, refuse to let the queue
        // grow past half capacity — serial execution drains slowly.
        if q.jobs.len() >= inner.cfg.queue_capacity.div_ceil(2)
            && *lock(&inner.mode) != Mode::Normal
        {
            drop(q);
            if probe {
                inner.quarantine.abort_probe(poison_key);
            }
            inner.note_shed(ShedReason::Degraded);
            return Err(ShedReason::Degraded);
        }
        // Chaos site: an admission-path fault (allocator pressure, a
        // poisoned queue) modelled as a queue-full shed. Held under the
        // queue lock, so Delay arms model slow admission.
        if !matches!(failpoint::hit("service.queue.push"), Action::Proceed) {
            drop(q);
            if probe {
                inner.quarantine.abort_probe(poison_key);
            }
            inner.note_shed(ShedReason::QueueFull);
            return Err(ShedReason::QueueFull);
        }
        let deadline = request
            .deadline
            .or(inner.cfg.default_deadline)
            .map(|d| Instant::now() + d);
        let control = JobControl::new(deadline);
        let slot = Arc::new(ResponseSlot::new());
        let depth = q.jobs.len() as u64 + 1;
        *q.per_client.entry(request.client.clone()).or_insert(0) += 1;
        q.jobs.push_back(Job {
            queue_span: Some(telemetry::span_labeled(Phase::Queue, &request.client)),
            request,
            slot: Arc::clone(&slot),
            enqueued_at: Instant::now(),
            control: Arc::clone(&control),
            probe,
            poison_key,
        });
        q.inflight += 1;
        let inflight = q.inflight;
        drop(q);
        inner.admitted.fetch_add(1, Ordering::Relaxed);
        inner.max_inflight.fetch_max(inflight, Ordering::Relaxed);
        telemetry::instant(EventKind::ServiceAdmit, Phase::Service, 0, depth);
        inner.jobs_cv.notify_one();
        Ok(Ticket {
            slot,
            control,
            inner: Arc::downgrade(&self.inner),
            received: false,
        })
    }

    /// Serializes the verdict cache as a `subsub-cache/v2` document.
    pub fn snapshot(&self) -> String {
        snapshot::write_snapshot(&self.inner.cache)
    }

    /// Warm-starts the verdict cache from a snapshot. A rejected
    /// snapshot leaves the cache exactly as it was.
    pub fn warm_start(&self, text: &str) -> Result<usize, SnapshotError> {
        snapshot::load_snapshot(&self.inner.cache, text)
    }

    /// What boot-time recovery found on disk (`None` when persistence
    /// is off).
    pub fn recovery(&self) -> Option<Recovery> {
        *lock(&self.inner.recovery)
    }

    /// Forces a snapshot save now (persistence must be configured).
    pub fn persist(&self) -> Option<Result<usize, crate::store::StoreError>> {
        let store = self.inner.store.as_ref()?;
        let r = store.save(&self.inner.cache);
        if r.is_ok() {
            self.inner
                .saved_misses
                .store(self.inner.cache.stats().misses, Ordering::Relaxed);
        }
        Some(r)
    }

    /// Whether a payload identity is currently quarantined (harness
    /// introspection).
    pub fn is_quarantined(&self, payload: &Payload) -> bool {
        self.inner.quarantine.is_quarantined(payload.poison_key())
    }

    /// The shared omprt pool (for harnesses that co-schedule work).
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.inner.pool
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let inner = &self.inner;
        let mut shed = [0u64; NUM_SHED_REASONS];
        for (slot, counter) in shed.iter_mut().zip(inner.shed.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        ServiceStats {
            admitted: inner.admitted.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            shed,
            max_inflight: inner.max_inflight.load(Ordering::Relaxed),
            serialized_requests: inner.serialized_requests.load(Ordering::Relaxed),
            degradations: inner.degradations.load(Ordering::Relaxed),
            expired: inner.expired.load(Ordering::Relaxed),
            abandoned: inner.abandoned.load(Ordering::Relaxed),
            reaped_queued: inner.reaped_queued.load(Ordering::Relaxed),
            quarantine: inner.quarantine.stats(),
            store: inner
                .store
                .as_ref()
                .map(SnapshotStore::stats)
                .unwrap_or_default(),
            cache: inner.cache.stats(),
        }
    }

    /// The serial reference checksum for a kernel request (divergence
    /// oracle for harnesses).
    pub fn golden_checksum(&self, kernel: &str, dataset: &str) -> Result<f64, ServiceError> {
        Ok(self
            .inner
            .registry
            .entry(kernel, dataset)?
            .golden_checksum())
    }

    /// Stops admissions, drains queued jobs as `Shed(Shutdown)` errors,
    /// persists the final snapshot generation (when configured), and
    /// joins the workers and the janitor.
    pub fn shutdown(&self) {
        self.inner.draining.store(true, Ordering::Release);
        let drained: Vec<Job> = {
            let mut q = lock(&self.inner.queue);
            q.shutdown = true;
            q.per_client.clear();
            q.jobs.drain(..).collect()
        };
        self.inner.jobs_cv.notify_all();
        for job in drained {
            job.slot.fulfill(Response {
                result: Err(ServiceError::Shed(ShedReason::Shutdown)),
                telemetry: RequestTelemetry::default(),
            });
        }
        {
            let mut stop = lock(&self.inner.janitor_stop);
            *stop = true;
        }
        self.inner.janitor_cv.notify_all();
        let handles: Vec<_> = lock(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // Final generation: persist whatever the run learned. Contained
        // like the autosave path — a chaos-armed save must not panic
        // shutdown.
        self.inner.maybe_autosave(true);
    }
}

impl Drop for AnalysisService {
    fn drop(&mut self) {
        self.shutdown();
    }
}
