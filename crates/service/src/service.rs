//! The long-lived analysis service: bounded admission queue, worker
//! threads multiplexed over one shared omprt pool, and the sharded
//! verdict cache.
//!
//! ## Request lifecycle
//!
//! `submit` walks the admission ladder under the queue lock —
//! shutdown → queue bound → per-client fairness cap → degradation
//! shed — and either returns a [`ShedReason`] immediately or enqueues
//! the job and hands back a [`Ticket`]. A worker dequeues, stamps the
//! queue wait, consults the degradation mode (requests admitted while
//! the service is `Serialized` run serial-only), executes the payload,
//! and fulfills the ticket with a [`Response`] carrying per-request
//! telemetry. Kernel executions flow through [`KernelRegistry`] and the
//! [`ShardedVerdictCache`]; every parallel region of every request
//! shares the single omprt pool, whose nested-region degradation makes
//! concurrent multiplexing safe by construction.
//!
//! ## Degradation ladder
//!
//! The service watches [`PoolHealth`] deltas (worker deaths, reclaimed
//! tids, aborted regions) and guarded-execution outcomes (breaker-open
//! denials, parallel faults). Any observation flips the mode to
//! `Serialized { remaining }`: the next `remaining` admitted kernel
//! requests run the serial golden path only — no inspection, no
//! parallel dispatch — giving the pool's self-healing watchdog room to
//! respawn workers without a stampede of faulting regions. While
//! serialized, a queue at half capacity sheds new work as `Degraded`
//! instead of letting latency balloon. The cooldown spent, the mode
//! snaps back to `Normal`.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use subsub_core::{analyze_lowered, analyze_program, AlgorithmLevel};
use subsub_omprt::{PoolHealth, ThreadPool};
use subsub_rtcheck::ExecError;
use subsub_telemetry as telemetry;
use subsub_telemetry::{EventKind, Phase, SpanGuard};

use crate::exec::KernelRegistry;
use crate::request::{
    Outcome, Payload, Request, RequestTelemetry, Response, ServiceError, ShedReason,
};
use crate::shard::{ShardStats, ShardedVerdictCache};
use crate::snapshot::{self, SnapshotError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Tunables for one [`AnalysisService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the queue (≥1).
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it shed `QueueFull`.
    pub queue_capacity: usize,
    /// Max in-flight (queued + executing) requests per client id;
    /// submissions beyond it shed `FairnessCap`.
    pub fairness_cap: usize,
    /// Shards of the verdict cache.
    pub shards: usize,
    /// Capacity bound of each shard.
    pub shard_capacity: usize,
    /// Analysis level for kernel requests.
    pub level: AlgorithmLevel,
    /// Threads in the shared omprt pool.
    pub pool_threads: usize,
    /// Re-verify ingested arrays before serving cached verdicts.
    pub paranoid_verify: bool,
    /// Kernel requests to serialize after observing degradation.
    pub serialized_cooldown: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            fairness_cap: 8,
            shards: 8,
            shard_capacity: 256,
            level: AlgorithmLevel::New,
            pool_threads: 3,
            paranoid_verify: true,
            serialized_cooldown: 16,
        }
    }
}

/// Cumulative service counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests completed (fulfilled tickets).
    pub completed: u64,
    /// Requests shed at admission, by reason code order
    /// (queue-full, fairness, degraded, shutdown).
    pub shed: [u64; 4],
    /// High-water mark of concurrently in-flight requests.
    pub max_inflight: u64,
    /// Requests executed under serialized (degraded) mode.
    pub serialized_requests: u64,
    /// Times the mode flipped Normal → Serialized.
    pub degradations: u64,
    /// Verdict-cache counters.
    pub cache: ShardStats,
}

impl ServiceStats {
    /// Total shed count.
    pub fn total_shed(&self) -> u64 {
        self.shed.iter().sum()
    }
}

/// One completed response slot, fulfilled exactly once.
struct ResponseSlot {
    state: Mutex<Option<Response>>,
    cv: Condvar,
}

impl ResponseSlot {
    fn new() -> ResponseSlot {
        ResponseSlot {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fulfill(&self, response: Response) {
        let mut st = lock(&self.state);
        if st.is_none() {
            *st = Some(response);
        }
        self.cv.notify_all();
    }
}

/// Handle to a submitted request.
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Blocks until the response is ready.
    pub fn wait(self) -> Response {
        let mut st = lock(&self.slot.state);
        loop {
            if let Some(r) = st.take() {
                return r;
            }
            st = self.slot.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks up to `timeout`; `None` means the deadline passed with the
    /// request still in flight (the ticket is consumed — a wedged queue
    /// is an error condition the caller reports, not retries).
    pub fn wait_timeout(self, timeout: Duration) -> Option<Response> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.slot.state);
        loop {
            if let Some(r) = st.take() {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .slot
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }
}

struct Job {
    request: Request,
    slot: Arc<ResponseSlot>,
    enqueued_at: Instant,
    /// Dropped at dequeue: records the queue wait into the telemetry
    /// histogram for `Phase::Queue`.
    queue_span: SpanGuard,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Normal,
    Serialized { remaining: u64 },
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// In-flight (queued + executing) per client id.
    per_client: HashMap<String, usize>,
    inflight: u64,
    shutdown: bool,
}

struct Inner {
    cfg: ServiceConfig,
    queue: Mutex<QueueState>,
    jobs_cv: Condvar,
    cache: ShardedVerdictCache,
    registry: KernelRegistry,
    pool: Arc<ThreadPool>,
    mode: Mutex<Mode>,
    health_baseline: Mutex<PoolHealth>,
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: [AtomicU64; 4],
    max_inflight: AtomicU64,
    serialized_requests: AtomicU64,
    degradations: AtomicU64,
    draining: AtomicBool,
}

impl Inner {
    fn note_shed(&self, reason: ShedReason) {
        let idx = (reason.code() - 1) as usize;
        self.shed[idx].fetch_add(1, Ordering::Relaxed);
        telemetry::instant(EventKind::ServiceShed, Phase::Service, 0, reason.code());
    }

    /// Enters serialized mode (or extends an active cooldown).
    fn degrade(&self) {
        let mut mode = lock(&self.mode);
        if *mode == Mode::Normal {
            self.degradations.fetch_add(1, Ordering::Relaxed);
        }
        *mode = Mode::Serialized {
            remaining: self.cfg.serialized_cooldown,
        };
    }

    /// Consumes one serialized-mode token; returns whether this request
    /// must run serial-only.
    fn take_mode(&self) -> bool {
        let mut mode = lock(&self.mode);
        match *mode {
            Mode::Normal => false,
            Mode::Serialized { remaining } => {
                *mode = if remaining <= 1 {
                    Mode::Normal
                } else {
                    Mode::Serialized {
                        remaining: remaining - 1,
                    }
                };
                true
            }
        }
    }

    /// Polls pool health; any degradation delta since the last poll
    /// flips the mode.
    fn observe_health(&self) {
        let health = self.pool.health();
        let mut baseline = lock(&self.health_baseline);
        if health.degradation_since(&baseline) > 0 {
            drop(baseline);
            self.degrade();
            *lock(&self.health_baseline) = health;
        } else {
            *baseline = health;
        }
    }

    fn execute_payload(&self, payload: &Payload, serialized: bool) -> ExecOutcome {
        match payload {
            Payload::AnalyzeSource { source, level } => match analyze_program(source, *level) {
                Ok(report) => ExecOutcome {
                    result: Ok(Outcome::Analyzed(report)),
                    cache: None,
                },
                Err(detail) => ExecOutcome {
                    result: Err(ServiceError::Rejected { detail }),
                    cache: None,
                },
            },
            Payload::AnalyzeLowered { funcs, level } => ExecOutcome {
                result: Ok(Outcome::Analyzed(analyze_lowered(funcs, *level))),
                cache: None,
            },
            Payload::Execute { kernel, dataset } => {
                match self.registry.entry(kernel, dataset).and_then(|e| {
                    e.execute(
                        &self.cache,
                        &self.pool,
                        serialized,
                        self.cfg.paranoid_verify,
                    )
                }) {
                    Ok(report) => {
                        // Guarded outcomes that fell back for fault-like
                        // reasons feed the degradation ladder.
                        if let Outcome::Executed {
                            degraded: Some(reason),
                            ..
                        } = &report.outcome
                        {
                            if matches!(
                                reason,
                                ExecError::ParallelFault { .. }
                                    | ExecError::Timeout
                                    | ExecError::BreakerOpen { .. }
                            ) {
                                self.degrade();
                            }
                        }
                        ExecOutcome {
                            result: Ok(report.outcome),
                            cache: report.cache,
                        }
                    }
                    Err(e) => ExecOutcome {
                        result: Err(e),
                        cache: None,
                    },
                }
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break job;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.jobs_cv.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            let queued = job.enqueued_at.elapsed();
            drop(job.queue_span);
            let started = Instant::now();
            let _service_span =
                telemetry::span_labeled(Phase::Service, job.request.payload.label());
            self.observe_health();
            let wants_kernel = matches!(job.request.payload, Payload::Execute { .. });
            let serialized = wants_kernel && self.take_mode();
            if serialized {
                self.serialized_requests.fetch_add(1, Ordering::Relaxed);
            }
            // A panicking payload must not take the worker down with it:
            // the queue would lose a drainer and eventually wedge.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.execute_payload(&job.request.payload, serialized)
            }))
            .unwrap_or_else(|_| {
                self.degrade();
                ExecOutcome {
                    result: Err(ServiceError::Failed(ExecError::ParallelFault {
                        detail: "request processing panicked".into(),
                    })),
                    cache: None,
                }
            });
            let response = Response {
                result: outcome.result,
                telemetry: RequestTelemetry {
                    queued,
                    service: started.elapsed(),
                    cache: outcome.cache,
                    serialized,
                },
            };
            job.slot.fulfill(response);
            self.completed.fetch_add(1, Ordering::Relaxed);
            let mut q = lock(&self.queue);
            q.inflight = q.inflight.saturating_sub(1);
            if let Some(n) = q.per_client.get_mut(&job.request.client) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    q.per_client.remove(&job.request.client);
                }
            }
        }
    }
}

struct ExecOutcome {
    result: Result<Outcome, ServiceError>,
    cache: Option<crate::shard::Lookup>,
}

/// The concurrent analysis front door. See the module docs.
pub struct AnalysisService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl AnalysisService {
    /// Starts the service: spawns the worker threads and the shared
    /// omprt pool.
    pub fn start(cfg: ServiceConfig) -> AnalysisService {
        let pool = Arc::new(ThreadPool::new(cfg.pool_threads.max(1)));
        AnalysisService::start_with_pool(cfg, pool)
    }

    /// Starts the service over a caller-provided pool (shared with
    /// other subsystems).
    pub fn start_with_pool(cfg: ServiceConfig, pool: Arc<ThreadPool>) -> AnalysisService {
        let inner = Arc::new(Inner {
            cache: ShardedVerdictCache::new(cfg.shards, cfg.shard_capacity),
            registry: KernelRegistry::new(cfg.level),
            pool,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                per_client: HashMap::new(),
                inflight: 0,
                shutdown: false,
            }),
            jobs_cv: Condvar::new(),
            mode: Mutex::new(Mode::Normal),
            health_baseline: Mutex::new(PoolHealth::default()),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: Default::default(),
            max_inflight: AtomicU64::new(0),
            serialized_requests: AtomicU64::new(0),
            degradations: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            cfg,
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.worker_loop())
            })
            .collect();
        AnalysisService {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Submits a request, returning a [`Ticket`] or the shed reason.
    pub fn submit(&self, request: Request) -> Result<Ticket, ShedReason> {
        let inner = &self.inner;
        if inner.draining.load(Ordering::Acquire) {
            inner.note_shed(ShedReason::Shutdown);
            return Err(ShedReason::Shutdown);
        }
        let mut q = lock(&inner.queue);
        if q.shutdown {
            drop(q);
            inner.note_shed(ShedReason::Shutdown);
            return Err(ShedReason::Shutdown);
        }
        if q.jobs.len() >= inner.cfg.queue_capacity {
            drop(q);
            inner.note_shed(ShedReason::QueueFull);
            return Err(ShedReason::QueueFull);
        }
        let client_load = q.per_client.get(&request.client).copied().unwrap_or(0);
        if client_load >= inner.cfg.fairness_cap {
            drop(q);
            inner.note_shed(ShedReason::FairnessCap);
            return Err(ShedReason::FairnessCap);
        }
        // Degradation shed: while serialized, refuse to let the queue
        // grow past half capacity — serial execution drains slowly.
        if q.jobs.len() >= inner.cfg.queue_capacity.div_ceil(2)
            && *lock(&inner.mode) != Mode::Normal
        {
            drop(q);
            inner.note_shed(ShedReason::Degraded);
            return Err(ShedReason::Degraded);
        }
        let slot = Arc::new(ResponseSlot::new());
        let depth = q.jobs.len() as u64 + 1;
        *q.per_client.entry(request.client.clone()).or_insert(0) += 1;
        q.jobs.push_back(Job {
            queue_span: telemetry::span_labeled(Phase::Queue, &request.client),
            request,
            slot: Arc::clone(&slot),
            enqueued_at: Instant::now(),
        });
        q.inflight += 1;
        let inflight = q.inflight;
        drop(q);
        inner.admitted.fetch_add(1, Ordering::Relaxed);
        inner.max_inflight.fetch_max(inflight, Ordering::Relaxed);
        telemetry::instant(EventKind::ServiceAdmit, Phase::Service, 0, depth);
        inner.jobs_cv.notify_one();
        Ok(Ticket { slot })
    }

    /// Serializes the verdict cache as a `subsub-cache/v1` document.
    pub fn snapshot(&self) -> String {
        snapshot::write_snapshot(&self.inner.cache)
    }

    /// Warm-starts the verdict cache from a snapshot. A rejected
    /// snapshot leaves the cache exactly as it was.
    pub fn warm_start(&self, text: &str) -> Result<usize, SnapshotError> {
        snapshot::load_snapshot(&self.inner.cache, text)
    }

    /// The shared omprt pool (for harnesses that co-schedule work).
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.inner.pool
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let inner = &self.inner;
        ServiceStats {
            admitted: inner.admitted.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            shed: [
                inner.shed[0].load(Ordering::Relaxed),
                inner.shed[1].load(Ordering::Relaxed),
                inner.shed[2].load(Ordering::Relaxed),
                inner.shed[3].load(Ordering::Relaxed),
            ],
            max_inflight: inner.max_inflight.load(Ordering::Relaxed),
            serialized_requests: inner.serialized_requests.load(Ordering::Relaxed),
            degradations: inner.degradations.load(Ordering::Relaxed),
            cache: inner.cache.stats(),
        }
    }

    /// The serial reference checksum for a kernel request (divergence
    /// oracle for harnesses).
    pub fn golden_checksum(&self, kernel: &str, dataset: &str) -> Result<f64, ServiceError> {
        Ok(self
            .inner
            .registry
            .entry(kernel, dataset)?
            .golden_checksum())
    }

    /// Stops admissions, drains queued jobs as `Shed(Shutdown)` errors,
    /// and joins the workers.
    pub fn shutdown(&self) {
        self.inner.draining.store(true, Ordering::Release);
        let drained: Vec<Job> = {
            let mut q = lock(&self.inner.queue);
            q.shutdown = true;
            q.per_client.clear();
            q.jobs.drain(..).collect()
        };
        self.inner.jobs_cv.notify_all();
        for job in drained {
            job.slot.fulfill(Response {
                result: Err(ServiceError::Shed(ShedReason::Shutdown)),
                telemetry: RequestTelemetry::default(),
            });
        }
        let handles: Vec<_> = lock(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for AnalysisService {
    fn drop(&mut self) {
        self.shutdown();
    }
}
