//! Crash-consistent on-disk persistence for the verdict-cache snapshot.
//!
//! The in-memory `subsub-cache/v2` document ([`crate::snapshot`]) is
//! already self-validating — versioned, digest-checked, rejected
//! wholesale on any corruption. This module gives it a durable home
//! with the classic two-generation scheme:
//!
//! ```text
//! save:  render → write cache.snap.tmp → fsync(tmp)
//!        → [head parses? rename head → cache.snap.prev : unlink head]
//!        → rename tmp → cache.snap → fsync(dir)
//! load:  try cache.snap → try cache.snap.prev → cold
//! ```
//!
//! The rename-based rotation means a crash at *any* point leaves the
//! directory in one of three states — new head good, no head but prev
//! good, or only garbage in `tmp` with the old head untouched — and in
//! every one of them [`SnapshotStore::recover`] finds a verified
//! generation or rebuilds cold. The head is re-parsed *before* being
//! promoted to `prev`, so a torn head (a crash or injected truncation
//! mid-write) can never evict the last good generation.
//!
//! Failpoint sites (`service.snapshot.save`, `.rotate`, `.load`) inject
//! errors, truncated writes, mid-rotation crashes, and delays at each
//! step; the chaos-serve harness drives them over the seeded `serve`
//! workload.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use subsub_failpoint::{self as failpoint, Action};
use subsub_telemetry as telemetry;
use subsub_telemetry::{EventKind, Phase};

use crate::shard::ShardedVerdictCache;
use crate::snapshot::{load_snapshot, parse_snapshot, write_snapshot};

/// Current generation (the head).
pub const HEAD_FILE: &str = "cache.snap";
/// Previous good generation, the fallback when the head is torn.
pub const PREV_FILE: &str = "cache.snap.prev";
/// In-flight write; never read by recovery.
pub const TMP_FILE: &str = "cache.snap.tmp";

/// Why a save did not land.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem error (rendered), at the step named in the message.
    Io(String),
    /// An armed failpoint aborted the save (chaos runs only).
    Injected(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(detail) => write!(f, "snapshot store i/o: {detail}"),
            StoreError::Injected(site) => write!(f, "snapshot save aborted by failpoint {site}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What [`SnapshotStore::recover`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// The head generation loaded clean (`n` entries warmed).
    Head(usize),
    /// The head was missing or torn; the previous generation loaded
    /// clean (`n` entries warmed).
    Fallback(usize),
    /// No verified generation on disk; the cache starts cold.
    Cold,
}

impl Recovery {
    /// Entries warmed into the cache by this recovery.
    pub fn entries(self) -> usize {
        match self {
            Recovery::Head(n) | Recovery::Fallback(n) => n,
            Recovery::Cold => 0,
        }
    }
}

/// Counter snapshot of the store's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Saves that landed (head renamed into place).
    pub saves: u64,
    /// Saves aborted by an error or injected fault.
    pub failed_saves: u64,
    /// Recoveries that had to fall back a generation.
    pub fallbacks: u64,
}

/// A two-generation snapshot directory. One per service.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    saves: AtomicU64,
    failed_saves: AtomicU64,
    fallbacks: AtomicU64,
}

impl SnapshotStore {
    /// Opens (creating if needed) the snapshot directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SnapshotStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| StoreError::Io(format!("create {}: {e}", dir.display())))?;
        Ok(SnapshotStore {
            dir,
            saves: AtomicU64::new(0),
            failed_saves: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn head(&self) -> PathBuf {
        self.dir.join(HEAD_FILE)
    }

    fn prev(&self) -> PathBuf {
        self.dir.join(PREV_FILE)
    }

    fn tmp(&self) -> PathBuf {
        self.dir.join(TMP_FILE)
    }

    /// Persists the cache as a new head generation. Crash-consistent:
    /// see the module docs for the step order and its invariant.
    pub fn save(&self, cache: &ShardedVerdictCache) -> Result<usize, StoreError> {
        let result = self.save_inner(cache);
        match &result {
            Ok(n) => {
                self.saves.fetch_add(1, Ordering::Relaxed);
                telemetry::instant(EventKind::SnapshotSave, Phase::Service, 0, *n as u64);
            }
            Err(_) => {
                self.failed_saves.fetch_add(1, Ordering::Relaxed);
                telemetry::instant(EventKind::SnapshotSave, Phase::Service, 0, 0);
            }
        }
        result
    }

    fn save_inner(&self, cache: &ShardedVerdictCache) -> Result<usize, StoreError> {
        let mut text = write_snapshot(cache);
        let entries = parse_snapshot(&text)
            .map(|v| v.len())
            .map_err(|e| StoreError::Io(format!("rendered snapshot unparseable: {e}")))?;
        // Chaos site: Error aborts before anything touches disk; Corrupt
        // models a torn write — the tmp file lands truncated, which the
        // digest check catches at recovery; Panic models a crash here.
        match failpoint::hit("service.snapshot.save") {
            Action::Error => return Err(StoreError::Injected("service.snapshot.save")),
            Action::Corrupt => text.truncate(text.len() / 2),
            Action::Proceed => {}
        }
        let tmp = self.tmp();
        let io = |step: &str, e: std::io::Error| StoreError::Io(format!("{step}: {e}"));
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io("create tmp", e))?;
            f.write_all(text.as_bytes())
                .map_err(|e| io("write tmp", e))?;
            f.sync_all().map_err(|e| io("fsync tmp", e))?;
        }
        // Rotate: promote the head to prev only if it still parses —
        // a torn head must not evict the last good generation.
        let head = self.head();
        let rotate_action = failpoint::hit("service.snapshot.rotate");
        if matches!(rotate_action, Action::Error) {
            return Err(StoreError::Injected("service.snapshot.rotate"));
        }
        if head.exists() {
            let head_good = fs::read_to_string(&head)
                .ok()
                .is_some_and(|t| parse_snapshot(&t).is_ok());
            if head_good {
                fs::rename(&head, self.prev()).map_err(|e| io("rotate head to prev", e))?;
            } else {
                let _ = fs::remove_file(&head);
            }
        }
        // Corrupt models a crash *between* the two renames: the old
        // head was rotated away (or discarded as torn) but the new one
        // never lands.
        if matches!(rotate_action, Action::Corrupt) {
            return Err(StoreError::Injected("service.snapshot.rotate"));
        }
        fs::rename(&tmp, &head).map_err(|e| io("rename tmp to head", e))?;
        // Make the renames durable. Directory fsync is best-effort: not
        // every platform allows opening a directory for sync.
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(entries)
    }

    /// Warm-starts `cache` from the newest verified generation on disk.
    /// The strict wholesale loader guarantees a torn or tampered file
    /// contributes nothing, so falling back is always safe. Never
    /// panics, never partially loads.
    pub fn recover(&self, cache: &ShardedVerdictCache) -> Recovery {
        // Chaos site: Error / Corrupt make the head unreadable for this
        // recovery (as if the read itself failed), driving the fallback.
        let head_blocked = !matches!(failpoint::hit("service.snapshot.load"), Action::Proceed);
        if !head_blocked {
            if let Ok(text) = fs::read_to_string(self.head()) {
                if let Ok(n) = load_snapshot(cache, &text) {
                    return Recovery::Head(n);
                }
            }
        }
        if let Ok(text) = fs::read_to_string(self.prev()) {
            if let Ok(n) = load_snapshot(cache, &text) {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                return Recovery::Fallback(n);
            }
        }
        Recovery::Cold
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            saves: self.saves.load(Ordering::Relaxed),
            failed_saves: self.failed_saves.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{InspectorKind, VerdictKey};
    use subsub_rtcheck::{Provenance, ValidatedIndexArray};

    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("subsub-store-{tag}-{}-{n}", std::process::id()))
    }

    /// A cache holding `gen` distinguishable entries (different lengths
    /// per generation, so the loaded entry count identifies which
    /// generation recovery found).
    fn cache_with(entries: usize) -> ShardedVerdictCache {
        let cache = ShardedVerdictCache::new(4, 64);
        for i in 0..entries {
            let data: Vec<usize> = (0..8 + i).collect();
            let arr = ValidatedIndexArray::ingest(
                format!("a{i}"),
                data,
                usize::MAX,
                Provenance::Generated { seed: i as u64 },
            )
            .expect("ramp in domain");
            let key = VerdictKey::of(&arr, InspectorKind::Monotone);
            cache.get_or_compute(key, || arr.summary_verdict());
        }
        cache
    }

    #[test]
    fn save_load_round_trips_and_keeps_a_fallback_generation() {
        let dir = scratch_dir("roundtrip");
        let store = SnapshotStore::open(&dir).expect("open");
        store.save(&cache_with(3)).expect("first save");
        store.save(&cache_with(5)).expect("second save");
        assert!(dir.join(HEAD_FILE).exists());
        assert!(dir.join(PREV_FILE).exists());
        let fresh = ShardedVerdictCache::new(4, 64);
        assert_eq!(store.recover(&fresh), Recovery::Head(5));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_head_at_every_boundary_falls_back_or_rebuilds_cold() {
        let dir = scratch_dir("torn");
        let store = SnapshotStore::open(&dir).expect("open");
        store.save(&cache_with(3)).expect("gen 1");
        store.save(&cache_with(5)).expect("gen 2");
        let good_head = fs::read_to_string(dir.join(HEAD_FILE)).expect("head");
        // Truncate the head at every 16-byte boundary (and 1-byte
        // edges). A cut that damages the document must fall back to the
        // previous generation — never a partial head, never a panic. A
        // cut past the meaningful content (trailing whitespace) still
        // parses whole and may load as the head; that is equally safe.
        let mut cuts: Vec<usize> = (0..good_head.len()).step_by(16).collect();
        cuts.extend([1, good_head.len().saturating_sub(1)]);
        for cut in cuts {
            let torn = &good_head[..cut];
            fs::write(dir.join(HEAD_FILE), torn).expect("torn write");
            let fresh = ShardedVerdictCache::new(4, 64);
            let got = store.recover(&fresh);
            if parse_snapshot(torn).is_ok() {
                assert_eq!(got, Recovery::Head(5), "benign cut at {cut}");
                assert_eq!(fresh.stats().entries, 5, "whole load at {cut}");
            } else {
                assert_eq!(
                    got,
                    Recovery::Fallback(3),
                    "cut at {cut} must fall back to the previous generation"
                );
                assert_eq!(fresh.stats().entries, 3, "no partial load at {cut}");
            }
        }
        // Single-byte corruption anywhere in the body: same guarantee.
        let mid = good_head.len() / 2;
        let mut flipped = good_head.clone().into_bytes();
        flipped[mid] ^= 0x01;
        fs::write(dir.join(HEAD_FILE), &flipped).expect("flip write");
        let fresh = ShardedVerdictCache::new(4, 64);
        assert_eq!(store.recover(&fresh), Recovery::Fallback(3));
        // Both generations torn: cold, still no panic.
        fs::write(dir.join(HEAD_FILE), "garbage").expect("head garbage");
        fs::write(dir.join(PREV_FILE), "garbage").expect("prev garbage");
        let fresh = ShardedVerdictCache::new(4, 64);
        assert_eq!(store.recover(&fresh), Recovery::Cold);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_head_never_evicts_the_good_previous_generation_on_save() {
        let dir = scratch_dir("rotate");
        let store = SnapshotStore::open(&dir).expect("open");
        store.save(&cache_with(3)).expect("gen 1");
        store.save(&cache_with(5)).expect("gen 2"); // prev = gen 1
                                                    // Tear the head, then save again: the torn head must be
                                                    // discarded, not promoted over the good prev.
        let head = fs::read_to_string(dir.join(HEAD_FILE)).expect("head");
        fs::write(dir.join(HEAD_FILE), &head[..head.len() / 2]).expect("tear");
        store.save(&cache_with(7)).expect("gen 3");
        let prev_text = fs::read_to_string(dir.join(PREV_FILE)).expect("prev");
        assert_eq!(
            parse_snapshot(&prev_text).map(|v| v.len()),
            Ok(3),
            "prev must still be the last good generation"
        );
        let fresh = ShardedVerdictCache::new(4, 64);
        assert_eq!(store.recover(&fresh), Recovery::Head(7));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_contents_recover_cold() {
        let dir = scratch_dir("cold");
        let store = SnapshotStore::open(&dir).expect("open");
        let fresh = ShardedVerdictCache::new(2, 16);
        assert_eq!(store.recover(&fresh), Recovery::Cold);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_abort_saves_without_losing_generations() {
        use subsub_failpoint::{arm, Arm, FailPlan, Fire};
        let dir = scratch_dir("inject");
        let store = SnapshotStore::open(&dir).expect("open");
        store.save(&cache_with(3)).expect("gen 1");
        store.save(&cache_with(5)).expect("gen 2");
        // Injected truncation: the save "lands" but the head is torn.
        {
            let plan = FailPlan::new().with("service.snapshot.save", Arm::Corrupt, Fire::always());
            let _armed = arm(plan);
            let _ = store.save(&cache_with(9));
        }
        let fresh = ShardedVerdictCache::new(4, 64);
        let r = store.recover(&fresh);
        assert!(
            matches!(r, Recovery::Fallback(5) | Recovery::Head(5)),
            "recovery after torn save must find generation 2, got {r:?}"
        );
        // Injected crash between the rotation renames: head gone.
        {
            let plan =
                FailPlan::new().with("service.snapshot.rotate", Arm::Corrupt, Fire::always());
            let _armed = arm(plan);
            assert!(store.save(&cache_with(9)).is_err());
        }
        let fresh = ShardedVerdictCache::new(4, 64);
        let r = store.recover(&fresh);
        assert!(
            matches!(r, Recovery::Fallback(n) | Recovery::Head(n) if n > 0),
            "a good generation must survive a mid-rotation crash, got {r:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
