//! `subsub-cache/v2`: the warm-start snapshot of the sharded verdict
//! cache.
//!
//! The snapshot is a versioned JSON document carrying the cache's
//! content-addressed entries plus a digest over their canonical
//! encoding. Load-time posture is strict: an unknown version, a digest
//! mismatch, a malformed entry, or any out-of-range field rejects the
//! *whole* snapshot ([`SnapshotError`]) — the service then starts cold
//! and rebuilds, which is always safe because the cache is only an
//! inspection amortizer. A snapshot is **never trusted for dispatch**:
//! loaded verdicts only key on content checksums, and the executor's
//! write-version tamper gate re-validates every array at dispatch time,
//! so a stale or adversarial snapshot can at worst cause a re-inspection,
//! never an unsound parallel run.
//!
//! Wire-format note: `telemetry::json` (like most JSON readers) parses
//! numbers through `f64`, exact only up to 2^53. Checksums, provenance
//! tags and the digest are full-width `u64`s, so they are encoded as
//! fixed-width hex *strings* and parsed back losslessly.

use crate::shard::{InspectorKind, ShardedVerdictCache, VerdictKey};
use subsub_rtcheck::{MonotoneVerdict, FINGERPRINT_VERSION};
use subsub_telemetry::json::{self, Json};

/// Magic/version tag of the format this module reads and writes. The
/// v1→v2 bump tracks the `subsub-fingerprint/v1→v2` checksum change:
/// a v1 snapshot's keys were computed under the byte-wise fingerprint
/// and can never match a key this build computes, so v1 documents are
/// rejected cleanly ([`SnapshotError::WrongVersion`] — the service
/// starts cold and rebuilds, it never panics and never serves a
/// cross-scheme verdict).
pub const SNAPSHOT_VERSION: &str = "subsub-cache/v2";

/// Why a snapshot was rejected. Every variant means "start cold".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Not parseable as JSON at all.
    Malformed {
        /// Parser diagnostic.
        detail: String,
    },
    /// Parsed, but not a `subsub-cache/v2` document (v1 and every
    /// other version land here).
    WrongVersion {
        /// What the document claimed.
        found: String,
    },
    /// The digest over the canonical entry encoding did not match.
    DigestMismatch,
    /// An entry field was missing, mistyped, or out of range.
    BadEntry {
        /// Zero-based entry index.
        index: usize,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Malformed { detail } => write!(f, "malformed snapshot: {detail}"),
            SnapshotError::WrongVersion { found } => {
                write!(f, "unsupported snapshot version {found:?}")
            }
            SnapshotError::DigestMismatch => write!(f, "snapshot digest mismatch"),
            SnapshotError::BadEntry { index, detail } => {
                write!(f, "snapshot entry {index}: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a over the canonical entry lines — the same hash family the
/// trust boundary uses for content fingerprints, applied to the
/// snapshot body so bit rot anywhere in the entry list is detected.
fn digest_lines(lines: &[String]) -> u64 {
    let mut h = FNV_OFFSET;
    for line in lines {
        for b in line.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= 0x0a; // line separator folds into the digest
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Canonical (digested) encoding of one entry, independent of JSON
/// whitespace or key order.
fn canonical_line(key: &VerdictKey, v: &MonotoneVerdict) -> String {
    format!(
        "{:016x},{},{:016x},{},{},{},{},{},{}",
        key.checksum,
        key.len,
        key.provenance,
        key.kind.code(),
        key.fp,
        v.nonstrict as u8,
        v.strict as u8,
        v.first_violation.map_or(-1i64, |i| i as i64),
        v.len,
    )
}

/// Serializes the cache's resident entries as a `subsub-cache/v2`
/// document. Entries are sorted by key so the output is deterministic.
pub fn write_snapshot(cache: &ShardedVerdictCache) -> String {
    let mut entries = cache.entries();
    entries.sort_by_key(|(k, _)| (k.checksum, k.len, k.provenance, k.kind.code(), k.fp));
    let lines: Vec<String> = entries
        .iter()
        .map(|(k, v)| canonical_line(k, &v.verdict))
        .collect();
    let digest = digest_lines(&lines);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": \"{SNAPSHOT_VERSION}\",\n"));
    out.push_str(&format!("  \"digest\": \"{digest:016x}\",\n"));
    out.push_str("  \"entries\": [\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"checksum\": \"{:016x}\", \"len\": {}, \"provenance\": \"{:016x}\", \"kind\": {}, \"fp\": {}, \"nonstrict\": {}, \"strict\": {}, \"first_violation\": {}, \"vlen\": {}}}{}\n",
            k.checksum,
            k.len,
            k.provenance,
            k.kind.code(),
            k.fp,
            v.verdict.nonstrict,
            v.verdict.strict,
            v.verdict.first_violation.map_or(-1i64, |i| i as i64),
            v.verdict.len,
            sep,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn hex_u64(j: &Json, field: &str, index: usize) -> Result<u64, SnapshotError> {
    let s = j
        .get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| SnapshotError::BadEntry {
            index,
            detail: format!("missing hex field {field:?}"),
        })?;
    u64::from_str_radix(s, 16).map_err(|_| SnapshotError::BadEntry {
        index,
        detail: format!("field {field:?} is not hex: {s:?}"),
    })
}

fn num_u64(j: &Json, field: &str, index: usize) -> Result<u64, SnapshotError> {
    j.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| SnapshotError::BadEntry {
            index,
            detail: format!("missing numeric field {field:?}"),
        })
}

fn num_bool(j: &Json, field: &str, index: usize) -> Result<bool, SnapshotError> {
    match j.get(field) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(SnapshotError::BadEntry {
            index,
            detail: format!("missing boolean field {field:?}"),
        }),
    }
}

/// Parses and validates a `subsub-cache/v2` document into
/// (key, verdict) pairs. Strict: any defect rejects the whole snapshot.
pub fn parse_snapshot(text: &str) -> Result<Vec<(VerdictKey, MonotoneVerdict)>, SnapshotError> {
    let doc = json::parse(text).map_err(|e| SnapshotError::Malformed {
        detail: e.to_string(),
    })?;
    let version = doc.get("version").and_then(Json::as_str).unwrap_or("");
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::WrongVersion {
            found: version.to_string(),
        });
    }
    let digest = hex_u64(&doc, "digest", 0)?;
    let entries =
        doc.get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| SnapshotError::Malformed {
                detail: "missing entries array".into(),
            })?;
    let mut out = Vec::with_capacity(entries.len());
    let mut lines = Vec::with_capacity(entries.len());
    for (index, e) in entries.iter().enumerate() {
        let checksum = hex_u64(e, "checksum", index)?;
        let len = num_u64(e, "len", index)? as usize;
        let provenance = hex_u64(e, "provenance", index)?;
        let kind_code = num_u64(e, "kind", index)?;
        let kind = u8::try_from(kind_code)
            .ok()
            .and_then(InspectorKind::from_code)
            .ok_or_else(|| SnapshotError::BadEntry {
                index,
                detail: format!("unknown inspector kind {kind_code}"),
            })?;
        let fp_code = num_u64(e, "fp", index)?;
        let fp = u8::try_from(fp_code)
            .ok()
            .filter(|f| *f == FINGERPRINT_VERSION)
            .ok_or_else(|| SnapshotError::BadEntry {
                index,
                detail: format!("unknown fingerprint scheme {fp_code}"),
            })?;
        let nonstrict = num_bool(e, "nonstrict", index)?;
        let strict = num_bool(e, "strict", index)?;
        let fv = e
            .get("first_violation")
            .and_then(Json::as_f64)
            .ok_or_else(|| SnapshotError::BadEntry {
                index,
                detail: "missing field \"first_violation\"".into(),
            })?;
        let first_violation = if fv < 0.0 { None } else { Some(fv as usize) };
        let vlen = num_u64(e, "vlen", index)? as usize;
        if vlen != len {
            return Err(SnapshotError::BadEntry {
                index,
                detail: format!("verdict len {vlen} disagrees with key len {len}"),
            });
        }
        if strict && !nonstrict {
            return Err(SnapshotError::BadEntry {
                index,
                detail: "strict verdict without nonstrict is impossible".into(),
            });
        }
        if let Some(i) = first_violation {
            if i >= len.max(1) {
                return Err(SnapshotError::BadEntry {
                    index,
                    detail: format!("first_violation {i} out of range for len {len}"),
                });
            }
        }
        let key = VerdictKey {
            checksum,
            len,
            provenance,
            kind,
            fp,
        };
        let verdict = MonotoneVerdict {
            nonstrict,
            strict,
            first_violation,
            len: vlen,
        };
        lines.push(canonical_line(&key, &verdict));
        out.push((key, verdict));
    }
    if digest_lines(&lines) != digest {
        return Err(SnapshotError::DigestMismatch);
    }
    Ok(out)
}

/// Loads a snapshot into `cache` as warm entries. Returns how many
/// entries were installed, or the rejection reason (cache untouched).
pub fn load_snapshot(cache: &ShardedVerdictCache, text: &str) -> Result<usize, SnapshotError> {
    let entries = parse_snapshot(text)?;
    let n = entries.len();
    for (key, verdict) in entries {
        cache.insert_warm(key, verdict);
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsub_rtcheck::{Provenance, ValidatedIndexArray};

    fn warmed_cache() -> ShardedVerdictCache {
        let cache = ShardedVerdictCache::new(4, 64);
        for seed in 0..6usize {
            let data: Vec<usize> = (0..16).map(|i| i * (seed + 1)).collect();
            let a = ValidatedIndexArray::ingest(
                "snap",
                data,
                usize::MAX,
                Provenance::Generated { seed: seed as u64 },
            )
            .unwrap();
            cache.verdict_for(&a, None, true).unwrap();
        }
        cache
    }

    #[test]
    fn round_trip_preserves_every_entry() {
        let cache = warmed_cache();
        let text = write_snapshot(&cache);
        let fresh = ShardedVerdictCache::new(4, 64);
        let n = load_snapshot(&fresh, &text).unwrap();
        assert_eq!(n, 6);
        let mut a = cache.entries();
        let mut b = fresh.entries();
        a.sort_by_key(|(k, _)| (k.checksum, k.provenance));
        b.sort_by_key(|(k, _)| (k.checksum, k.provenance));
        assert_eq!(a.len(), b.len());
        for ((ka, va), (kb, vb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            assert_eq!(va.verdict, vb.verdict);
            assert!(vb.warm, "loaded entries must be flagged warm");
        }
    }

    #[test]
    fn snapshot_is_deterministic() {
        let cache = warmed_cache();
        assert_eq!(write_snapshot(&cache), write_snapshot(&cache));
    }

    #[test]
    fn every_single_byte_corruption_is_rejected_or_harmless() {
        let cache = warmed_cache();
        let text = write_snapshot(&cache);
        let bytes = text.as_bytes();
        let mut rejected = 0usize;
        for i in 0..bytes.len() {
            let mut corrupt = bytes.to_vec();
            corrupt[i] ^= 0x01;
            let Ok(s) = String::from_utf8(corrupt) else {
                continue;
            };
            match load_snapshot(&ShardedVerdictCache::new(4, 64), &s) {
                Err(_) => rejected += 1,
                Ok(n) => {
                    // A flip in pure whitespace can be harmless; content
                    // flips must re-digest identically to pass, which a
                    // 1-bit flip in a digested field cannot.
                    assert_eq!(n, 6, "accepted corruption changed entry count");
                }
            }
        }
        assert!(
            rejected > bytes.len() / 2,
            "most single-bit flips should reject ({rejected}/{})",
            bytes.len()
        );
    }

    #[test]
    fn wrong_version_and_garbage_are_rejected() {
        let cache = ShardedVerdictCache::new(2, 8);
        assert!(matches!(
            load_snapshot(&cache, "not json"),
            Err(SnapshotError::Malformed { .. })
        ));
        let bad = "{\"version\": \"subsub-cache/v9\", \"digest\": \"0\", \"entries\": []}";
        assert!(matches!(
            load_snapshot(&cache, bad),
            Err(SnapshotError::WrongVersion { .. })
        ));
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn impossible_verdicts_are_rejected() {
        // strict=true with nonstrict=false cannot come from the inspector.
        let line = canonical_line(
            &VerdictKey {
                checksum: 1,
                len: 4,
                provenance: 2,
                kind: InspectorKind::Monotone,
                fp: FINGERPRINT_VERSION,
            },
            &MonotoneVerdict {
                nonstrict: false,
                strict: true,
                first_violation: None,
                len: 4,
            },
        );
        let digest = digest_lines(&[line]);
        let doc = format!(
            "{{\"version\": \"{SNAPSHOT_VERSION}\", \"digest\": \"{digest:016x}\", \"entries\": [\
             {{\"checksum\": \"0000000000000001\", \"len\": 4, \"provenance\": \"0000000000000002\", \
             \"kind\": 0, \"fp\": {FINGERPRINT_VERSION}, \"nonstrict\": false, \"strict\": true, \
             \"first_violation\": -1, \"vlen\": 4}}]}}"
        );
        assert!(matches!(
            parse_snapshot(&doc),
            Err(SnapshotError::BadEntry { .. })
        ));
    }

    #[test]
    fn v1_snapshots_are_rejected_cleanly() {
        // A well-formed document in the retired v1 format: pre-fp
        // entries, byte-wise-fingerprint keys. Loading must fail with
        // WrongVersion (cold rebuild), not panic and not install
        // entries whose checksums no current array can ever match.
        let v1 = "{\n  \"version\": \"subsub-cache/v1\",\n  \"digest\": \"0000000000000000\",\n  \
                  \"entries\": [\n    {\"checksum\": \"00000000deadbeef\", \"len\": 3, \
                  \"provenance\": \"0000000000000002\", \"kind\": 0, \"nonstrict\": true, \
                  \"strict\": true, \"first_violation\": -1, \"vlen\": 3}\n  ]\n}\n";
        let cache = ShardedVerdictCache::new(2, 8);
        assert_eq!(
            load_snapshot(&cache, v1),
            Err(SnapshotError::WrongVersion {
                found: "subsub-cache/v1".into()
            })
        );
        assert_eq!(cache.stats().entries, 0, "cache must stay cold");
    }

    #[test]
    fn unknown_fingerprint_scheme_is_rejected() {
        // A hypothetical v3 fingerprint inside an otherwise-valid v2
        // document: the entry gate must refuse it even before the
        // digest could vouch for it.
        let doc = format!(
            "{{\"version\": \"{SNAPSHOT_VERSION}\", \"digest\": \"0000000000000000\", \"entries\": [\
             {{\"checksum\": \"0000000000000001\", \"len\": 4, \"provenance\": \"0000000000000002\", \
             \"kind\": 0, \"fp\": 3, \"nonstrict\": true, \"strict\": true, \
             \"first_violation\": -1, \"vlen\": 4}}]}}"
        );
        match parse_snapshot(&doc) {
            Err(SnapshotError::BadEntry { detail, .. }) => {
                assert!(detail.contains("fingerprint scheme"), "{detail}");
            }
            other => panic!("wrong rejection: {other:?}"),
        }
    }

    #[test]
    fn empty_cache_round_trips() {
        let cache = ShardedVerdictCache::new(2, 8);
        let text = write_snapshot(&cache);
        assert_eq!(load_snapshot(&ShardedVerdictCache::new(2, 8), &text), Ok(0));
    }
}
