//! Kernel execution behind the service front door.
//!
//! A [`KernelRegistry`] lazily builds one [`KernelEntry`] per
//! (kernel, dataset) pair: the compile-time analysis runs once, the
//! plan's scalar check is compiled once, and prepared problem instances
//! are pooled so the hot path of a repeated request skips both
//! `prepare()` and analysis entirely — all that remains is the guard
//! ladder, whose inspection rung is served by the service's sharded,
//! content-addressed verdict cache.
//!
//! The entry keeps, alongside each pooled instance, *ingested copies*
//! of its index arrays ([`ValidatedIndexArray`]): the copies carry the
//! checksum/provenance identity the shard cache keys on. A copy is only
//! trusted while the live instance's write-version matches the version
//! recorded at copy time — any drift re-ingests before inspection, and
//! the executor's dispatch-time tamper gate re-reads the live versions
//! once more, so a writer racing between inspection and dispatch forces
//! the serial golden path rather than a stale parallel admission.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};
use subsub_core::{analyze_program, AlgorithmLevel, CheckExpr};
use subsub_failpoint as failpoint;
use subsub_kernels::{kernel_by_name, KernelInstance, Variant};
use subsub_omprt::{cancel::with_ambient_cancel, CancelToken, RegionError, Schedule, ThreadPool};
use subsub_rtcheck::{
    Decision, ExecError, GuardPath, GuardStats, GuardVerdict, GuardedExecutor, Provenance,
    ValidatedIndexArray,
};

use crate::request::{Outcome, ServiceError};
use crate::shard::{Lookup, ShardedVerdictCache};

/// How many reset instances an entry keeps pooled. More than the worker
/// count is never useful; beyond this, checked-in instances are dropped.
const INSTANCE_POOL_CAP: usize = 8;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A prepared problem instance plus the ingested, content-fingerprinted
/// copies of its index arrays.
struct PreparedInstance {
    inst: Box<dyn KernelInstance>,
    /// One ingested copy per index array, in `index_arrays()` order.
    ingested: Vec<ValidatedIndexArray>,
    /// The live view's write-version at the time each copy was taken.
    copied_at: Vec<u64>,
}

/// One (kernel, dataset) pair: analysis decision, compiled check,
/// guarded executor, and an instance pool.
pub struct KernelEntry {
    kernel_name: String,
    dataset: String,
    variant: Variant,
    executor: GuardedExecutor,
    pool_of_instances: Mutex<Vec<PreparedInstance>>,
    golden: Mutex<Option<f64>>,
}

/// What one guarded service execution produced, before it is folded
/// into a [`crate::Response`].
pub struct ExecReport {
    /// The outcome (always [`Outcome::Executed`]).
    pub outcome: Outcome,
    /// The verdict-cache lookup classification, when inspection ran.
    pub cache: Option<Lookup>,
}

impl KernelEntry {
    /// Runs the compile-time pipeline for `kernel_name` and binds the
    /// decision for `dataset`.
    pub fn new(
        kernel_name: &str,
        dataset: &str,
        level: AlgorithmLevel,
    ) -> Result<KernelEntry, ServiceError> {
        let kernel = kernel_by_name(kernel_name).ok_or_else(|| ServiceError::UnknownKernel {
            name: kernel_name.to_string(),
        })?;
        // Dataset names are validated by `prepare` (which panics on an
        // unknown one — kernels also accept a small "test" dataset not
        // listed in `datasets()`). Probe it once here, eagerly, so a bad
        // name surfaces as a structured error and a good one pre-warms
        // the instance pool.
        let probe = catch_unwind(AssertUnwindSafe(|| kernel.prepare(dataset))).map_err(|_| {
            ServiceError::UnknownKernel {
                name: format!("{kernel_name}:{dataset}"),
            }
        })?;
        let report =
            analyze_program(kernel.source(), level).map_err(|e| ServiceError::Rejected {
                code: e.code().to_string(),
                detail: e.to_string(),
            })?;
        let func = report
            .function(kernel.func_name())
            .ok_or_else(|| ServiceError::Rejected {
                code: "missing-function".to_string(),
                detail: format!("{kernel_name}: function {} missing", kernel.func_name()),
            })?;
        let (variant, check): (Variant, Option<CheckExpr>) = match func.last_nest_parallel() {
            None => (Variant::Serial, None),
            Some(l) => (
                if l.depth == 0 {
                    Variant::OuterParallel
                } else {
                    Variant::InnerParallel
                },
                l.decision.plan().and_then(|p| p.runtime_check.clone()),
            ),
        };
        let executor =
            GuardedExecutor::new(check.as_ref()).map_err(|e| ServiceError::Rejected {
                code: "check-not-executable".to_string(),
                detail: format!("{kernel_name}: check not executable: {e}"),
            })?;
        let entry = KernelEntry {
            kernel_name: kernel_name.to_string(),
            dataset: dataset.to_string(),
            variant,
            executor,
            pool_of_instances: Mutex::new(Vec::new()),
            golden: Mutex::new(None),
        };
        let (ingested, copied_at) = entry.ingest_views(probe.as_ref());
        lock(&entry.pool_of_instances).push(PreparedInstance {
            inst: probe,
            ingested,
            copied_at,
        });
        Ok(entry)
    }

    /// The compile-time variant decision.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Guard decision counters for this entry.
    pub fn guard_stats(&self) -> GuardStats {
        self.executor.stats()
    }

    fn ingest_views(&self, inst: &dyn KernelInstance) -> (Vec<ValidatedIndexArray>, Vec<u64>) {
        let mut ingested = Vec::new();
        let mut copied_at = Vec::new();
        for view in inst.index_arrays() {
            // Domain validation happened in the kernel constructor; the
            // service boundary adds content fingerprint + provenance.
            let arr = ValidatedIndexArray::ingest(
                view.name,
                view.data.to_vec(),
                usize::MAX,
                Provenance::Dataset {
                    name: format!("{}:{}", self.kernel_name, self.dataset),
                },
            )
            .expect("usize::MAX domain admits any subscript");
            ingested.push(arr);
            copied_at.push(view.version);
        }
        (ingested, copied_at)
    }

    fn checkout(&self) -> PreparedInstance {
        if let Some(p) = lock(&self.pool_of_instances).pop() {
            return p;
        }
        let kernel = kernel_by_name(&self.kernel_name).expect("entry validated at construction");
        let inst = kernel.prepare(&self.dataset);
        let (ingested, copied_at) = self.ingest_views(inst.as_ref());
        PreparedInstance {
            inst,
            ingested,
            copied_at,
        }
    }

    fn restore(&self, mut p: PreparedInstance) {
        p.inst.reset();
        // Reset restores the pristine dataset but also rolls back any
        // tamper, so the copies must be refreshed on next checkout if
        // versions moved; `refresh` below handles that lazily.
        let mut pool = lock(&self.pool_of_instances);
        if pool.len() < INSTANCE_POOL_CAP {
            pool.push(p);
        }
    }

    /// Re-ingests any index-array copy whose live write-version moved
    /// since the copy was taken.
    fn refresh(p: &mut PreparedInstance) {
        let views = p.inst.index_arrays();
        for (i, view) in views.iter().enumerate() {
            if p.copied_at.get(i).copied() != Some(view.version) {
                let refreshed = ValidatedIndexArray::ingest(
                    view.name,
                    view.data.to_vec(),
                    usize::MAX,
                    p.ingested[i].provenance().clone(),
                )
                .expect("usize::MAX domain admits any subscript");
                p.ingested[i] = refreshed;
                p.copied_at[i] = view.version;
            }
        }
    }

    /// The serial reference checksum for divergence checking, computed
    /// once per entry.
    pub fn golden_checksum(&self) -> f64 {
        if let Some(g) = *lock(&self.golden) {
            return g;
        }
        let mut p = self.checkout();
        p.inst.run_serial();
        let g = p.inst.checksum();
        self.restore(p);
        *lock(&self.golden) = Some(g);
        g
    }

    /// One guarded execution through the service's sharded verdict
    /// cache. `serialized` forces the serial path (degraded-mode
    /// admission); `paranoid` re-verifies ingested copies before
    /// serving cached verdicts; `cancel` (the per-job token) is
    /// installed as the ambient token around every kernel region and
    /// checked at each rung boundary — a tripped token abandons the
    /// invocation with [`ServiceError::Canceled`], discarding partial
    /// work.
    pub fn execute(
        &self,
        cache: &ShardedVerdictCache,
        pool: &ThreadPool,
        serialized: bool,
        paranoid: bool,
        cancel: Option<&Arc<CancelToken>>,
    ) -> Result<ExecReport, ServiceError> {
        let mut p = self.checkout();
        let report = self.execute_prepared(&mut p, cache, pool, serialized, paranoid, cancel);
        self.restore(p);
        report
    }

    fn execute_prepared(
        &self,
        p: &mut PreparedInstance,
        cache: &ShardedVerdictCache,
        pool: &ThreadPool,
        serialized: bool,
        paranoid: bool,
        cancel: Option<&Arc<CancelToken>>,
    ) -> Result<ExecReport, ServiceError> {
        let _kernel_span =
            subsub_telemetry::span_labeled(subsub_telemetry::Phase::KernelRun, &self.kernel_name);
        let cancelled = || cancel.is_some_and(|c| c.is_cancelled());
        if cancelled() {
            return Err(ServiceError::Canceled);
        }
        if self.variant == Variant::Serial || serialized {
            p.inst.run_serial();
            if cancelled() {
                return Err(ServiceError::Canceled);
            }
            return Ok(ExecReport {
                outcome: Outcome::Executed {
                    path: GuardPath::Serial,
                    checksum: p.inst.checksum(),
                    degraded: (self.variant == Variant::Serial)
                        .then_some(ExecError::AnalysisSerial),
                },
                cache: None,
            });
        }
        KernelEntry::refresh(p);
        let bindings = p.inst.runtime_bindings();
        // Breaker admission + scalar check (no arrays: inspection goes
        // through the shard cache below, not the per-executor memo).
        let mut decision =
            self.executor
                .decide_recoverable(&self.kernel_name, &bindings, &[], Some(pool));
        let mut cache_lookup: Option<Lookup> = None;
        if decision.verdict.path == GuardPath::Parallel {
            let required: Vec<_> = p.inst.index_arrays().iter().map(|v| v.required).collect();
            let mut inspected = Vec::with_capacity(p.ingested.len());
            let mut denial: Option<ExecError> = None;
            for (i, arr) in p.ingested.iter().enumerate() {
                match cache.verdict_for(arr, Some(pool), paranoid) {
                    Ok((verdict, lookup)) => {
                        cache_lookup = Some(match cache_lookup {
                            None => lookup,
                            Some(prev) => combine(prev, lookup),
                        });
                        inspected.push((arr.name().to_string(), p.copied_at[i]));
                        if !verdict.satisfies(required[i]) {
                            denial = Some(ExecError::NotMonotone {
                                array: arr.name().to_string(),
                                required: required[i],
                                first_violation: verdict.first_violation,
                            });
                            break;
                        }
                    }
                    Err(e) => {
                        denial = Some(e.into());
                        break;
                    }
                }
            }
            decision = Decision {
                verdict: match denial {
                    None => GuardVerdict {
                        path: GuardPath::Parallel,
                        reason: None,
                    },
                    Some(reason) => GuardVerdict {
                        path: GuardPath::Serial,
                        reason: Some(reason),
                    },
                },
                inspected,
            };
        }
        // Dispatch-time tamper gate: re-read the live versions.
        let versions_owned: Vec<(String, u64)> = p
            .inst
            .index_arrays()
            .iter()
            .map(|v| (v.name.to_string(), v.version))
            .collect();
        let versions: Vec<(&str, u64)> = versions_owned
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        let variant = self.variant;
        let cell = RefCell::new(&mut p.inst);
        let (checksum, reason) = match self.executor.execute_admitted_cancellable(
            &self.kernel_name,
            &decision,
            &versions,
            cancel.map(Arc::as_ref),
            || {
                let mut inst = cell.borrow_mut();
                let mut run = || {
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        failpoint::hit("service.kernel.parallel");
                        inst.run(variant, pool, Schedule::Static { chunk: None });
                    }));
                    match r {
                        Ok(()) => Ok(inst.checksum()),
                        Err(panic) => Err(classify_panic(panic.as_ref())),
                    }
                };
                // The ambient scope makes the per-job token visible to
                // every region the kernel opens on the shared pool, so
                // a janitor-tripped deadline stops the run between
                // chunk claims instead of after the kernel finishes.
                match cancel {
                    Some(token) => with_ambient_cancel(token, run),
                    None => run(),
                }
            },
            || {
                cell.borrow_mut().reset();
            },
            || {
                let mut inst = cell.borrow_mut();
                inst.run_serial();
                inst.checksum()
            },
        ) {
            Ok(out) => out,
            Err(_) => return Err(ServiceError::Canceled),
        };
        let path = if reason.is_none() {
            GuardPath::Parallel
        } else {
            GuardPath::Serial
        };
        Ok(ExecReport {
            outcome: Outcome::Executed {
                path,
                checksum,
                degraded: reason,
            },
            cache: cache_lookup,
        })
    }
}

/// Misses dominate (an inspection ran); then coalesced waits; warm and
/// live hits are cheapest.
fn combine(a: Lookup, b: Lookup) -> Lookup {
    fn rank(l: Lookup) -> u8 {
        match l {
            Lookup::Miss => 3,
            Lookup::Coalesced => 2,
            Lookup::WarmHit => 1,
            Lookup::Hit => 0,
        }
    }
    if rank(b) > rank(a) {
        b
    } else {
        a
    }
}

/// Maps a caught panic payload from a parallel kernel run onto the
/// [`ExecError`] taxonomy.
fn classify_panic(p: &(dyn std::any::Any + Send)) -> ExecError {
    if let Some(e) = p.downcast_ref::<RegionError>() {
        return match e {
            RegionError::DeadlineExceeded => ExecError::Timeout,
            other => ExecError::ParallelFault {
                detail: other.to_string(),
            },
        };
    }
    if let Some(inj) = p.downcast_ref::<failpoint::InjectedPanic>() {
        return ExecError::ParallelFault {
            detail: inj.to_string(),
        };
    }
    if let Some(s) = p.downcast_ref::<&str>() {
        return ExecError::ParallelFault {
            detail: (*s).to_string(),
        };
    }
    if let Some(s) = p.downcast_ref::<String>() {
        return ExecError::ParallelFault { detail: s.clone() };
    }
    ExecError::ParallelFault {
        detail: "non-string panic payload".into(),
    }
}

/// Lazily-built map of (kernel, dataset) → [`KernelEntry`], shared by
/// every worker.
pub struct KernelRegistry {
    level: AlgorithmLevel,
    entries: Mutex<HashMap<(String, String), Arc<KernelEntry>>>,
}

impl KernelRegistry {
    /// An empty registry analyzing at `level`.
    pub fn new(level: AlgorithmLevel) -> KernelRegistry {
        KernelRegistry {
            level,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// The entry for a (kernel, dataset) pair, building it on first use.
    pub fn entry(&self, kernel: &str, dataset: &str) -> Result<Arc<KernelEntry>, ServiceError> {
        let key = (kernel.to_string(), dataset.to_string());
        if let Some(e) = lock(&self.entries).get(&key) {
            return Ok(Arc::clone(e));
        }
        // Built outside the lock: analysis takes milliseconds and other
        // requests should not stall behind it. A racing builder is
        // harmless — last writer wins, both entries are equivalent.
        let built = Arc::new(KernelEntry::new(kernel, dataset, self.level)?);
        let mut entries = lock(&self.entries);
        Ok(Arc::clone(entries.entry(key).or_insert(built)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_kernel_and_dataset_are_rejected() {
        assert!(matches!(
            KernelEntry::new("NoSuchKernel", "test", AlgorithmLevel::New),
            Err(ServiceError::UnknownKernel { .. })
        ));
        assert!(matches!(
            KernelEntry::new("AMGmk", "no-such-dataset", AlgorithmLevel::New),
            Err(ServiceError::UnknownKernel { .. })
        ));
    }

    #[test]
    fn repeated_execution_hits_the_shard_cache() {
        let cache = ShardedVerdictCache::new(4, 64);
        let pool = ThreadPool::new(2);
        let entry = KernelEntry::new("AMGmk", "test", AlgorithmLevel::New).unwrap();
        assert_eq!(entry.variant(), Variant::OuterParallel);
        let first = entry.execute(&cache, &pool, false, true, None).unwrap();
        assert_eq!(first.cache, Some(Lookup::Miss));
        let second = entry.execute(&cache, &pool, false, true, None).unwrap();
        assert_eq!(second.cache, Some(Lookup::Hit));
        let (Outcome::Executed { checksum: a, .. }, Outcome::Executed { checksum: b, .. }) =
            (&first.outcome, &second.outcome)
        else {
            panic!("expected executed outcomes");
        };
        assert!(subsub_kernels::common::close(*a, *b));
        assert!(subsub_kernels::common::close(*a, entry.golden_checksum()));
    }

    #[test]
    fn serialized_mode_forces_the_serial_path() {
        let cache = ShardedVerdictCache::new(2, 16);
        let pool = ThreadPool::new(2);
        let entry = KernelEntry::new("AMGmk", "test", AlgorithmLevel::New).unwrap();
        let r = entry.execute(&cache, &pool, true, true, None).unwrap();
        let Outcome::Executed { path, checksum, .. } = r.outcome else {
            panic!("expected executed outcome");
        };
        assert_eq!(path, GuardPath::Serial);
        assert!(r.cache.is_none(), "serialized mode skips inspection");
        assert!(subsub_kernels::common::close(
            checksum,
            entry.golden_checksum()
        ));
    }
}
