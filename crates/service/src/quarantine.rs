//! Poison quarantine: strike accounting and probed re-admission for
//! request identities that keep faulting workers.
//!
//! The PR 3 `CircuitBreaker` protects the pool from a *kernel* whose
//! parallel variant keeps faulting. That is the wrong granularity for a
//! multi-tenant front door: one hostile *input* (a source text that
//! panics the front end, a dataset that trips injected faults on every
//! run) can be resubmitted forever, and each attempt costs a worker a
//! `catch_unwind`, a degradation-mode flip, and a serialized cooldown
//! that punishes every other caller.
//!
//! The quarantine keys on the request's *poison key* — a content
//! fingerprint of the payload ([`crate::Payload::poison_key`]) — and
//! walks a strike ladder:
//!
//! 1. Every faulting completion (worker panic, parallel fault or
//!    timeout degradation, terminal failure) records a **strike**;
//!    strikes older than the window are forgotten.
//! 2. K strikes inside the window **quarantine** the identity: new
//!    submissions shed with [`crate::ShedReason::Quarantined`].
//! 3. After an exponential backoff, exactly one **probe** is admitted —
//!    serial-only, single-flight — so the identity can prove itself
//!    without touching the parallel machinery.
//! 4. A clean probe **releases** the identity (strikes cleared); a
//!    faulting probe doubles the backoff (bounded by a cap) and keeps
//!    the gate shut.
//!
//! A probe that never settles (reaped as expired/abandoned) releases
//! its single-flight slot without moving the ladder either way.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};
use subsub_telemetry as telemetry;
use subsub_telemetry::{EventKind, Phase};

/// Tunables for the quarantine ladder.
#[derive(Debug, Clone)]
pub struct QuarantineConfig {
    /// Strikes within [`QuarantineConfig::window`] that quarantine an
    /// identity (the paper-side "K").
    pub strikes: u32,
    /// Sliding window strikes are counted over.
    pub window: Duration,
    /// Backoff before the first probe; doubles per faulting probe.
    pub backoff_base: Duration,
    /// Upper bound on the probe backoff.
    pub backoff_cap: Duration,
}

impl Default for QuarantineConfig {
    fn default() -> QuarantineConfig {
        QuarantineConfig {
            strikes: 3,
            window: Duration::from_secs(10),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(5),
        }
    }
}

/// How admission control should treat a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Identity in good standing: admit normally.
    Normal,
    /// Identity quarantined and due for its probe: admit exactly this
    /// request, serial-only. The caller owns the probe slot and must
    /// settle it via `record_clean` / `record_strike` / `abort_probe`.
    Probe,
    /// Identity quarantined, backoff not elapsed (or a probe is already
    /// in flight): shed.
    Refused,
}

#[derive(Debug)]
struct Quarantined {
    /// Faulting probes so far (backoff exponent).
    level: u32,
    /// Earliest instant the next probe may be admitted.
    next_probe: Instant,
    /// Single-flight: a probe is currently executing.
    probe_inflight: bool,
}

#[derive(Debug, Default)]
struct IdentityState {
    strikes: Vec<Instant>,
    quarantined: Option<Quarantined>,
}

/// Counter snapshot of the ladder's movements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuarantineStats {
    /// Strikes recorded (including ones that quarantined).
    pub strikes: u64,
    /// Identities moved into quarantine.
    pub quarantined: u64,
    /// Probes admitted.
    pub probes: u64,
    /// Identities released after a clean probe.
    pub released: u64,
    /// Submissions refused while quarantined.
    pub refused: u64,
    /// Identities currently quarantined.
    pub active: u64,
}

/// The strike ledger. One per service.
#[derive(Debug)]
pub struct Quarantine {
    cfg: QuarantineConfig,
    state: Mutex<HashMap<u64, IdentityState>>,
    strikes: AtomicU64,
    quarantined: AtomicU64,
    probes: AtomicU64,
    released: AtomicU64,
    refused: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Quarantine {
    /// An empty ledger.
    pub fn new(cfg: QuarantineConfig) -> Quarantine {
        Quarantine {
            cfg,
            state: Mutex::new(HashMap::new()),
            strikes: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            released: AtomicU64::new(0),
            refused: AtomicU64::new(0),
        }
    }

    fn backoff(&self, level: u32) -> Duration {
        let mult = 1u32.checked_shl(level).unwrap_or(u32::MAX);
        self.cfg
            .backoff_base
            .checked_mul(mult)
            .map_or(self.cfg.backoff_cap, |d| d.min(self.cfg.backoff_cap))
    }

    /// Admission decision for one submission of `key` at `now`.
    pub fn admit(&self, key: u64, now: Instant) -> Admission {
        let mut st = lock(&self.state);
        let Some(id) = st.get_mut(&key) else {
            return Admission::Normal;
        };
        let Some(q) = id.quarantined.as_mut() else {
            return Admission::Normal;
        };
        if q.probe_inflight || now < q.next_probe {
            self.refused.fetch_add(1, Ordering::Relaxed);
            return Admission::Refused;
        }
        q.probe_inflight = true;
        self.probes.fetch_add(1, Ordering::Relaxed);
        telemetry::instant(EventKind::Quarantine, Phase::Service, 0, 3);
        Admission::Probe
    }

    /// Records a faulting completion; returns `true` when this strike
    /// (or faulting probe) leaves the identity quarantined.
    pub fn record_strike(&self, key: u64, now: Instant) -> bool {
        self.strikes.fetch_add(1, Ordering::Relaxed);
        telemetry::instant(EventKind::Quarantine, Phase::Service, 0, 1);
        let mut st = lock(&self.state);
        let id = st.entry(key).or_default();
        if let Some(q) = id.quarantined.as_mut() {
            // A faulting probe: shut the gate for twice as long.
            q.probe_inflight = false;
            q.level = q.level.saturating_add(1);
            q.next_probe = now + self.backoff(q.level);
            return true;
        }
        id.strikes.push(now);
        let horizon = now.checked_sub(self.cfg.window);
        id.strikes.retain(|t| horizon.is_none_or(|h| *t >= h));
        if id.strikes.len() >= self.cfg.strikes as usize {
            id.strikes.clear();
            id.quarantined = Some(Quarantined {
                level: 0,
                next_probe: now + self.backoff(0),
                probe_inflight: false,
            });
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            telemetry::instant(EventKind::Quarantine, Phase::Service, 0, 2);
            return true;
        }
        false
    }

    /// Records a clean completion: releases a quarantined identity (the
    /// probe came back clean) and clears accumulated strikes otherwise.
    pub fn record_clean(&self, key: u64) {
        let mut st = lock(&self.state);
        if let Some(id) = st.get(&key) {
            if id.quarantined.is_some() {
                self.released.fetch_add(1, Ordering::Relaxed);
                telemetry::instant(EventKind::Quarantine, Phase::Service, 0, 4);
            }
        }
        // Good standing carries no state worth keeping.
        st.remove(&key);
    }

    /// Releases a probe slot whose request never settled (reaped as
    /// expired or abandoned): the gate reopens at the same backoff
    /// level — the identity proved nothing either way.
    pub fn abort_probe(&self, key: u64) {
        let mut st = lock(&self.state);
        if let Some(q) = st.get_mut(&key).and_then(|id| id.quarantined.as_mut()) {
            q.probe_inflight = false;
        }
    }

    /// Whether `key` is currently quarantined.
    pub fn is_quarantined(&self, key: u64) -> bool {
        lock(&self.state)
            .get(&key)
            .is_some_and(|id| id.quarantined.is_some())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QuarantineStats {
        let active = lock(&self.state)
            .values()
            .filter(|id| id.quarantined.is_some())
            .count() as u64;
        QuarantineStats {
            strikes: self.strikes.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> QuarantineConfig {
        QuarantineConfig {
            strikes: 3,
            window: Duration::from_secs(10),
            backoff_base: Duration::from_millis(40),
            backoff_cap: Duration::from_millis(200),
        }
    }

    #[test]
    fn k_strikes_quarantine_and_clean_probe_releases() {
        let q = Quarantine::new(cfg());
        let t0 = Instant::now();
        assert!(!q.record_strike(7, t0));
        assert!(!q.record_strike(7, t0));
        assert!(q.record_strike(7, t0), "third strike quarantines");
        assert!(q.is_quarantined(7));
        // Backoff not elapsed: refused.
        assert_eq!(q.admit(7, t0), Admission::Refused);
        // Backoff elapsed: exactly one probe, single-flight.
        let later = t0 + Duration::from_millis(50);
        assert_eq!(q.admit(7, later), Admission::Probe);
        assert_eq!(q.admit(7, later), Admission::Refused);
        q.record_clean(7);
        assert!(!q.is_quarantined(7));
        assert_eq!(q.admit(7, later), Admission::Normal);
        let s = q.stats();
        assert_eq!((s.quarantined, s.probes, s.released), (1, 1, 1));
    }

    #[test]
    fn faulting_probe_doubles_the_backoff() {
        let q = Quarantine::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            q.record_strike(9, t0);
        }
        let p1 = t0 + Duration::from_millis(41);
        assert_eq!(q.admit(9, p1), Admission::Probe);
        assert!(q.record_strike(9, p1), "faulting probe stays quarantined");
        // Base backoff no longer suffices: level 1 needs 80 ms.
        assert_eq!(
            q.admit(9, p1 + Duration::from_millis(41)),
            Admission::Refused
        );
        assert_eq!(q.admit(9, p1 + Duration::from_millis(81)), Admission::Probe);
    }

    #[test]
    fn backoff_is_capped() {
        let q = Quarantine::new(cfg());
        assert_eq!(q.backoff(0), Duration::from_millis(40));
        assert_eq!(q.backoff(1), Duration::from_millis(80));
        assert_eq!(q.backoff(40), Duration::from_millis(200));
        assert_eq!(q.backoff(u32::MAX), Duration::from_millis(200));
    }

    #[test]
    fn strikes_outside_the_window_are_forgotten() {
        let q = Quarantine::new(QuarantineConfig {
            window: Duration::from_millis(10),
            ..cfg()
        });
        let t0 = Instant::now();
        q.record_strike(3, t0);
        q.record_strike(3, t0);
        // Two stale strikes + one fresh: not enough inside the window.
        assert!(!q.record_strike(3, t0 + Duration::from_millis(50)));
        assert!(!q.is_quarantined(3));
    }

    #[test]
    fn aborted_probe_frees_the_slot_without_moving_the_ladder() {
        let q = Quarantine::new(cfg());
        let t0 = Instant::now();
        for _ in 0..3 {
            q.record_strike(4, t0);
        }
        let p = t0 + Duration::from_millis(50);
        assert_eq!(q.admit(4, p), Admission::Probe);
        q.abort_probe(4);
        assert!(q.is_quarantined(4), "abort does not release");
        // Slot free again at the same backoff level.
        assert_eq!(q.admit(4, p), Admission::Probe);
    }

    #[test]
    fn clean_run_clears_accumulated_strikes() {
        let q = Quarantine::new(cfg());
        let t0 = Instant::now();
        q.record_strike(5, t0);
        q.record_strike(5, t0);
        q.record_clean(5);
        assert!(!q.record_strike(5, t0), "counter restarted");
    }
}
