//! Request/response surface of the analysis service.
//!
//! A request either asks for *analysis only* (hand back the program
//! report for C source or pre-lowered IR) or for a *guarded kernel
//! execution* (analyze → inspect via the sharded verdict cache → guard
//! → dispatch, returning the executed variant and result checksum).
//! Every response carries a [`RequestTelemetry`] so callers can see
//! where their time went without scraping the global trace ring.

use std::time::Duration;
use subsub_core::{AlgorithmLevel, ProgramReport};
use subsub_rtcheck::{ExecError, GuardPath};

use crate::shard::Lookup;

/// What the caller wants done.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Parse + lower + analyze a C-subset translation unit.
    AnalyzeSource {
        /// The C-subset source text.
        source: String,
        /// Analysis level to run at.
        level: AlgorithmLevel,
    },
    /// Analyze pre-lowered IR nests (no parse step).
    AnalyzeLowered {
        /// The lowered functions.
        funcs: Vec<subsub_ir::LoweredFunction>,
        /// Analysis level to run at.
        level: AlgorithmLevel,
    },
    /// Run a registered kernel dataset through the full
    /// analyze → inspect → guard → dispatch path.
    Execute {
        /// Registered kernel name (see [`crate::KernelRegistry`]).
        kernel: String,
        /// Dataset name within the kernel.
        dataset: String,
    },
}

impl Payload {
    /// Short label for telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            Payload::AnalyzeSource { .. } => "analyze-source",
            Payload::AnalyzeLowered { .. } => "analyze-lowered",
            Payload::Execute { .. } => "execute",
        }
    }

    /// Content fingerprint identifying this payload for the poison
    /// quarantine ([`crate::quarantine::Quarantine`]): resubmissions of
    /// the same hostile input hash to the same key regardless of which
    /// client sends them. FNV-1a over the payload kind and its
    /// identity-bearing content (source text / nest shape / kernel and
    /// dataset names).
    pub fn poison_key(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.label().as_bytes());
        match self {
            Payload::AnalyzeSource { source, level } => {
                eat(source.as_bytes());
                eat(format!("{level:?}").as_bytes());
            }
            Payload::AnalyzeLowered { funcs, level } => {
                // Lowered IR carries no canonical serialization; the
                // function names plus nest counts are identity enough
                // to stop verbatim resubmission of a poison input.
                for f in funcs {
                    eat(f.name.as_bytes());
                    eat(&(f.body.len() as u64).to_le_bytes());
                }
                eat(format!("{level:?}").as_bytes());
            }
            Payload::Execute { kernel, dataset } => {
                eat(kernel.as_bytes());
                eat(b":");
                eat(dataset.as_bytes());
            }
        }
        h
    }
}

/// One unit of work submitted by a client.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller identity for fairness accounting. Callers sharing an id
    /// share one in-flight budget.
    pub client: String,
    /// The work itself.
    pub payload: Payload,
    /// Lifetime budget, measured from admission. A request still
    /// unfinished when the budget runs out is cancelled at the next
    /// cooperative boundary and answered [`ServiceError::Expired`].
    /// `None` defers to [`crate::ServiceConfig::default_deadline`].
    pub deadline: Option<Duration>,
}

impl Request {
    /// A request with no deadline of its own.
    pub fn new(client: impl Into<String>, payload: Payload) -> Request {
        Request {
            client: client.into(),
            payload,
            deadline: None,
        }
    }

    /// Sets the lifetime budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Request {
        self.deadline = Some(deadline);
        self
    }
}

/// Why admission control refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue was full.
    QueueFull,
    /// The caller already has its fair share of in-flight requests.
    FairnessCap,
    /// The service is degraded and shedding parallel work.
    Degraded,
    /// The service is shutting down.
    Shutdown,
    /// The payload's identity is quarantined after repeated faulting
    /// completions and its probe backoff has not elapsed (or a probe is
    /// already in flight).
    Quarantined,
    /// The payload exceeds the frontend parse budget (e.g. source text
    /// larger than `max_input_bytes`) — refused before queueing so an
    /// oversized body can't occupy a worker at all.
    OverBudget,
}

impl ShedReason {
    /// Stable numeric code carried in the `service_shed` telemetry arg.
    pub fn code(self) -> u64 {
        match self {
            ShedReason::QueueFull => 1,
            ShedReason::FairnessCap => 2,
            ShedReason::Degraded => 3,
            ShedReason::Shutdown => 4,
            ShedReason::Quarantined => 5,
            ShedReason::OverBudget => 6,
        }
    }
}

/// Number of shed reasons (sizes the per-reason counters).
pub const NUM_SHED_REASONS: usize = 6;

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "queue full"),
            ShedReason::FairnessCap => write!(f, "fairness cap"),
            ShedReason::Degraded => write!(f, "degraded"),
            ShedReason::Shutdown => write!(f, "shutdown"),
            ShedReason::Quarantined => write!(f, "quarantined"),
            ShedReason::OverBudget => write!(f, "over budget"),
        }
    }
}

/// Terminal failure of a request (distinct from a guarded execution
/// that *degraded* — degradation still yields an [`Outcome::Executed`]
/// with a serial path).
#[derive(Debug, Clone)]
pub enum ServiceError {
    /// Admission control refused the request.
    Shed(ShedReason),
    /// The C front end or lowering rejected the program. This is the
    /// client's own bad input: it never counts as a worker fault and
    /// never contributes a quarantine strike.
    Rejected {
        /// Stable machine-readable code (a `DiagCode` kebab name such
        /// as `"parse-unexpected-token"`, or `"lower"`,
        /// `"missing-function"`, `"check-not-executable"`).
        code: String,
        /// Human-readable diagnostic, rendered with source position
        /// where one exists.
        detail: String,
    },
    /// Unknown kernel or dataset name.
    UnknownKernel {
        /// The offending name.
        name: String,
    },
    /// The guarded execution failed terminally (both parallel and
    /// serial rescue unavailable).
    Failed(ExecError),
    /// The response channel was abandoned (service dropped mid-flight).
    Canceled,
    /// The request's deadline passed before a response was produced;
    /// any partial work was cancelled and discarded.
    Expired,
    /// The waiter abandoned the ticket (dropped it or timed out); the
    /// job was cancelled and its fairness slot released.
    Abandoned,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Shed(r) => write!(f, "request shed: {r}"),
            ServiceError::Rejected { code, detail } => {
                write!(f, "program rejected [{code}]: {detail}")
            }
            ServiceError::UnknownKernel { name } => write!(f, "unknown kernel/dataset: {name}"),
            ServiceError::Failed(e) => write!(f, "execution failed: {e}"),
            ServiceError::Canceled => write!(f, "request canceled"),
            ServiceError::Expired => write!(f, "request deadline expired"),
            ServiceError::Abandoned => write!(f, "request abandoned by its waiter"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The useful part of a successful response.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Analysis-only request: the program report.
    Analyzed(ProgramReport),
    /// Execution request: what ran and what it produced.
    Executed {
        /// Guard path actually taken.
        path: GuardPath,
        /// Kernel output checksum (for divergence checking).
        checksum: f64,
        /// Whether the parallel attempt degraded to serial rescue.
        degraded: Option<ExecError>,
    },
}

/// Per-request accounting returned with every response.
#[derive(Debug, Clone, Default)]
pub struct RequestTelemetry {
    /// Time spent waiting in the admission queue.
    pub queued: Duration,
    /// Time spent in the worker (analysis + inspection + execution).
    pub service: Duration,
    /// How the verdict-cache lookup was answered, when one happened.
    pub cache: Option<Lookup>,
    /// True when the request ran under degraded (serialized) mode.
    pub serialized: bool,
}

/// A completed request: outcome or error, plus accounting.
#[derive(Debug, Clone)]
pub struct Response {
    /// What happened.
    pub result: Result<Outcome, ServiceError>,
    /// Where the time went.
    pub telemetry: RequestTelemetry,
}
