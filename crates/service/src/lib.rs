//! Analysis-as-a-service: the concurrent batch front door over the
//! subscripted-subscript analysis pipeline.
//!
//! The paper's hybrid scheme amortizes runtime inspection across the
//! repeated invocations of *one* program. This crate lifts that
//! amortization across *callers*: a long-lived [`AnalysisService`]
//! accepts many concurrent requests — C source for the front end,
//! pre-lowered IR nests, or guarded kernel executions — multiplexes
//! them over one shared omprt pool through a bounded admission queue,
//! and answers each with a structured [`Response`] (analysis verdict,
//! guard decision, execution result, per-request telemetry summary).
//!
//! The core is the [`ShardedVerdictCache`]: N independently-locked
//! shards of monotonicity verdicts keyed by content checksum +
//! provenance + inspector kind, replacing the per-executor
//! identity-keyed memo for the multi-tenant case. Verdicts persist
//! across restarts via the `subsub-cache/v1` snapshot
//! ([`snapshot`]) — versioned, digest-validated, rejected wholesale on
//! any corruption, and never trusted for dispatch without the
//! executor's write-version tamper gate re-validating the live arrays.
//!
//! Admission control rides the existing resilience machinery: pool
//! health deltas and breaker-open observations flip the service into a
//! serialized cooldown, a per-client fairness cap keeps one heavy
//! caller from starving the queue, and every accept/shed/hit/miss/evict
//! is telemetry-instrumented.
//!
//! The request lifecycle is hardened end to end (DESIGN.md §8): every
//! request carries an optional deadline enforced server-side through
//! cooperative cancellation ([`lifecycle`]), abandoned tickets reap
//! their jobs and free their fairness slots, payload identities that
//! repeatedly fault workers are quarantined behind a serial
//! probe-with-backoff ladder ([`quarantine`]), and the verdict cache
//! persists crash-consistently through a two-generation atomic-rename
//! snapshot store ([`store`]).

pub mod exec;
pub mod lifecycle;
pub mod quarantine;
pub mod request;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod store;

pub use exec::{ExecReport, KernelEntry, KernelRegistry};
pub use lifecycle::{Doom, JobControl};
pub use quarantine::{Admission, Quarantine, QuarantineConfig, QuarantineStats};
pub use request::{
    Outcome, Payload, Request, RequestTelemetry, Response, ServiceError, ShedReason,
    NUM_SHED_REASONS,
};
pub use service::{AnalysisService, ServiceConfig, ServiceStats, Ticket};
pub use shard::{
    CachedVerdict, InspectorKind, Lookup, ShardStats, ShardedVerdictCache, VerdictKey,
};
pub use snapshot::{
    load_snapshot, parse_snapshot, write_snapshot, SnapshotError, SNAPSHOT_VERSION,
};
pub use store::{Recovery, SnapshotStore, StoreError, StoreStats};
