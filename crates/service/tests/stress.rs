//! Concurrency and tamper stress tests for the analysis service.
//!
//! The three properties the service's soundness rests on:
//! * racing requests on the same content coalesce to exactly one
//!   inspection (single-flight);
//! * a tampered array (bumped write-version, changed content) never
//!   serves a stale parallel verdict — neither from live shards nor
//!   from a warm-start snapshot;
//! * an injected worker death degrades the service without wedging the
//!   queue.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;
use subsub_failpoint::{self as failpoint, Arm, FailPlan, Fire};
use subsub_rtcheck::{Provenance, ValidatedIndexArray};
use subsub_service::{
    write_snapshot, AnalysisService, InspectorKind, Lookup, Outcome, Payload, QuarantineConfig,
    Request, ServiceConfig, ServiceError, ShardedVerdictCache, ShedReason, VerdictKey,
};

fn ingest(name: &str, data: Vec<usize>) -> ValidatedIndexArray {
    ValidatedIndexArray::ingest(
        name,
        data,
        usize::MAX,
        Provenance::Untrusted {
            source: "stress".into(),
        },
    )
    .expect("in-domain")
}

fn execute_request(client: &str) -> Request {
    Request::new(
        client,
        Payload::Execute {
            kernel: "AMGmk".into(),
            dataset: "test".into(),
        },
    )
}

fn small_config() -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        pool_threads: 2,
        ..ServiceConfig::default()
    }
}

/// Eight threads race the same key: the leader inspects once, everyone
/// else parks on the shard condvar and is served the same verdict.
#[test]
fn racing_lookups_run_exactly_one_inspection() {
    let cache = Arc::new(ShardedVerdictCache::new(8, 64));
    let a = Arc::new(ingest("hot", (0..4096).collect()));
    let key = VerdictKey::of(&a, InspectorKind::Monotone);
    let computes = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let (cache, a, computes, barrier) = (
                Arc::clone(&cache),
                Arc::clone(&a),
                Arc::clone(&computes),
                Arc::clone(&barrier),
            );
            std::thread::spawn(move || {
                barrier.wait();
                let (verdict, _) = cache.get_or_compute(key, || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    // Widen the race window so every follower arrives
                    // while the leader is still inspecting.
                    std::thread::sleep(Duration::from_millis(30));
                    subsub_rtcheck::inspect_monotone(a.data(), None)
                });
                assert!(verdict.strict);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no raced panic");
    }
    assert_eq!(computes.load(Ordering::SeqCst), 1, "single-flight violated");
    let s = cache.stats();
    assert_eq!(s.misses, 1);
    assert_eq!(s.coalesced, 7, "followers must coalesce, not re-inspect");
}

/// The same race end-to-end through the service: eight clients request
/// the same kernel/dataset concurrently; AMGmk has one index array, so
/// exactly one shard-cache inspection may run.
#[test]
fn racing_service_requests_share_one_inspection() {
    let service = AnalysisService::start(small_config());
    let golden = service.golden_checksum("AMGmk", "test").expect("golden");
    let tickets: Vec<_> = (0..8)
        .map(|i| {
            service
                .submit(execute_request(&format!("client-{i}")))
                .expect("admitted")
        })
        .collect();
    for t in tickets {
        let response = t.wait_timeout(Duration::from_secs(60)).expect("no wedge");
        let outcome = response.result.expect("request succeeded");
        let Outcome::Executed { checksum, .. } = outcome else {
            panic!("expected an execution outcome");
        };
        assert!(
            subsub_kernels::common::close(checksum, golden),
            "divergence from the serial golden path: {checksum} vs {golden}"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.completed, 8);
    assert_eq!(
        stats.cache.misses, 1,
        "AMGmk:test has one index array; racing requests must share its inspection"
    );
    assert_eq!(
        stats.cache.hits + stats.cache.coalesced,
        7,
        "the other seven lookups must be hits or coalesced waits"
    );
    assert!(stats.max_inflight >= 2, "requests must overlap");
    service.shutdown();
}

/// Live-shard tamper: once content changes through the trust boundary
/// (version bump + checksum refresh), the old verdict is unreachable —
/// the new key misses and the fresh inspection reports the violation.
#[test]
fn tampered_array_never_serves_stale_verdict_from_live_shards() {
    let cache = ShardedVerdictCache::new(4, 64);
    let mut a = ingest("t", (0..256).collect());
    let (v, lookup) = cache.verdict_for(&a, None, true).unwrap();
    assert!(v.strict);
    assert_eq!(lookup, Lookup::Miss);
    // Hot: second lookup hits.
    assert_eq!(cache.verdict_for(&a, None, true).unwrap().1, Lookup::Hit);
    // Tamper through the boundary: break monotonicity.
    a.mutate(|d| d[100] = 0).unwrap();
    let (v2, lookup2) = cache.verdict_for(&a, None, true).unwrap();
    assert_eq!(lookup2, Lookup::Miss, "stale verdict served after tamper");
    assert!(!v2.nonstrict, "fresh inspection must see the violation");
    assert_eq!(v2.first_violation, Some(100));
}

/// Warm-start tamper: a snapshot taken before the tamper keys the old
/// content. After the tamper, the loaded entry can never match — the
/// lookup misses and re-inspects; the untampered twin still warm-hits.
#[test]
fn tampered_array_never_serves_stale_verdict_from_snapshot() {
    let live = ShardedVerdictCache::new(4, 64);
    let mut a = ingest("w", (0..256).collect());
    let twin = ingest("w", (0..256).collect());
    live.verdict_for(&a, None, true).unwrap();
    let snapshot = write_snapshot(&live);

    a.mutate(|d| d[7] = 0).unwrap();

    let fresh = ShardedVerdictCache::new(4, 64);
    subsub_service::load_snapshot(&fresh, &snapshot).expect("valid snapshot");
    let (v, lookup) = fresh.verdict_for(&a, None, true).unwrap();
    assert_eq!(
        lookup,
        Lookup::Miss,
        "snapshot must not answer for tampered content"
    );
    assert!(!v.nonstrict);
    // The untampered twin is exactly what the snapshot described.
    let (tv, tlookup) = fresh.verdict_for(&twin, None, true).unwrap();
    assert_eq!(tlookup, Lookup::WarmHit);
    assert!(tv.strict);
}

/// Same property end-to-end: a service warm-started from another
/// service's snapshot answers its first repeated request from the
/// cache, and its results still match the serial golden path.
#[test]
fn warm_started_service_hits_on_first_request() {
    let first = AnalysisService::start(small_config());
    first
        .submit(execute_request("warmup"))
        .expect("admitted")
        .wait()
        .result
        .expect("executed");
    let snapshot = first.snapshot();
    first.shutdown();

    let second = AnalysisService::start(small_config());
    let loaded = second.warm_start(&snapshot).expect("snapshot accepted");
    assert!(loaded >= 1);
    let golden = second.golden_checksum("AMGmk", "test").expect("golden");
    let response = second
        .submit(execute_request("warm-client"))
        .expect("admitted")
        .wait();
    let telemetry = response.telemetry.clone();
    let Ok(Outcome::Executed { checksum, .. }) = response.result else {
        panic!("expected an execution outcome");
    };
    assert!(subsub_kernels::common::close(checksum, golden));
    assert_eq!(
        telemetry.cache,
        Some(Lookup::WarmHit),
        "first repeated request must be served from the warm-start snapshot"
    );
    assert_eq!(second.stats().cache.misses, 0);
    second.shutdown();
}

/// A poisoned (corrupted) snapshot is rejected wholesale and the
/// service rebuilds from cold without serving anything from it.
#[test]
fn corrupt_snapshot_is_rejected_and_rebuilt() {
    let service = AnalysisService::start(small_config());
    service
        .submit(execute_request("seed"))
        .expect("admitted")
        .wait()
        .result
        .expect("executed");
    let mut snapshot = service.snapshot().into_bytes();
    // Flip one content byte inside the digested region.
    let pos = snapshot
        .windows(8)
        .position(|w| w == b"checksum")
        .expect("has an entry")
        + 12;
    snapshot[pos] ^= 0x01;
    let corrupt = String::from_utf8(snapshot).unwrap();
    service.shutdown();

    let fresh = AnalysisService::start(small_config());
    assert!(fresh.warm_start(&corrupt).is_err(), "corruption accepted");
    assert_eq!(fresh.stats().cache.entries, 0, "no partial load");
    // Rebuild: the same request now runs a fresh inspection and still
    // matches the golden path.
    let golden = fresh.golden_checksum("AMGmk", "test").expect("golden");
    let response = fresh
        .submit(execute_request("rebuild"))
        .expect("admitted")
        .wait();
    let Ok(Outcome::Executed { checksum, .. }) = response.result else {
        panic!("expected an execution outcome");
    };
    assert!(subsub_kernels::common::close(checksum, golden));
    assert_eq!(fresh.stats().cache.misses, 1);
    fresh.shutdown();
}

/// Kill-a-worker chaos: an injected panic in an omprt pool worker while
/// requests are in flight must degrade (serial rescue, self-healed
/// pool) without wedging the queue — every ticket completes, and every
/// completed execution still matches the golden checksum.
#[test]
fn worker_death_degrades_without_wedging_the_queue() {
    failpoint::silence_injected_panics();
    let _chaos =
        failpoint::arm(FailPlan::new().with("omprt.worker.wake", Arm::Panic, Fire::nth(5)));
    let service = AnalysisService::start(small_config());
    let golden = service.golden_checksum("AMGmk", "test").expect("golden");
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            service
                .submit(execute_request(&format!("chaos-{i}")))
                .expect("admitted")
        })
        .collect();
    let mut completed = 0;
    for t in tickets {
        let response = t
            .wait_timeout(Duration::from_secs(120))
            .expect("queue wedged under worker death");
        let Ok(Outcome::Executed { checksum, .. }) = response.result else {
            panic!("request failed terminally under a recoverable fault");
        };
        assert!(
            subsub_kernels::common::close(checksum, golden),
            "divergence under chaos: {checksum} vs {golden}"
        );
        completed += 1;
    }
    assert_eq!(completed, 12);
    assert_eq!(service.stats().completed, 12);
    service.shutdown();
}

/// One heavy caller cannot starve the queue: submissions beyond the
/// fairness cap shed `FairnessCap` while another client stays admitted.
#[test]
fn fairness_cap_sheds_the_heavy_caller_only() {
    let service = AnalysisService::start(ServiceConfig {
        workers: 1,
        fairness_cap: 2,
        pool_threads: 2,
        ..ServiceConfig::default()
    });
    let mut hog_tickets = Vec::new();
    let mut hog_sheds = 0;
    for _ in 0..6 {
        match service.submit(execute_request("hog")) {
            Ok(t) => hog_tickets.push(t),
            Err(ShedReason::FairnessCap) => hog_sheds += 1,
            Err(other) => panic!("unexpected shed reason {other:?}"),
        }
    }
    // The worker may drain a slot mid-loop, so the exact split varies,
    // but the cap must have bitten at least once and at most two of the
    // six can ever be in flight together.
    assert_eq!(hog_tickets.len() + hog_sheds, 6);
    assert!(hog_sheds >= 1, "cap never enforced");
    // The queue still has room for a polite client.
    let polite = service.submit(execute_request("mouse")).expect("starved");
    for t in hog_tickets {
        t.wait().result.expect("executed");
    }
    polite.wait().result.expect("executed");
    let stats = service.stats();
    assert!(stats.shed[1] >= 1, "fairness sheds must be counted");
    service.shutdown();
}

/// Regression for the abandoned-ticket leak: a client whose tickets are
/// dropped (or time out) without ever receiving their responses must
/// not hold its fairness slots forever. Each round saturates the cap
/// and abandons everything; with the old accounting (slot released only
/// by a worker completing the job it still thinks someone wants) the
/// client's budget would be exhausted after one round and every later
/// submission would shed `FairnessCap`.
#[test]
fn abandoned_tickets_free_their_fairness_slots() {
    // Best-effort wedge: the first dispatch sleeps so the early rounds
    // abandon *queued* jobs (exercising the reap path, not just
    // completion). The property below holds regardless of timing.
    let _chaos = failpoint::arm(FailPlan::new().with(
        "service.worker.dispatch",
        Arm::Delay(300),
        Fire::nth(0),
    ));
    let service = AnalysisService::start(ServiceConfig {
        workers: 1,
        fairness_cap: 2,
        pool_threads: 2,
        ..ServiceConfig::default()
    });
    let slow = service
        .submit(execute_request("slowpoke"))
        .expect("admitted");
    for round in 0..5 {
        let mut held = Vec::new();
        for _ in 0..64 {
            match service.submit(execute_request("gone")) {
                Ok(t) => held.push(t),
                Err(ShedReason::FairnessCap) => break,
                Err(other) => panic!("unexpected shed reason {other:?}"),
            }
            if held.len() >= 8 {
                break; // worker draining faster than we fill; enough held
            }
        }
        assert!(!held.is_empty(), "round {round} admitted nothing");
        // A timed-out wait abandons exactly like a drop.
        if let Some(t) = held.pop() {
            if t.wait_timeout(Duration::ZERO).is_some() {
                // Already completed — fine, slot released by the worker.
            }
        }
        drop(held);
    }
    // After five rounds of abandoned tickets, the client's budget must
    // be whole again.
    let fresh = service
        .submit(execute_request("gone"))
        .expect("abandoned tickets leaked fairness slots");
    drop(fresh);
    drop(slow);
    let stats = service.stats();
    assert!(
        stats.abandoned + stats.completed > 0,
        "lifecycle accounting recorded nothing"
    );
    service.shutdown();
}

/// Deadlines are enforced server-side: an already-expired request is
/// answered with a typed `Expired` error (never executed, never
/// wedged), and a deadline that trips mid-run cancels the kernel at a
/// cooperative boundary within a bounded interval.
#[test]
fn expired_requests_resolve_typed_and_bounded() {
    let service = AnalysisService::start(ServiceConfig {
        workers: 2,
        pool_threads: 2,
        ..ServiceConfig::default()
    });
    // (a) Expired before any worker touches it.
    let t = service
        .submit(execute_request("doomed").with_deadline(Duration::ZERO))
        .expect("admitted");
    let started = std::time::Instant::now();
    let response = t.wait_timeout(Duration::from_secs(30)).expect("wedged");
    assert!(
        matches!(response.result, Err(ServiceError::Expired)),
        "zero-deadline request must expire, got {:?}",
        response.result.map(|_| ())
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "expiry must resolve promptly"
    );
    // (b) Expired mid-run: the dispatch stalls past the deadline; the
    // janitor trips the job's token and the guard layer discards the
    // partial run instead of serving it.
    let _chaos = failpoint::arm(FailPlan::new().with(
        "service.kernel.parallel",
        Arm::Delay(150),
        Fire::always(),
    ));
    let t = service
        .submit(execute_request("mid-run").with_deadline(Duration::from_millis(15)))
        .expect("admitted");
    let started = std::time::Instant::now();
    let response = t.wait_timeout(Duration::from_secs(30)).expect("wedged");
    assert!(
        matches!(response.result, Err(ServiceError::Expired)),
        "mid-run deadline must surface as Expired"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "cancellation must stop the run within a bounded interval"
    );
    let stats = service.stats();
    assert!(stats.expired >= 2, "expired responses must be counted");
    // A deadline-free request on the same service still succeeds.
    let ok = service
        .submit(execute_request("healthy"))
        .expect("admitted")
        .wait();
    assert!(ok.result.is_ok(), "service wedged after expiries");
    service.shutdown();
}

/// Poison quarantine end-to-end: a payload identity that keeps faulting
/// workers is quarantined (shed with a typed reason while its backoff
/// runs), re-admitted only as a serial single-flight probe, and fully
/// released after the probe completes clean.
#[test]
fn quarantine_isolates_poison_payload_and_releases_on_clean_probe() {
    failpoint::silence_injected_panics();
    let service = AnalysisService::start(ServiceConfig {
        workers: 2,
        pool_threads: 2,
        // One serialized request per degradation so the second strike
        // runs the parallel path again instead of hiding behind the
        // cooldown.
        serialized_cooldown: 1,
        quarantine: QuarantineConfig {
            strikes: 2,
            window: Duration::from_secs(30),
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
        },
        ..ServiceConfig::default()
    });
    let poison = Payload::Execute {
        kernel: "AMGmk".into(),
        dataset: "test".into(),
    };
    let burn = || {
        Request::new(
            "bystander",
            Payload::Execute {
                kernel: "CG".into(),
                dataset: "test".into(),
            },
        )
    };
    let _chaos =
        failpoint::arm(FailPlan::new().with("service.kernel.parallel", Arm::Panic, Fire::always()));
    // Two faulting completions of the same identity = two strikes. The
    // guard rescues each serially, so the responses still execute — but
    // the fault class is recorded against the payload.
    for strike in 0..2 {
        let r = service
            .submit(execute_request(&format!("striker-{strike}")))
            .expect("admitted")
            .wait();
        assert!(
            matches!(
                r.result,
                Ok(Outcome::Executed {
                    degraded: Some(_),
                    ..
                })
            ),
            "strike run must degrade, not fail terminally"
        );
        // Burn the serialized-cooldown token so the next strike run
        // takes the parallel path again.
        service
            .submit(burn())
            .expect("admitted")
            .wait()
            .result
            .expect("burn");
    }
    assert!(
        service.is_quarantined(&poison),
        "two strikes must quarantine the identity"
    );
    // Inside the backoff window the identity is refused outright.
    match service.submit(execute_request("victim")) {
        Err(ShedReason::Quarantined) => {}
        Err(other) => panic!("expected a quarantine shed, got {other:?}"),
        Ok(_) => panic!("quarantined identity admitted inside its backoff"),
    }
    // Past the backoff, exactly one serial probe is admitted. Serial
    // execution never touches the armed parallel site, so the probe
    // completes clean and releases the identity — even though the
    // chaos plan is still armed.
    std::thread::sleep(Duration::from_millis(150));
    let probe = service
        .submit(execute_request("prober"))
        .expect("probe must be admitted after backoff")
        .wait();
    assert!(
        matches!(probe.result, Ok(Outcome::Executed { .. })),
        "serial probe must complete"
    );
    assert!(
        !service.is_quarantined(&poison),
        "a clean probe must release the quarantine"
    );
    let r = service
        .submit(execute_request("released"))
        .expect("released identity must admit normally")
        .wait();
    assert!(r.result.is_ok());
    let q = service.stats().quarantine;
    assert!(q.strikes >= 2 && q.quarantined >= 1 && q.probes >= 1 && q.released >= 1);
    assert!(
        service.stats().shed[4] >= 1,
        "quarantine sheds must be counted"
    );
    service.shutdown();
}

/// Shutdown drains queued requests as structured shed responses instead
/// of leaving callers blocked forever.
#[test]
fn shutdown_fulfills_pending_tickets() {
    let service = AnalysisService::start(ServiceConfig {
        workers: 1,
        pool_threads: 2,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> = (0..4)
        .filter_map(|i| service.submit(execute_request(&format!("c{i}"))).ok())
        .collect();
    service.shutdown();
    for t in tickets {
        // Completed or shed-at-shutdown — but never wedged.
        let response = t.wait_timeout(Duration::from_secs(30)).expect("wedged");
        if let Err(e) = response.result {
            assert!(
                matches!(e, subsub_service::ServiceError::Shed(ShedReason::Shutdown)),
                "unexpected terminal error: {e}"
            );
        }
    }
    assert!(service.submit(execute_request("late")).is_err());
}

/// Malformed source is the client's own bad input: every submission
/// resolves to a typed `Rejected` (stable code + diagnostic), the worker
/// never faults, and the payload identity never accrues quarantine
/// strikes no matter how many times it is resubmitted.
#[test]
fn malformed_source_rejects_typed_without_quarantine() {
    let service = AnalysisService::start(small_config());
    let payload = Payload::AnalyzeSource {
        source: "void f( {".into(),
        level: subsub_core::AlgorithmLevel::New,
    };
    for round in 0..4 {
        let r = service
            .submit(Request::new(format!("mal-{round}"), payload.clone()))
            .expect("malformed source must be admitted, not shed")
            .wait();
        match r.result {
            Err(ServiceError::Rejected { code, detail }) => {
                assert!(!code.is_empty(), "rejection must carry a stable code");
                assert!(!detail.is_empty());
            }
            other => panic!("expected a typed rejection, got {other:?}"),
        }
    }
    assert!(
        !service.is_quarantined(&payload),
        "client-side bad input must never strike the quarantine ladder"
    );
    // A well-formed source on the same connection still analyzes.
    let ok = service
        .submit(Request::new(
            "mal-ok",
            Payload::AnalyzeSource {
                source: "void f(int n, double *x) { int i; for (i = 0; i < n; i++) x[i] = 0.0; }"
                    .into(),
                level: subsub_core::AlgorithmLevel::New,
            },
        ))
        .expect("admitted")
        .wait();
    assert!(matches!(ok.result, Ok(Outcome::Analyzed(_))));
    service.shutdown();
}

/// Oversized sources shed `OverBudget` at admission (before queueing);
/// in-budget sources that exceed structural limits reject deterministically
/// with the typed `budget-*` diagnostic.
#[test]
fn over_budget_sources_shed_or_reject_deterministically() {
    let mut cfg = small_config();
    cfg.parse_budget.max_input_bytes = 1024;
    cfg.parse_budget.max_depth = 16;
    let service = AnalysisService::start(cfg);
    // Admission rung: too many bytes → typed shed, counted.
    let huge = Payload::AnalyzeSource {
        source: "x".repeat(4096),
        level: subsub_core::AlgorithmLevel::New,
    };
    match service.submit(Request::new("big", huge)) {
        Err(ShedReason::OverBudget) => {}
        Err(other) => panic!("expected an over-budget shed, got {other:?}"),
        Ok(_) => panic!("oversized source must not be admitted"),
    }
    assert!(
        service.stats().shed[(ShedReason::OverBudget.code() - 1) as usize] >= 1,
        "over-budget sheds must be counted"
    );
    // Worker rung: within byte budget but hostile nesting → the same
    // typed diagnostic on every resubmission.
    let deep = format!("void f() {{ x = {}1{}; }}", "(".repeat(64), ")".repeat(64));
    let mut details = Vec::new();
    for round in 0..2 {
        let r = service
            .submit(Request::new(
                format!("deep-{round}"),
                Payload::AnalyzeSource {
                    source: deep.clone(),
                    level: subsub_core::AlgorithmLevel::New,
                },
            ))
            .expect("admitted")
            .wait();
        match r.result {
            Err(ServiceError::Rejected { code, detail }) => {
                assert_eq!(code, "budget-depth");
                details.push(detail);
            }
            other => panic!("expected a budget rejection, got {other:?}"),
        }
    }
    assert_eq!(
        details[0], details[1],
        "budget rejections must be deterministic"
    );
    service.shutdown();
}
