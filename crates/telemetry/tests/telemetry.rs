//! Integration tests for the flight-recorder telemetry layer: the
//! cross-thread properties unit tests cannot cover — ring wraparound
//! under live concurrent writers with a racing reader, counter fidelity
//! against a mutex-protected reference, and the disarmed-overhead
//! budget.
//!
//! Rings, counters, and the armed flag are process-global, so every
//! test serializes on one lock and measures *deltas* rather than
//! absolute counter values.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;
use subsub_telemetry as telemetry;
use subsub_telemetry::{
    bucket_of, bucket_upper_bound, instant, metrics, ring, span, EventKind, Phase, RING_CAPACITY,
};

/// Serializes the tests in this binary: they all mutate the same global
/// recorder state (the harness runs test functions on parallel threads).
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn rings_wrap_under_concurrent_writers_with_a_racing_reader() {
    let _x = exclusive();
    let armed = telemetry::arm();
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = RING_CAPACITY as u64 + 512; // force wraparound
    const TAG: u64 = 0x5EED_0000_0000_0000; // distinguishes this test's events

    let (recorded_before, _, _) = ring::totals();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Reader racing the writers: every snapshot it takes must decode
        // cleanly (the per-slot seqlock discards torn reads rather than
        // surfacing them) and our tagged events must carry in-range
        // sequence numbers.
        s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                for e in ring::snapshot_events() {
                    if (e.arg & TAG) == TAG {
                        assert!((e.arg & 0xFFFF_FFFF) < PER_WRITER, "torn or invented event");
                        assert_eq!(e.kind, EventKind::WatchdogScan);
                    }
                }
            }
        });
        let workers: Vec<_> = (0..WRITERS)
            .map(|_| {
                s.spawn(|| {
                    for i in 0..PER_WRITER {
                        instant(EventKind::WatchdogScan, Phase::None, 0, TAG | i);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("writer");
        }
        stop.store(true, Ordering::Relaxed);
    });

    let (recorded_after, overwritten, rings) = ring::totals();
    assert!(rings >= WRITERS, "each writer thread registers a ring");
    assert!(recorded_after - recorded_before >= WRITERS as u64 * PER_WRITER);
    assert!(
        overwritten >= WRITERS as u64 * 512,
        "every writer overflowed its ring: {overwritten}"
    );

    // After the writers quiesce, each ring retains exactly the newest
    // RING_CAPACITY events, still in per-thread program order.
    let events = armed.events();
    let mut per_thread: std::collections::HashMap<u32, Vec<u64>> = std::collections::HashMap::new();
    for e in &events {
        if (e.arg & TAG) == TAG {
            per_thread
                .entry(e.thread)
                .or_default()
                .push(e.arg & 0xFFFF_FFFF);
        }
    }
    assert_eq!(per_thread.len(), WRITERS);
    for (thread, args) in per_thread {
        assert_eq!(args.len(), RING_CAPACITY, "thread {thread} window");
        assert!(
            args.windows(2).all(|w| w[0] < w[1]),
            "thread {thread} events out of order"
        );
        assert_eq!(args.last(), Some(&(PER_WRITER - 1)), "newest event kept");
    }
}

#[test]
fn counters_agree_with_a_mutex_reference_under_contention() {
    let _x = exclusive();
    let _armed = telemetry::arm();
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 10_000;

    let before = metrics::kind_count(EventKind::FailpointTrip);
    let reference = Mutex::new(0u64);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for i in 0..PER_THREAD {
                    instant(EventKind::FailpointTrip, Phase::None, 0, i);
                    *reference.lock().expect("reference") += 1;
                }
            });
        }
    });
    let counted = metrics::kind_count(EventKind::FailpointTrip) - before;
    assert_eq!(counted, *reference.lock().expect("reference"));
    assert_eq!(counted, THREADS as u64 * PER_THREAD);
}

#[test]
fn disarmed_span_overhead_stays_in_budget() {
    let _x = exclusive();
    assert!(
        !telemetry::enabled(),
        "another armed scope leaked into this test"
    );
    const ITERS: u32 = 1_000_000;
    // Warm the instruction path once.
    for _ in 0..1_000 {
        drop(std::hint::black_box(span(Phase::Region, 0)));
    }
    let t0 = Instant::now();
    for _ in 0..ITERS {
        drop(std::hint::black_box(span(Phase::Region, 0)));
    }
    let per_call = t0.elapsed().as_nanos() / u128::from(ITERS);
    // The disarmed path is one relaxed load; the budget is two orders of
    // magnitude above its real cost so shared CI hardware cannot flake
    // this, while still catching an accidental allocation, lock, or
    // clock read (each ≥ hundreds of ns at this iteration count).
    assert!(
        per_call < 500,
        "disarmed span costs {per_call} ns/call — the zero-cost gate regressed"
    );
}

#[test]
fn histogram_buckets_cover_the_log2_boundaries() {
    let _x = exclusive();
    // Boundary behaviour at the powers of two: 2^k is the first value of
    // bucket k, and bucket_upper_bound is the last value counted there.
    assert_eq!(bucket_of(0), 0);
    assert_eq!(bucket_of(1), 0);
    for k in 1..63 {
        let lo = 1u64 << k;
        assert_eq!(bucket_of(lo), k, "2^{k} opens bucket {k}");
        assert_eq!(bucket_of(lo - 1), k - 1, "2^{k}-1 closes bucket {}", k - 1);
        assert!(bucket_upper_bound(k) >= lo);
        assert_eq!(bucket_of(bucket_upper_bound(k)), k);
    }
    assert_eq!(bucket_of(u64::MAX), 63);

    // A recorded duration lands in the bucket the boundary math says,
    // end to end through the armed span machinery.
    let _armed = telemetry::arm();
    let label = telemetry::intern("itest-bucket-boundaries");
    let before = metrics::histogram_snapshot(label, Phase::Calibrate);
    metrics::record_duration(label, Phase::Calibrate, 1023);
    metrics::record_duration(label, Phase::Calibrate, 1024);
    let after = metrics::histogram_snapshot(label, Phase::Calibrate);
    assert_eq!(after.count - before.count, 2);
    assert_eq!(after.buckets[9] - before.buckets[9], 1); // 1023 → bucket 9
    assert_eq!(after.buckets[10] - before.buckets[10], 1); // 1024 → bucket 10
}
