//! Exporters: machine-readable JSON snapshot, Chrome `trace_event`
//! output, and a strict trace validator for CI.
//!
//! # Snapshot schema (`subsub-telemetry/v1`)
//!
//! ```json
//! {
//!   "schema": "subsub-telemetry/v1",
//!   "events_recorded": 123, "events_retained": 123,
//!   "events_overwritten": 0, "rings": 4,
//!   "counters": { "region_fork": 2, ... },
//!   "histograms": [
//!     { "kernel": "AMGmk", "kernel_id": 3, "phase": "kernel_run",
//!       "count": 10, "sum_ns": 12345, "p50_ns": 1023, "p90_ns": 2047 }
//!   ]
//! }
//! ```
//!
//! # Chrome trace
//!
//! [`chrome_trace`] renders flight-recorder events in the Chrome
//! `trace_event` JSON format (load in `chrome://tracing` or Perfetto).
//! Spans are recorded at *end* time with `(start, dur)`; the exporter
//! reconstructs properly nested `B`/`E` duration events per thread by
//! sorting spans by `(start asc, end desc)` and unwinding a stack:
//! before emitting a span's `B`, every stacked span that ended at or
//! before this start gets its `E`. RAII span guards make same-thread
//! spans well-nested, so this emits each span exactly once and keeps
//! per-thread timestamps monotone — exactly the invariants
//! [`validate_chrome_trace`] enforces.

use crate::event::{Event, EventKind};
use crate::json::{escape, parse, Json};
use crate::{label, metrics, ring};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Renders the cumulative metrics (counters, histograms, ring totals)
/// as a `subsub-telemetry/v1` JSON document.
pub fn snapshot_json() -> String {
    let (recorded, overwritten, rings) = ring::totals();
    let retained = recorded - overwritten;
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"subsub-telemetry/v1\",\n");
    let _ = writeln!(out, "  \"events_recorded\": {recorded},");
    let _ = writeln!(out, "  \"events_retained\": {retained},");
    let _ = writeln!(out, "  \"events_overwritten\": {overwritten},");
    let _ = writeln!(out, "  \"rings\": {rings},");
    out.push_str("  \"counters\": {\n");
    let kinds = EventKind::all();
    for (i, kind) in kinds.iter().enumerate() {
        let comma = if i + 1 < kinds.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {}{comma}",
            kind.name(),
            metrics::kind_count(*kind)
        );
    }
    out.push_str("  },\n  \"histograms\": [\n");
    let hists = metrics::all_histograms();
    for (i, (kernel_id, phase, snap)) in hists.iter().enumerate() {
        let comma = if i + 1 < hists.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"kernel\": \"{}\", \"kernel_id\": {}, \"phase\": \"{}\", \
             \"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {} }}{comma}",
            escape(&label(*kernel_id)),
            kernel_id,
            phase.name(),
            snap.count,
            snap.sum_ns,
            snap.quantile_ns(0.5),
            snap.quantile_ns(0.9)
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn trace_name(e: &Event) -> String {
    let l = label(e.kernel);
    let base = if e.kind == EventKind::Span {
        e.phase.name()
    } else {
        e.kind.name()
    };
    if l.is_empty() {
        base.to_string()
    } else {
        format!("{base}:{l}")
    }
}

/// Renders flight-recorder events as a Chrome `trace_event` document
/// (`{"traceEvents": [...]}`; ts in microseconds, pid fixed at 1, tid =
/// recorder thread slot).
pub fn chrome_trace(events: &[Event]) -> String {
    let mut by_tid: BTreeMap<u32, (Vec<&Event>, Vec<&Event>)> = BTreeMap::new();
    for e in events {
        let entry = by_tid.entry(e.thread).or_default();
        if e.kind == EventKind::Span {
            entry.0.push(e);
        } else {
            entry.1.push(e);
        }
    }

    // (ts_ns, emission order tiebreak, json line)
    let mut lines: Vec<(u64, u64, String)> = Vec::new();
    let mut order = 0u64;
    let mut push = |lines: &mut Vec<(u64, u64, String)>, ts: u64, line: String| {
        lines.push((ts, order, line));
        order += 1;
    };

    for (tid, (mut spans, instants)) in by_tid {
        spans.sort_by_key(|e| (e.ts_ns, std::cmp::Reverse(e.end_ns())));
        let mut stack: Vec<&Event> = Vec::new();
        for span in spans {
            while let Some(top) = stack.last() {
                if top.end_ns() <= span.ts_ns {
                    let top = stack.pop().expect("checked non-empty");
                    push(
                        &mut lines,
                        top.end_ns(),
                        format!(
                            "{{\"name\":\"{}\",\"cat\":\"subsub\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":{tid}}}",
                            escape(&trace_name(top)),
                            micros(top.end_ns())
                        ),
                    );
                } else {
                    break;
                }
            }
            push(
                &mut lines,
                span.ts_ns,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"subsub\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\"tid\":{tid},\"args\":{{\"dur_ns\":{}}}}}",
                    escape(&trace_name(span)),
                    micros(span.ts_ns),
                    span.dur_ns
                ),
            );
            stack.push(span);
        }
        while let Some(top) = stack.pop() {
            push(
                &mut lines,
                top.end_ns(),
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"subsub\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":{tid}}}",
                    escape(&trace_name(top)),
                    micros(top.end_ns())
                ),
            );
        }
        for e in instants {
            push(
                &mut lines,
                e.ts_ns,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"subsub\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{tid},\"s\":\"t\",\"args\":{{\"arg\":{}}}}}",
                    escape(&trace_name(e)),
                    micros(e.ts_ns),
                    e.arg
                ),
            );
        }
    }

    // Global order is cosmetic (viewers sort); per-tid order is what the
    // validator checks, and the per-tid emission above already interleaves
    // B/E monotonically. Sorting stably by ts keeps instants in place.
    lines.sort_by_key(|(ts, ord, _)| (*ts, *ord));
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, (_, _, line)) in lines.iter().enumerate() {
        out.push_str(line);
        out.push_str(if i + 1 < lines.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

/// What a validated trace contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total `B`/`E` pairs (complete duration events).
    pub spans: usize,
    /// Total instant (`i`) events.
    pub instants: usize,
    /// Distinct `tid`s seen.
    pub threads: usize,
    /// Distinct event names seen.
    pub names: BTreeSet<String>,
}

impl TraceSummary {
    /// Does any event name start with `prefix` (e.g. `"region"` or
    /// `"inspect"`)?
    pub fn has_name_prefix(&self, prefix: &str) -> bool {
        self.names.iter().any(|n| n.starts_with(prefix))
    }
}

/// Strictly validates a Chrome `trace_event` document: well-formed
/// JSON, a `traceEvents` array of objects each carrying `name` / `ph` /
/// `ts` / `pid` / `tid`, per-tid `B`/`E` balance with matching names,
/// and per-tid monotone non-decreasing timestamps. Returns a summary of
/// the trace or a description of the first violation.
pub fn validate_chrome_trace(doc: &str) -> Result<TraceSummary, String> {
    let root = parse(doc).map_err(|e| e.to_string())?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing traceEvents array")?;

    struct TidState {
        stack: Vec<String>,
        last_ts: f64,
    }
    let mut tids: BTreeMap<u64, TidState> = BTreeMap::new();
    let mut summary = TraceSummary {
        spans: 0,
        instants: 0,
        threads: 0,
        names: BTreeSet::new(),
    };

    for (i, ev) in events.iter().enumerate() {
        let ctx = |msg: String| format!("traceEvents[{i}]: {msg}");
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .filter(|n| !n.is_empty())
            .ok_or_else(|| ctx("missing or empty name".into()))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing ph".into()))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| ctx("missing or negative ts".into()))?;
        ev.get("pid")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing pid".into()))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| ctx("missing tid".into()))?;

        let state = tids.entry(tid).or_insert(TidState {
            stack: Vec::new(),
            last_ts: 0.0,
        });
        if ts < state.last_ts {
            return Err(ctx(format!(
                "timestamp regression on tid {tid}: {ts} after {}",
                state.last_ts
            )));
        }
        state.last_ts = ts;
        summary.names.insert(name.to_string());

        match ph {
            "B" => state.stack.push(name.to_string()),
            "E" => match state.stack.pop() {
                Some(open) if open == name => summary.spans += 1,
                Some(open) => {
                    return Err(ctx(format!(
                        "mismatched E on tid {tid}: closes \"{name}\" but \"{open}\" is open"
                    )))
                }
                None => return Err(ctx(format!("E without matching B on tid {tid}"))),
            },
            "i" | "I" => summary.instants += 1,
            other => return Err(ctx(format!("unsupported ph {other:?}"))),
        }
    }

    for (tid, state) in &tids {
        if let Some(open) = state.stack.last() {
            return Err(format!("unclosed B event \"{open}\" on tid {tid}"));
        }
    }
    summary.threads = tids.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn span(tid: u32, start: u64, dur: u64) -> Event {
        Event {
            ts_ns: start,
            dur_ns: dur,
            kind: EventKind::Span,
            phase: Phase::Region,
            kernel: 0,
            thread: tid,
            arg: 0,
        }
    }

    fn instant(tid: u32, ts: u64, kind: EventKind) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: 0,
            kind,
            phase: Phase::None,
            kernel: 0,
            thread: tid,
            arg: 0,
        }
    }

    #[test]
    fn nested_and_sequential_spans_validate() {
        // Nested pair plus a later disjoint span, with instants mixed in.
        let events = vec![
            span(0, 1_000, 10_000),
            span(0, 2_000, 3_000),
            span(0, 15_000, 1_000),
            instant(0, 2_500, EventKind::RegionFork),
            span(1, 500, 2_000),
            instant(1, 600, EventKind::ClaimBatch),
        ];
        let doc = chrome_trace(&events);
        let summary = validate_chrome_trace(&doc).expect("trace should validate");
        assert_eq!(summary.spans, 4);
        assert_eq!(summary.instants, 2);
        assert_eq!(summary.threads, 2);
        assert!(summary.has_name_prefix("region"));
    }

    #[test]
    fn validator_rejects_unbalanced_and_regressing_traces() {
        let unbalanced = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(unbalanced)
            .unwrap_err()
            .contains("unclosed"));

        let mismatched = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":0},
            {"name":"b","ph":"E","ts":2,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(mismatched)
            .unwrap_err()
            .contains("mismatched"));

        let regressing = r#"{"traceEvents":[
            {"name":"a","ph":"i","ts":5,"pid":1,"tid":0,"s":"t"},
            {"name":"b","ph":"i","ts":4,"pid":1,"tid":0,"s":"t"}
        ]}"#;
        assert!(validate_chrome_trace(regressing)
            .unwrap_err()
            .contains("regression"));

        let stray_e = r#"{"traceEvents":[
            {"name":"a","ph":"E","ts":1,"pid":1,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(stray_e)
            .unwrap_err()
            .contains("without matching B"));

        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        let doc = snapshot_json();
        let v = parse(&doc).expect("snapshot parses");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("subsub-telemetry/v1")
        );
        assert!(v.get("counters").is_some());
        assert!(v.get("histograms").and_then(Json::as_array).is_some());
    }

    #[test]
    fn micros_formatting_is_exact() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_000), "1.000");
        assert_eq!(micros(1_234_567), "1234.567");
    }
}
