//! Per-thread flight-recorder ring buffers.
//!
//! # Memory model
//!
//! Each thread that records an event owns one [`Ring`]: a fixed-capacity
//! circular buffer of four-word slots plus a monotone write cursor.
//! Rings are **single-writer** by construction (the owning thread is the
//! only one that ever pushes) and **multi-reader**: exporters snapshot
//! any ring at any time without stopping the writer. The wait-free
//! writer/reader protocol is a per-slot seqlock:
//!
//! * the writer bumps the slot's sequence to the *odd* value `2h + 1`
//!   (write in progress for cursor position `h`), stores the four event
//!   words, then publishes with the *even* value `2h + 2`;
//! * a reader loads the sequence, skips the slot unless it equals
//!   `2h + 2` for the position it wants, reads the words, and re-checks
//!   the sequence — any concurrent overwrite changes the sequence and
//!   the reader discards the torn slot instead of reporting it.
//!
//! The cursor never wraps its 64 bits in practice, so every slot write
//! has a unique sequence pair and a reader can never confuse lap `h`
//! with lap `h + capacity`. When the ring is full the oldest events are
//! overwritten — a flight recorder keeps the most recent window, and the
//! overwritten count is reported so exporters can say what was lost.
//!
//! All sequence operations use `SeqCst`; the recording path only runs
//! when telemetry is armed, so the cost is irrelevant next to the
//! disarmed fast path (one relaxed load in [`crate::enabled`]).

use crate::event::Event;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events retained per thread. At 40 bytes per slot this is ~160 KiB
/// per recording thread, allocated lazily on the thread's first event.
pub const RING_CAPACITY: usize = 4096;

struct Slot {
    seq: AtomicU64,
    w: [AtomicU64; 4],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            w: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// One thread's flight recorder.
pub struct Ring {
    thread: u32,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(thread: u32) -> Ring {
        Ring {
            thread,
            head: AtomicU64::new(0),
            slots: (0..RING_CAPACITY).map(|_| Slot::new()).collect(),
        }
    }

    /// Recorder slot id of the owning thread.
    pub fn thread(&self) -> u32 {
        self.thread
    }

    /// Total events ever pushed (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to wraparound so far.
    pub fn overwritten(&self) -> u64 {
        self.recorded().saturating_sub(RING_CAPACITY as u64)
    }

    /// Writer side of the seqlock. Must only be called by the owning
    /// thread (enforced by the thread-local in [`record`]).
    fn push(&self, event: &Event) {
        let h = self.head.load(Ordering::Relaxed);
        let idx = (h % RING_CAPACITY as u64) as usize;
        let slot = &self.slots[idx];
        slot.seq.store(2 * h + 1, Ordering::SeqCst);
        for (cell, word) in slot.w.iter().zip(event.encode()) {
            cell.store(word, Ordering::Relaxed);
        }
        slot.seq.store(2 * h + 2, Ordering::SeqCst);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Reader side: the retained window, oldest first. Slots being
    /// overwritten concurrently are skipped, never reported torn.
    pub fn snapshot(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(RING_CAPACITY as u64);
        let mut out = Vec::with_capacity((head - start) as usize);
        for h in start..head {
            let slot = &self.slots[(h % RING_CAPACITY as u64) as usize];
            let s1 = slot.seq.load(Ordering::SeqCst);
            if s1 != 2 * h + 2 {
                continue; // in-flight write or already lapped
            }
            let words = [
                slot.w[0].load(Ordering::Relaxed),
                slot.w[1].load(Ordering::Relaxed),
                slot.w[2].load(Ordering::Relaxed),
                slot.w[3].load(Ordering::Relaxed),
            ];
            if slot.seq.load(Ordering::SeqCst) != s1 {
                continue; // overwritten while reading
            }
            if let Some(e) = Event::decode(words) {
                out.push(e);
            }
        }
        out
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static MY_RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

/// Records one event into the calling thread's ring, creating and
/// registering the ring on the thread's first event. The event's
/// `thread` field is overwritten with the ring's slot id.
pub fn record(mut event: Event) {
    MY_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(Ring::new(NEXT_THREAD.fetch_add(1, Ordering::Relaxed)));
            lock(registry()).push(Arc::clone(&ring));
            ring
        });
        event.thread = ring.thread();
        ring.push(&event);
    });
}

/// Snapshot of every registered ring's retained window, merged and
/// sorted by start timestamp (ties broken by thread, then end).
pub fn snapshot_events() -> Vec<Event> {
    let rings: Vec<Arc<Ring>> = lock(registry()).clone();
    let mut out: Vec<Event> = rings.iter().flat_map(|r| r.snapshot()).collect();
    out.sort_by_key(|e| (e.ts_ns, e.thread, e.end_ns()));
    out
}

/// (total recorded, total overwritten, registered rings) across threads.
pub fn totals() -> (u64, u64, usize) {
    let rings = lock(registry());
    let recorded = rings.iter().map(|r| r.recorded()).sum();
    let overwritten = rings.iter().map(|r| r.overwritten()).sum();
    (recorded, overwritten, rings.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Phase};

    fn ev(ts: u64, arg: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: 0,
            kind: EventKind::ClaimBatch,
            phase: Phase::None,
            kernel: 0,
            thread: 0,
            arg,
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_window() {
        let ring = Ring::new(99);
        let n = RING_CAPACITY as u64 + 100;
        for i in 0..n {
            ring.push(&ev(i, i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), RING_CAPACITY);
        assert_eq!(snap.first().map(|e| e.arg), Some(100));
        assert_eq!(snap.last().map(|e| e.arg), Some(n - 1));
        assert_eq!(ring.recorded(), n);
        assert_eq!(ring.overwritten(), 100);
    }

    #[test]
    fn partially_filled_ring_reports_only_written_slots() {
        let ring = Ring::new(0);
        for i in 0..10 {
            ring.push(&ev(i, i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 10);
        assert!(snap.iter().enumerate().all(|(i, e)| e.arg == i as u64));
        assert_eq!(ring.overwritten(), 0);
    }
}
