//! RAII span guards and instant-event helpers.
//!
//! [`span`] returns a [`SpanGuard`] that, when telemetry is armed,
//! stamps the start time and on drop records a [`EventKind::Span`]
//! event into the flight recorder plus a duration sample into the
//! (kernel, phase) histogram. When telemetry is disarmed the guard is
//! inert: no clock read, no allocation, no atomic writes — the whole
//! call is one relaxed load and the construction of a `None`.
//!
//! The `_labeled` variants intern a string label (kernel name, array
//! name) to the guard's kernel id; they check [`crate::enabled`]
//! *before* interning, so the disarmed cost stays at one load even
//! though interning takes a short lock.

use crate::event::{Event, EventKind, Phase};
use crate::{enabled, intern, metrics, now_ns, ring};

/// RAII guard for a timed section. Created by [`span`] /
/// [`span_labeled`]; records on drop, and only if telemetry was armed
/// at creation time.
#[must_use = "a span guard measures the scope it is held for"]
pub struct SpanGuard {
    /// `Some((start_ns, phase, kernel))` when armed at creation.
    armed: Option<(u64, Phase, u16)>,
}

impl SpanGuard {
    /// A guard that records nothing (the disarmed fast path).
    pub fn disarmed() -> SpanGuard {
        SpanGuard { armed: None }
    }

    /// Whether this guard will record on drop.
    pub fn is_armed(&self) -> bool {
        self.armed.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((start_ns, phase, kernel)) = self.armed {
            let dur_ns = now_ns().saturating_sub(start_ns);
            metrics::count_kind(EventKind::Span);
            metrics::record_duration(kernel, phase, dur_ns);
            ring::record(Event {
                ts_ns: start_ns,
                dur_ns,
                kind: EventKind::Span,
                phase,
                kernel,
                thread: 0,
                arg: 0,
            });
        }
    }
}

/// Opens a timed span for `phase`, keyed by an already-interned kernel
/// id (0 = unlabelled). Inert when telemetry is disarmed.
#[inline]
pub fn span(phase: Phase, kernel: u16) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disarmed();
    }
    SpanGuard {
        armed: Some((now_ns(), phase, kernel)),
    }
}

/// Opens a timed span labeled by name (interned on the armed path
/// only).
#[inline]
pub fn span_labeled(phase: Phase, label: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disarmed();
    }
    let kernel = intern(label);
    SpanGuard {
        armed: Some((now_ns(), phase, kernel)),
    }
}

/// Records an instant event (counter + flight recorder). Inert when
/// telemetry is disarmed.
#[inline]
pub fn instant(kind: EventKind, phase: Phase, kernel: u16, arg: u64) {
    if !enabled() {
        return;
    }
    metrics::count_kind(kind);
    ring::record(Event {
        ts_ns: now_ns(),
        dur_ns: 0,
        kind,
        phase,
        kernel,
        thread: 0,
        arg,
    });
}

/// Records an instant event labeled by name (interned on the armed
/// path only).
#[inline]
pub fn instant_labeled(kind: EventKind, phase: Phase, label: &str, arg: u64) {
    if !enabled() {
        return;
    }
    let kernel = intern(label);
    metrics::count_kind(kind);
    ring::record(Event {
        ts_ns: now_ns(),
        dur_ns: 0,
        kind,
        phase,
        kernel,
        thread: 0,
        arg,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_guard_records_nothing() {
        // Not armed: the guard must be inert.
        let g = span(Phase::Region, 0);
        assert!(!g.is_armed());
        drop(g);
    }

    #[test]
    fn armed_span_lands_in_ring_and_histogram() {
        let t = crate::arm();
        let label_id = intern("span-unit-test");
        let before = metrics::histogram_snapshot(label_id, Phase::KernelRun).count;
        {
            let g = span_labeled(Phase::KernelRun, "span-unit-test");
            assert!(g.is_armed());
            std::hint::black_box(1 + 1);
        }
        let after = metrics::histogram_snapshot(label_id, Phase::KernelRun).count;
        assert_eq!(after, before + 1);
        assert!(t.events().iter().any(|e| e.kind == EventKind::Span
            && e.phase == Phase::KernelRun
            && e.kernel == label_id));
    }
}
