//! A minimal strict JSON parser.
//!
//! The workspace is dependency-free, so the trace validator (and the
//! bench tooling that checks calibration and baseline documents) needs
//! its own parser. This one is a small recursive-descent parser over
//! the full JSON grammar — objects, arrays, strings with escapes
//! (including `\uXXXX` and surrogate pairs), numbers, booleans, null —
//! that rejects trailing garbage and caps nesting depth. It is built
//! for validation, not speed: parse once, interrogate the tree.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted before the parser bails (guards the
/// recursion against stack exhaustion on adversarial inputs).
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are unique (duplicates are a parse error).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (no fraction, no overflow).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= u64::MAX as f64 && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if map.insert(key, value).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = (v << 4) | u16::from(d);
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(u32::from(hi))
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // bytes are valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number fraction"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("unparseable number"))
    }
}

/// Escapes a string for embedding in emitted JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"c": true, "d": null}, "s": "x\n\u0041"}"#;
        let v = parse(doc).expect("parse");
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.as_array())
                .and_then(|a| a[2].as_f64()),
            Some(1000.0)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x\nA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\":1}{",
            "nul",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "{\"a\":1,\"a\":2}",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse("\"\\ud83d\\ude00\"").expect("parse");
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\u{0007}";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }
}
