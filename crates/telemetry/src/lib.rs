//! Flight-recorder telemetry for the subsub runtime.
//!
//! A zero-external-dependency observability layer in the same spirit as
//! `subsub-failpoint`: **zero-cost when disarmed** (every instrumented
//! site costs one relaxed atomic load and a predictable branch), and
//! lock-free on the record path when armed. Three storage planes:
//!
//! * **flight recorder** — fixed-capacity per-thread ring buffers of
//!   timestamped [`Event`]s ([`ring`]): region fork/join, claim batches,
//!   inspector scans, cache hits/misses, guard verdicts, breaker
//!   transitions, failpoint trips;
//! * **counters** — cache-padded per-[`EventKind`] atomics ([`metrics`]);
//! * **histograms** — log2-bucketed latency histograms keyed by
//!   (interned kernel label, [`Phase`]) ([`metrics`]).
//!
//! Spans are recorded with RAII guards ([`span_labeled`]); the guard is
//! inert (no clock read, no allocation) while telemetry is disarmed.
//! Exporters ([`export`]) render a machine-readable JSON snapshot
//! (`BENCH_telemetry.json` schema `subsub-telemetry/v1`) and the Chrome
//! `trace_event` format, plus a strict trace validator used by CI.
//!
//! Arming is process-global and serialized exactly like failpoint
//! arming: [`arm`] returns an [`ArmedTelemetry`] guard holding a global
//! scope lock, so two telemetry-sensitive tests in one binary cannot
//! interleave. Counters and rings are cumulative across armings; the
//! guard records its arm timestamp so [`ArmedTelemetry::events`] returns
//! only the events of its own scope.

pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod span;

pub use event::{breaker_code, verdict_code, Event, EventKind, Phase, NUM_KINDS, NUM_PHASES};
pub use export::{chrome_trace, snapshot_json, validate_chrome_trace, TraceSummary};
pub use metrics::{
    bucket_of, bucket_upper_bound, CachePadded, HistogramSnapshot, HIST_BUCKETS, MAX_KERNEL_IDS,
};
pub use ring::RING_CAPACITY;
pub use span::{instant, instant_labeled, span, span_labeled, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Fast-path flag: a disarmed instrumented site is exactly one relaxed
/// load of this.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is telemetry armed right now? One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the recorder epoch (the first call in the
/// process). Monotone across threads.
pub fn now_ns() -> u64 {
    let e = epoch();
    // u64 nanoseconds overflow after ~584 years of process uptime.
    e.elapsed().as_nanos() as u64
}

fn scope() -> &'static Mutex<()> {
    static SCOPE: OnceLock<Mutex<()>> = OnceLock::new();
    SCOPE.get_or_init(|| Mutex::new(()))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Keeps telemetry armed; disarms on drop. Holding the guard holds the
/// global telemetry scope lock, so armed sections are serialized.
pub struct ArmedTelemetry {
    since_ns: u64,
    _scope: MutexGuard<'static, ()>,
}

impl ArmedTelemetry {
    /// Recorder timestamp at which this scope armed.
    pub fn since_ns(&self) -> u64 {
        self.since_ns
    }

    /// The flight-recorder events recorded since this scope armed,
    /// merged across threads and sorted by start time.
    pub fn events(&self) -> Vec<Event> {
        ring::snapshot_events()
            .into_iter()
            .filter(|e| e.ts_ns >= self.since_ns)
            .collect()
    }
}

impl Drop for ArmedTelemetry {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// Arms telemetry process-wide. Blocks until any previously armed scope
/// is dropped. Rings and counters accumulate across scopes; use
/// [`ArmedTelemetry::events`] for this scope's events only.
pub fn arm() -> ArmedTelemetry {
    let scope_guard = lock(scope());
    let since_ns = now_ns();
    ENABLED.store(true, Ordering::SeqCst);
    ArmedTelemetry {
        since_ns,
        _scope: scope_guard,
    }
}

fn labels() -> &'static Mutex<Vec<String>> {
    static LABELS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    // Id 0 is reserved for "unlabelled".
    LABELS.get_or_init(|| Mutex::new(vec![String::new()]))
}

/// Interns a label (kernel name, array name, failpoint site) to a small
/// id usable as a histogram key and event field. Idempotent; saturates
/// at `u16::MAX` distinct labels (further labels all map to the last
/// id). Takes a short critical section — callers on hot paths go
/// through [`span_labeled`] / [`instant_labeled`], which intern only
/// when telemetry is armed.
pub fn intern(label: &str) -> u16 {
    let mut table = lock(labels());
    if let Some(i) = table.iter().position(|l| l == label) {
        return i as u16;
    }
    if table.len() > usize::from(u16::MAX) {
        return u16::MAX;
    }
    table.push(label.to_string());
    (table.len() - 1) as u16
}

/// The label text for an interned id (empty string for 0 or unknown).
pub fn label(id: u16) -> String {
    lock(labels())
        .get(usize::from(id))
        .cloned()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_invertible() {
        let a = intern("unit-label-a");
        let b = intern("unit-label-b");
        assert_ne!(a, b);
        assert_eq!(intern("unit-label-a"), a);
        assert_eq!(label(a), "unit-label-a");
        assert_eq!(label(0), "");
    }

    #[test]
    fn clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn arming_scopes_serialize_and_disarm() {
        {
            let g = arm();
            assert!(enabled());
            instant(EventKind::CacheHit, Phase::None, 0, 7);
            assert!(g.events().iter().any(|e| e.kind == EventKind::CacheHit));
        }
        assert!(!enabled());
    }
}
