//! Cache-padded atomic counters and log2-bucketed latency histograms.
//!
//! The flight recorder ([`crate::ring`]) answers *what happened
//! recently*; the metrics here answer *how much and how fast overall*:
//! a per-[`EventKind`] counter array and a histogram table keyed by
//! (interned kernel label, [`Phase`]). Both are plain atomics — no locks
//! on the record path — and both are allocated lazily on the first
//! armed recording, so a process that never arms telemetry pays nothing
//! but the static `OnceLock`s.
//!
//! Histogram buckets are powers of two of nanoseconds: bucket `i` holds
//! samples with `floor(log2(max(ns, 1))) == i`, so bucket 0 is 0–1 ns
//! and bucket 63 absorbs everything ≥ 2^63 ns. Quantiles are estimated
//! from bucket counts at the bucket's upper bound — good to a factor of
//! two, which is all a regression gate or a trace summary needs.

use crate::event::{EventKind, Phase, NUM_KINDS, NUM_PHASES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Pads (and aligns) a value to a cache line so independent counters on
/// the hot path never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

/// Histogram bucket count (one per power of two of nanoseconds).
pub const HIST_BUCKETS: usize = 64;

/// Kernel-label ids at or above this share the last histogram row (an
/// overflow key); the interner hands out ids densely from 1, so real
/// workloads never get near it.
pub const MAX_KERNEL_IDS: usize = 64;

/// The bucket a sample of `ns` nanoseconds lands in.
pub fn bucket_of(ns: u64) -> usize {
    63 - ns.max(1).leading_zeros() as usize
}

/// Inclusive upper bound of bucket `i`, saturating at `u64::MAX`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

/// One lock-free latency histogram.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough copy of the counts (individual cells are read
    /// atomically; the totals line up once writers quiesce).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (ns).
    pub sum_ns: u64,
    /// Per-bucket sample counts.
    pub buckets: [u64; HIST_BUCKETS],
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`) in ns:
    /// the upper edge of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`. Zero when the histogram is empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HIST_BUCKETS - 1)
    }
}

fn kind_counters() -> &'static [CachePadded<AtomicU64>; NUM_KINDS] {
    static COUNTERS: OnceLock<[CachePadded<AtomicU64>; NUM_KINDS]> = OnceLock::new();
    COUNTERS.get_or_init(|| std::array::from_fn(|_| CachePadded(AtomicU64::new(0))))
}

fn histograms() -> &'static [Histogram] {
    static TABLE: OnceLock<Box<[Histogram]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        (0..MAX_KERNEL_IDS * NUM_PHASES)
            .map(|_| Histogram::default())
            .collect()
    })
}

/// Bumps the per-kind event counter.
pub fn count_kind(kind: EventKind) {
    kind_counters()[kind as usize]
        .0
        .fetch_add(1, Ordering::Relaxed);
}

/// Current value of one per-kind counter.
pub fn kind_count(kind: EventKind) -> u64 {
    kind_counters()[kind as usize].0.load(Ordering::Relaxed)
}

/// Records a duration sample into the (kernel, phase) histogram.
pub fn record_duration(kernel: u16, phase: Phase, ns: u64) {
    let k = (kernel as usize).min(MAX_KERNEL_IDS - 1);
    histograms()[k * NUM_PHASES + phase as usize].record(ns);
}

/// Snapshot of the (kernel, phase) histogram.
pub fn histogram_snapshot(kernel: u16, phase: Phase) -> HistogramSnapshot {
    let k = (kernel as usize).min(MAX_KERNEL_IDS - 1);
    histograms()[k * NUM_PHASES + phase as usize].snapshot()
}

/// Every non-empty (kernel id, phase, snapshot) triple.
pub fn all_histograms() -> Vec<(u16, Phase, HistogramSnapshot)> {
    let mut out = Vec::new();
    for k in 0..MAX_KERNEL_IDS {
        for phase in Phase::all() {
            let snap = histograms()[k * NUM_PHASES + phase as usize].snapshot();
            if snap.count > 0 {
                out.push((k as u16, phase, snap));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        for k in 1..63 {
            let v = 1u64 << k;
            assert_eq!(bucket_of(v), k, "2^{k}");
            assert_eq!(bucket_of(v - 1), k - 1, "2^{k}-1");
            assert_eq!(bucket_of(v + 1), k, "2^{k}+1");
        }
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(1), 3);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(100); // bucket 6, upper bound 127
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 13, upper bound 16383
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.quantile_ns(0.5), 127);
        assert_eq!(s.quantile_ns(0.9), 127);
        assert_eq!(s.quantile_ns(0.95), 16_383);
        assert_eq!(s.quantile_ns(1.0), 16_383);
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.quantile_ns(0.5), 0);
    }
}
