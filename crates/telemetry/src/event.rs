//! The event taxonomy and its packed wire encoding.
//!
//! Every observable moment in the runtime is one [`Event`]: an instant
//! (a cache hit, a breaker transition, a failpoint trip) or a completed
//! span (a fork-join region, an inspector scan). Events are recorded
//! into fixed-capacity per-thread rings ([`crate::ring`]), so the struct
//! packs into four 64-bit words — small enough that a flight recorder
//! holding thousands of them per thread costs well under a megabyte.

/// What happened. Instants record a point in time; [`EventKind::Span`]
/// records a completed interval (`ts_ns` is the start, `dur_ns` the
/// length) whose meaning is carried by the [`Phase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A fork-join region opened (`arg` = team size).
    RegionFork = 0,
    /// A fork-join region's join completed (`arg` = reclaimed tids).
    RegionJoin = 1,
    /// A team member claimed a tid / batch (`arg` = the claimed tid).
    ClaimBatch = 2,
    /// Inspector cache answered without re-inspection.
    CacheHit = 3,
    /// Inspector cache had no usable entry (`arg` = array length).
    CacheMiss = 4,
    /// Inspector cache entry invalidated by a version bump.
    CacheInvalidate = 5,
    /// A guard decision was reached (`arg` = [`verdict_code`] value).
    GuardVerdict = 6,
    /// A circuit breaker changed position (`arg` = [`breaker_code`]).
    BreakerTransition = 7,
    /// An armed failpoint fired (`arg` = interned site label).
    FailpointTrip = 8,
    /// A completed span; see [`Phase`] for what was timed.
    Span = 9,
    /// The join watchdog ran a recovery scan (`arg` = tids reclaimed).
    WatchdogScan = 10,
    /// A verdict-cache entry was evicted under capacity pressure
    /// (`arg` = evicted array length).
    CacheEvict = 11,
    /// The analysis service admitted a request (`arg` = queue depth at
    /// admission).
    ServiceAdmit = 12,
    /// The analysis service shed a request (`arg` = shed-reason code:
    /// 1 = queue full, 2 = fairness cap, 3 = degraded, 4 = shutdown,
    /// 5 = quarantined, 6 = over budget).
    ServiceShed = 13,
    /// A request's lifetime budget ran out before a response was
    /// delivered (`arg` = 1 deadline expired, 2 waiter abandoned).
    RequestExpired = 14,
    /// The poison-quarantine ladder moved (`arg` = 1 strike recorded,
    /// 2 identity quarantined, 3 probe admitted, 4 released clean).
    Quarantine = 15,
    /// A snapshot-store persistence event (`arg` = entries written on a
    /// successful save, 0 for an aborted or failed attempt).
    SnapshotSave = 16,
    /// The C frontend rejected a request's source (`arg` = the numeric
    /// `DiagCode` of the diagnostic, 0 for a lowering rejection). The
    /// client's own bad input — distinct from worker faults.
    FrontendReject = 17,
}

/// Number of event kinds (sizing for per-kind counters).
pub const NUM_KINDS: usize = 18;

impl EventKind {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RegionFork => "region_fork",
            EventKind::RegionJoin => "region_join",
            EventKind::ClaimBatch => "claim_batch",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::CacheInvalidate => "cache_invalidate",
            EventKind::GuardVerdict => "guard_verdict",
            EventKind::BreakerTransition => "breaker_transition",
            EventKind::FailpointTrip => "failpoint_trip",
            EventKind::Span => "span",
            EventKind::WatchdogScan => "watchdog_scan",
            EventKind::CacheEvict => "cache_evict",
            EventKind::ServiceAdmit => "service_admit",
            EventKind::ServiceShed => "service_shed",
            EventKind::RequestExpired => "request_expired",
            EventKind::Quarantine => "quarantine",
            EventKind::SnapshotSave => "snapshot_save",
            EventKind::FrontendReject => "frontend_reject",
        }
    }

    /// All kinds, in discriminant order.
    pub fn all() -> [EventKind; NUM_KINDS] {
        [
            EventKind::RegionFork,
            EventKind::RegionJoin,
            EventKind::ClaimBatch,
            EventKind::CacheHit,
            EventKind::CacheMiss,
            EventKind::CacheInvalidate,
            EventKind::GuardVerdict,
            EventKind::BreakerTransition,
            EventKind::FailpointTrip,
            EventKind::Span,
            EventKind::WatchdogScan,
            EventKind::CacheEvict,
            EventKind::ServiceAdmit,
            EventKind::ServiceShed,
            EventKind::RequestExpired,
            EventKind::Quarantine,
            EventKind::SnapshotSave,
            EventKind::FrontendReject,
        ]
    }

    fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::all().into_iter().find(|k| *k as u8 == v)
    }
}

/// Which part of the pipeline a span (or histogram sample) belongs to.
/// Histograms are keyed by (kernel, phase), so the phase set is closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// No particular phase (instants that need none).
    None = 0,
    /// One fork-join region, fork to join, on the coordinator.
    Region = 1,
    /// Tid claiming inside a region.
    Claim = 2,
    /// An index-array monotonicity scan (parallel or serial).
    Inspect = 3,
    /// An inspector-cache lookup (hit or miss, inspection included).
    CacheLookup = 4,
    /// Guard phase 1: breaker admission + check + inspections.
    GuardDecide = 5,
    /// Guard phase 2: tamper gate + variant dispatch + recovery.
    Dispatch = 6,
    /// One kernel variant execution.
    KernelRun = 7,
    /// Calibration / micro-benchmark measurement sections.
    Calibrate = 8,
    /// Time a service request spent queued before a worker picked it up.
    Queue = 9,
    /// One service request, dequeue to response (analysis or guarded
    /// execution, on a service worker).
    Service = 10,
    /// An incremental re-inspection: dirty-block rescan plus summary
    /// recombine after a ranged mutation (O(Δ), vs a full `Inspect`).
    Reinspect = 11,
}

/// Number of phases (sizing for the histogram table).
pub const NUM_PHASES: usize = 12;

impl Phase {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Phase::None => "none",
            Phase::Region => "region",
            Phase::Claim => "claim",
            Phase::Inspect => "inspect",
            Phase::CacheLookup => "cache_lookup",
            Phase::GuardDecide => "guard_decide",
            Phase::Dispatch => "dispatch",
            Phase::KernelRun => "kernel_run",
            Phase::Calibrate => "calibrate",
            Phase::Queue => "queue",
            Phase::Service => "service",
            Phase::Reinspect => "reinspect",
        }
    }

    /// All phases, in discriminant order.
    pub fn all() -> [Phase; NUM_PHASES] {
        [
            Phase::None,
            Phase::Region,
            Phase::Claim,
            Phase::Inspect,
            Phase::CacheLookup,
            Phase::GuardDecide,
            Phase::Dispatch,
            Phase::KernelRun,
            Phase::Calibrate,
            Phase::Queue,
            Phase::Service,
            Phase::Reinspect,
        ]
    }

    fn from_u8(v: u8) -> Option<Phase> {
        Phase::all().into_iter().find(|p| *p as u8 == v)
    }
}

/// `arg` encoding for [`EventKind::GuardVerdict`]: 0 = parallel
/// admitted, nonzero = serial with a coarse reason class.
pub fn verdict_code(parallel: bool, reason_class: u8) -> u64 {
    if parallel {
        0
    } else {
        u64::from(reason_class.max(1))
    }
}

/// `arg` encoding for [`EventKind::BreakerTransition`].
pub mod breaker_code {
    /// Breaker closed (parallel admitted again).
    pub const CLOSED: u64 = 0;
    /// Breaker opened after repeated faults.
    pub const OPEN: u64 = 1;
    /// Breaker armed a half-open trial.
    pub const HALF_OPEN: u64 = 2;
}

/// One recorded telemetry event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the recorder epoch. For spans: the start.
    pub ts_ns: u64,
    /// Span length in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Pipeline phase (meaningful for spans; `None` for most instants).
    pub phase: Phase,
    /// Interned label id (kernel or array name; 0 = unlabelled).
    pub kernel: u16,
    /// Recorder thread slot the event was written from.
    pub thread: u32,
    /// Kind-specific payload (see each [`EventKind`] variant).
    pub arg: u64,
}

impl Event {
    /// Packs the event into its four-word ring representation.
    pub fn encode(&self) -> [u64; 4] {
        let meta = (u64::from(self.kind as u8) << 56)
            | (u64::from(self.phase as u8) << 48)
            | (u64::from(self.kernel) << 32)
            | u64::from(self.thread);
        [self.ts_ns, self.dur_ns, meta, self.arg]
    }

    /// Unpacks a four-word ring slot; `None` if the kind or phase byte
    /// is not a valid discriminant (a torn or never-written slot).
    pub fn decode(w: [u64; 4]) -> Option<Event> {
        let kind = EventKind::from_u8((w[2] >> 56) as u8)?;
        let phase = Phase::from_u8(((w[2] >> 48) & 0xFF) as u8)?;
        Some(Event {
            ts_ns: w[0],
            dur_ns: w[1],
            kind,
            phase,
            kernel: ((w[2] >> 32) & 0xFFFF) as u16,
            thread: (w[2] & 0xFFFF_FFFF) as u32,
            arg: w[3],
        })
    }

    /// End timestamp (`ts_ns + dur_ns`, saturating).
    pub fn end_ns(&self) -> u64 {
        self.ts_ns.saturating_add(self.dur_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        let e = Event {
            ts_ns: 123_456_789,
            dur_ns: 42,
            kind: EventKind::GuardVerdict,
            phase: Phase::GuardDecide,
            kernel: 7,
            thread: 3,
            arg: u64::MAX,
        };
        assert_eq!(Event::decode(e.encode()), Some(e));
        for kind in EventKind::all() {
            for phase in Phase::all() {
                let e = Event {
                    ts_ns: 1,
                    dur_ns: 2,
                    kind,
                    phase,
                    kernel: u16::MAX,
                    thread: u32::MAX,
                    arg: 9,
                };
                assert_eq!(Event::decode(e.encode()), Some(e));
            }
        }
    }

    #[test]
    fn invalid_discriminants_decode_to_none() {
        assert!(Event::decode([0, 0, 0xFF << 56, 0]).is_none());
        assert!(Event::decode([0, 0, 0xFF << 48, 0]).is_none());
    }

    #[test]
    fn names_are_unique() {
        let kinds: std::collections::BTreeSet<_> =
            EventKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(kinds.len(), NUM_KINDS);
        let phases: std::collections::BTreeSet<_> = Phase::all().iter().map(|p| p.name()).collect();
        assert_eq!(phases.len(), NUM_PHASES);
    }
}
