//! Lock-free fork-join synchronization primitives.
//!
//! The pool's hot path is built from three pieces:
//!
//! * an [`EpochGate`] — a monotonically increasing `AtomicU64` epoch that
//!   the coordinator bumps to release the team into a new region (the
//!   sense-reversing-barrier idea, with the counter itself as the sense);
//! * a [`ClaimCursor`] — an epoch-stamped cursor the whole team (the
//!   coordinating caller included) claims tids from, so whoever is
//!   actually running executes the work;
//! * a [`JoinLatch`] — one cache-line-padded completion slot per tid;
//!   the claimer publishes the epoch it finished and the coordinator
//!   scans the slots, so completion never contends on a shared counter.
//!
//! Both sides wait with a *spin-then-park* policy: a bounded spin on the
//! atomic (busy `spin_loop` hints first, then `yield_now` so the policy
//! stays civil when threads outnumber cores), falling back to a
//! mutex/condvar park only after the budget is exhausted. The parked
//! path uses the classic Dekker handshake — the sleeper advertises
//! itself with a `SeqCst` counter *before* re-checking the atomic, and
//! the publisher stores with `SeqCst` *before* reading the counter — so
//! a wakeup can never be missed while the common case stays entirely
//! lock-free.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Pads and aligns a value to a 64-byte cache line so adjacent slots in
/// an array never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value.
    pub fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Default bound on spin attempts before parking. The first iterations
/// are pure `spin_loop` hints; the rest yield the core, which keeps an
/// oversubscribed machine (threads > cores) making progress instead of
/// burning whole scheduler quanta.
const DEFAULT_SPIN_BUDGET: u32 = 300;

/// Spin attempts that use `spin_loop` before switching to `yield_now`.
const SPIN_BEFORE_YIELD: u32 = 64;

/// The spin budget, overridable via `OMPRT_SPIN` (0 = park immediately).
pub fn spin_budget() -> u32 {
    static BUDGET: OnceLock<u32> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("OMPRT_SPIN")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SPIN_BUDGET)
    })
}

/// Polls `ready` under the spin budget. Returns the first `Some`, or
/// `None` once the budget is exhausted (caller should park).
fn spin_poll<T>(mut ready: impl FnMut() -> Option<T>) -> Option<T> {
    let budget = spin_budget();
    for i in 0..budget {
        if let Some(v) = ready() {
            return Some(v);
        }
        if i < SPIN_BEFORE_YIELD {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
    ready()
}

/// The release side of the fork-join barrier: workers wait for the epoch
/// to move past the value they last served.
#[derive(Debug)]
pub struct EpochGate {
    epoch: CachePadded<AtomicU64>,
    /// Workers currently parked on the condvar (Dekker flag).
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Default for EpochGate {
    fn default() -> EpochGate {
        EpochGate::new()
    }
}

impl EpochGate {
    /// A closed gate at epoch 0.
    pub fn new() -> EpochGate {
        EpochGate {
            epoch: CachePadded::new(AtomicU64::new(0)),
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Current epoch.
    pub fn current(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Bumps the epoch, releasing every waiter, and returns the new
    /// value. Everything written before this call is visible to a waiter
    /// that observes the new epoch.
    pub fn open_next(&self) -> u64 {
        let next = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Acquiring (and immediately releasing) the lock closes the
            // window between a sleeper's last epoch check and its wait;
            // notifying *after* the unlock spares the woken thread an
            // immediate block on the mutex.
            drop(lock(&self.lock));
            self.cv.notify_all();
        }
        next
    }

    /// Waits (spin, then park) until the epoch differs from `seen`;
    /// returns the new epoch.
    pub fn wait_past(&self, seen: u64) -> u64 {
        let check = || {
            let e = self.epoch.load(Ordering::SeqCst);
            (e != seen).then_some(e)
        };
        if let Some(e) = spin_poll(check) {
            return e;
        }
        // Park: advertise before the final re-check (Dekker pairing with
        // `open_next`'s store-then-load).
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut g = lock(&self.lock);
        let e = loop {
            let e = self.epoch.load(Ordering::SeqCst);
            if e != seen {
                break e;
            }
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        };
        drop(g);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        e
    }
}

/// Bits of the claim word holding the tid cursor.
const TID_BITS: u32 = 16;
const TID_MASK: u64 = (1 << TID_BITS) - 1;
/// Epochs are truncated to the remaining 48 bits inside the claim word;
/// the pool would need ~9 years of back-to-back microsecond regions to
/// wrap.
pub const EPOCH_MASK: u64 = u64::MAX >> TID_BITS;

/// The work-distribution side of the barrier: one epoch-stamped cursor
/// from which every team member — the coordinating caller included —
/// claims tids with a single CAS.
///
/// Packing `(epoch << 16) | next_tid` into one `AtomicU64` makes a claim
/// self-validating: a CAS can only succeed against the *current*
/// region's word, so a worker that overslept an entire region (or three)
/// can never claim into a dead one. This is what lets the coordinator
/// absorb tids itself instead of blocking on worker wake-ups: on an
/// oversubscribed machine it typically claims the whole team's tids
/// back-to-back with zero context switches, while on a multicore machine
/// spinning workers win the CAS races and the region runs genuinely in
/// parallel.
#[derive(Debug)]
pub struct ClaimCursor {
    word: CachePadded<AtomicU64>,
}

impl Default for ClaimCursor {
    fn default() -> ClaimCursor {
        ClaimCursor::new()
    }
}

impl ClaimCursor {
    /// A cursor with every region exhausted (nothing claimable).
    pub fn new() -> ClaimCursor {
        ClaimCursor {
            word: CachePadded::new(AtomicU64::new(TID_MASK)),
        }
    }

    /// Opens region `epoch`: tids `0..threads` become claimable.
    pub fn open(&self, epoch: u64) {
        self.word
            .store((epoch & EPOCH_MASK) << TID_BITS, Ordering::SeqCst);
    }

    /// Number of tids already claimed in region `epoch` (0 when the
    /// cursor is parked on a different region). Tids `0..claimed` have
    /// been handed out; the watchdog uses this to tell a claimed-but-
    /// unattributed tid from one that was simply never claimed.
    pub fn claimed(&self, epoch: u64, threads: usize) -> usize {
        let cur = self.word.load(Ordering::SeqCst);
        if cur >> TID_BITS == epoch & EPOCH_MASK {
            ((cur & TID_MASK) as usize).min(threads)
        } else {
            0
        }
    }

    /// Claims the next tid of the current region, if any. Returns the
    /// region's (truncated) epoch and the claimed tid.
    pub fn try_claim(&self, threads: usize) -> Option<(u64, usize)> {
        loop {
            let cur = self.word.load(Ordering::SeqCst);
            let tid = (cur & TID_MASK) as usize;
            if tid >= threads {
                return None;
            }
            // tid occupies the low bits, so +1 can never carry into the
            // epoch while tid < threads <= TID_MASK.
            if self
                .word
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some((cur >> TID_BITS, tid));
            }
        }
    }
}

/// The join side of the barrier: one cache-line-padded completion slot
/// per tid, holding the (truncated) epoch in which that tid last
/// finished. Whoever executed a tid marks its slot; the coordinator
/// waits for every slot to reach the current epoch.
#[derive(Debug)]
pub struct JoinLatch {
    slots: Vec<CachePadded<AtomicU64>>,
    /// Coordinator is parked (Dekker flag).
    waiting: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl JoinLatch {
    /// A latch for `threads` tids, all at epoch 0.
    pub fn new(threads: usize) -> JoinLatch {
        JoinLatch {
            slots: (0..threads)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            waiting: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn complete(&self, epoch: u64) -> Option<()> {
        self.slots
            .iter()
            .all(|s| s.load(Ordering::SeqCst) >= epoch)
            .then_some(())
    }

    /// Reports that tid `tid` completed `epoch`. Wakes the coordinator
    /// only when it is parked *and* this was the region's last tid, so
    /// stragglers cause no spurious wake-ups.
    ///
    /// The slot advances with `fetch_max`, never a plain store: a
    /// straggler that finishes a tid *after* the watchdog already
    /// force-marked it (an abandoned region) must not drag the slot back
    /// below an epoch the coordinator has since moved past.
    pub fn mark(&self, tid: usize, epoch: u64) {
        self.slots[tid].fetch_max(epoch, Ordering::SeqCst);
        if self.waiting.load(Ordering::SeqCst) > 0 && self.complete(epoch).is_some() {
            drop(lock(&self.lock));
            self.cv.notify_all();
        }
    }

    /// Whether tid `tid` has completed `epoch` (watchdog predicate).
    pub fn is_marked(&self, tid: usize, epoch: u64) -> bool {
        self.slots[tid].load(Ordering::SeqCst) >= epoch
    }

    /// Waits (spin, then park) until every tid has completed `epoch`.
    pub fn wait_all(&self, epoch: u64) {
        while !self.wait_all_for(epoch, std::time::Duration::from_millis(100)) {}
    }

    /// Waits (spin, then park with a timeout) until every tid has
    /// completed `epoch` or `timeout` elapses. Returns whether the join
    /// is complete — `false` hands control back to the caller, which is
    /// how the pool's coordinator interleaves its watchdog scan with the
    /// join wait.
    pub fn wait_all_for(&self, epoch: u64, timeout: std::time::Duration) -> bool {
        if spin_poll(|| self.complete(epoch)).is_some() {
            return true;
        }
        self.waiting.fetch_add(1, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + timeout;
        let mut g = lock(&self.lock);
        let done = loop {
            if self.complete(epoch).is_some() {
                break true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                break false;
            }
            let (g2, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            g = g2;
        };
        drop(g);
        self.waiting.fetch_sub(1, Ordering::SeqCst);
        done
    }
}

/// Locks a mutex, ignoring poisoning (the guarded state is only a park
/// rendezvous; all real state lives in atomics).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cache_padded_is_a_cache_line() {
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 64);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
        let mut p = CachePadded::new(5u32);
        *p += 1;
        assert_eq!(p.into_inner(), 6);
    }

    #[test]
    fn gate_releases_a_parked_waiter() {
        let gate = Arc::new(EpochGate::new());
        let g2 = Arc::clone(&gate);
        let h = std::thread::spawn(move || g2.wait_past(0));
        // Give the waiter time to exhaust its spin budget and park.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let next = gate.open_next();
        assert_eq!(h.join().unwrap(), next);
    }

    #[test]
    fn latch_round_trip() {
        let latch = Arc::new(JoinLatch::new(3));
        let l2 = Arc::clone(&latch);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            for tid in 0..3 {
                l2.mark(tid, 1);
            }
        });
        latch.wait_all(1);
        h.join().unwrap();
    }

    #[test]
    fn claims_are_exhaustive_and_epoch_scoped() {
        let c = ClaimCursor::new();
        assert!(c.try_claim(4).is_none(), "fresh cursor is exhausted");
        c.open(7);
        let mut tids = Vec::new();
        while let Some((e, tid)) = c.try_claim(4) {
            assert_eq!(e, 7);
            tids.push(tid);
        }
        assert_eq!(tids, vec![0, 1, 2, 3]);
        assert!(c.try_claim(4).is_none(), "region drained");
        c.open(8);
        assert_eq!(c.try_claim(4), Some((8, 0)));
    }
}
