//! OpenMP-style loop schedules.

use std::fmt;

/// How a `parallel for`'s iterations are distributed over threads,
/// mirroring OpenMP's `schedule` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// `schedule(static)` / `schedule(static, chunk)`. With `chunk: None`
    /// the iteration space is split into one contiguous block per thread
    /// (OpenMP's default); with a chunk size, chunks are dealt round-robin.
    Static {
        /// Optional chunk size.
        chunk: Option<usize>,
    },
    /// `schedule(dynamic, chunk)`: threads self-schedule chunks from a
    /// shared counter.
    Dynamic {
        /// Chunk size (OpenMP default is 1).
        chunk: usize,
    },
    /// `schedule(guided, min_chunk)`: chunk sizes start at
    /// `remaining / threads` and shrink geometrically down to `min_chunk`.
    Guided {
        /// Minimum chunk size.
        min_chunk: usize,
    },
}

impl Schedule {
    /// OpenMP default static schedule.
    pub fn static_default() -> Schedule {
        Schedule::Static { chunk: None }
    }

    /// `schedule(dynamic)` with the OpenMP default chunk of 1.
    pub fn dynamic_default() -> Schedule {
        Schedule::Dynamic { chunk: 1 }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Schedule::Static { chunk: None } => write!(f, "static"),
            Schedule::Static { chunk: Some(c) } => write!(f, "static,{c}"),
            Schedule::Dynamic { chunk } => write!(f, "dynamic,{chunk}"),
            Schedule::Guided { min_chunk } => write!(f, "guided,{min_chunk}"),
        }
    }
}

/// Iterations claimed per shared-cursor `fetch_add` under
/// [`Schedule::Dynamic`].
///
/// With `chunk: 1` (the OpenMP default) a naive implementation performs
/// one atomic RMW per iteration, serializing every thread on one cache
/// line. Claims are therefore *batched*: each grab takes a whole
/// multiple of `chunk`, scaled so a single claim is at most 1/64th of a
/// thread's fair share (preserving dynamic load balancing at the tail)
/// and never more than 64 chunks. The simulator charges its per-claim
/// dispatch cost at the same granularity, so the model and the runtime
/// agree on how many shared-counter updates a loop performs.
pub fn dynamic_batch(n: usize, threads: usize, chunk: usize) -> usize {
    let c = chunk.max(1);
    let fair_share = n / threads.max(1);
    c * (fair_share / (c * 64)).clamp(1, 64)
}

/// Size of the next claim under [`Schedule::Guided`]: half the remaining
/// fair share, never below `min_chunk`, never beyond `remaining`. Both
/// the pool and the simulator use this one definition, so `parallel_for`
/// and `parallel_for_reduce` shrink geometrically in lockstep with the
/// cost model.
pub fn guided_claim(remaining: usize, threads: usize, min_chunk: usize) -> usize {
    (remaining / (2 * threads.max(1)))
        .max(min_chunk.max(1))
        .min(remaining)
}

/// The contiguous chunks thread `tid` of `threads` executes under a static
/// schedule of `n` iterations. Returns `(start, end)` half-open ranges.
pub fn static_chunks(
    n: usize,
    threads: usize,
    chunk: Option<usize>,
    tid: usize,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    match chunk {
        None => {
            // Blocked: ceil-partition, first `rem` threads get one extra.
            let base = n / threads;
            let rem = n % threads;
            let mine = base + usize::from(tid < rem);
            let start = tid * base + tid.min(rem);
            if mine > 0 {
                out.push((start, start + mine));
            }
        }
        Some(c) => {
            let c = c.max(1);
            let mut start = tid * c;
            while start < n {
                out.push((start, (start + c).min(n)));
                start += threads * c;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::needless_range_loop)]
    fn covered(n: usize, threads: usize, chunk: Option<usize>) -> Vec<usize> {
        let mut hits = vec![0usize; n];
        for tid in 0..threads {
            for (s, e) in static_chunks(n, threads, chunk, tid) {
                for i in s..e {
                    hits[i] += 1;
                }
            }
        }
        hits
    }

    #[test]
    fn blocked_partition_exact_cover() {
        for n in [0, 1, 7, 16, 100, 101] {
            for t in [1, 2, 3, 8] {
                assert!(covered(n, t, None).iter().all(|&h| h == 1), "n={n} t={t}");
            }
        }
    }

    #[test]
    fn round_robin_partition_exact_cover() {
        for n in [0, 1, 7, 100, 101] {
            for t in [1, 2, 3, 8] {
                for c in [1, 2, 5] {
                    assert!(
                        covered(n, t, Some(c)).iter().all(|&h| h == 1),
                        "n={n} t={t} c={c}"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_is_contiguous_and_ordered() {
        let a = static_chunks(10, 3, None, 0);
        let b = static_chunks(10, 3, None, 1);
        let c = static_chunks(10, 3, None, 2);
        assert_eq!(a, vec![(0, 4)]);
        assert_eq!(b, vec![(4, 7)]);
        assert_eq!(c, vec![(7, 10)]);
    }

    #[test]
    fn dynamic_batch_bounds() {
        // Single-chunk floor: tiny loops claim exactly `chunk`.
        assert_eq!(dynamic_batch(10, 4, 1), 1);
        assert_eq!(dynamic_batch(10, 4, 8), 8);
        // Large loops batch, but never more than 64 chunks per claim and
        // never more than 1/64th of a thread's fair share.
        for (n, t, c) in [(100_000, 4, 1), (1 << 20, 8, 1), (1 << 20, 2, 16)] {
            let b = dynamic_batch(n, t, c);
            assert_eq!(b % c, 0, "whole multiples of chunk");
            assert!(b <= c * 64);
            assert!(b <= (n / t / 64).max(c), "n={n} t={t} c={c} b={b}");
        }
    }

    #[test]
    fn guided_claim_shrinks_geometrically_to_min() {
        let (n, threads, min) = (1024usize, 4usize, 2usize);
        let mut s = 0;
        let mut last = usize::MAX;
        while s < n {
            let c = guided_claim(n - s, threads, min);
            assert!(c >= min.min(n - s) && c <= n - s);
            assert!(c <= last, "claims never grow");
            last = c;
            s += c;
        }
        assert_eq!(s, n, "claims exactly cover the space");
        assert_eq!(last, min, "tail claims reach the floor");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Schedule::static_default().to_string(), "static");
        assert_eq!(Schedule::dynamic_default().to_string(), "dynamic,1");
        assert_eq!(Schedule::Guided { min_chunk: 4 }.to_string(), "guided,4");
    }
}
