//! An OpenMP-like parallel runtime plus a deterministic scheduling
//! cost-model simulator.
//!
//! The paper's evaluation hinges on runtime behaviour that off-the-shelf
//! data-parallel libraries hide:
//!
//! * **fork-join overhead** — Figure 13's "anomaly" (58× for AMGmk) comes
//!   from classical parallelization forking a team for every iteration of
//!   the outer loop;
//! * **loop scheduling policy** — Figure 16 compares OpenMP `static` and
//!   `dynamic` schedules under load imbalance.
//!
//! This crate therefore implements a persistent worker [`ThreadPool`] with
//! OpenMP-style `static` / `dynamic` / `guided` loop scheduling
//! ([`Schedule`]) and reductions, and — because wall-clock speedups cannot
//! materialize on a single-core CI container — a deterministic
//! [`sim`] module that replays the same scheduling policies over measured
//! per-iteration costs, charging a calibrated fork-join overhead. All
//! figure harnesses use the simulator for the paper's 4/8/16-core series
//! and real execution for validation.

pub mod barrier;
pub mod cancel;
pub mod legacy;
pub mod measure;
pub mod pool;
pub mod schedule;
pub mod sendptr;
pub mod sim;

pub use barrier::CachePadded;
pub use cancel::CancelToken;
pub use measure::{time_once, time_repeat, Measurement};
pub use pool::{PoolHealth, RegionError, RegionReport, ThreadPool};
pub use schedule::Schedule;
pub use sendptr::SendPtr;
pub use sim::{
    simulate_inner_parallel, simulate_parallel_for, MachineCalibration, SimParams, SimResult,
};
