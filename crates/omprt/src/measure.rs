//! Wall-clock measurement helpers for the benchmark harnesses.

use std::time::Instant;

/// A set of repeated timings, in seconds.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Individual run times (seconds).
    pub runs: Vec<f64>,
}

impl Measurement {
    /// Fastest run.
    pub fn min(&self) -> f64 {
        self.runs.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.runs.iter().sum::<f64>() / self.runs.len().max(1) as f64
    }

    /// Run-to-run variation: (max - min) / mean.
    pub fn variation(&self) -> f64 {
        let max = self.runs.iter().cloned().fold(0.0, f64::max);
        let mean = self.mean();
        if mean == 0.0 {
            0.0
        } else {
            (max - self.min()) / mean
        }
    }
}

/// Times a single execution of `f`, returning seconds.
pub fn time_once<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Times `f` `reps` times (the paper reports the mean of 5 runs).
pub fn time_repeat<F: FnMut()>(reps: usize, mut f: F) -> Measurement {
    let runs = (0..reps.max(1)).map(|_| time_once(&mut f)).collect();
    Measurement { runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_positive_and_stats_work() {
        let m = time_repeat(3, || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        });
        assert_eq!(m.runs.len(), 3);
        assert!(m.min() >= 0.0);
        assert!(m.mean() >= m.min());
        assert!(m.variation() >= 0.0);
    }
}
