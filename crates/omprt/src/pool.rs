//! A persistent worker thread pool with OpenMP-style `parallel for`,
//! self-healing against worker faults.
//!
//! Workers are spawned once and wait between parallel regions on a
//! lock-free [`EpochGate`]; a region is one epoch. The fork-join hot
//! path takes no locks:
//!
//! * **fork** — the coordinator writes the job as a *single erased
//!   pointer* into a plain slot (no per-worker `Arc` clones, no job
//!   mutex), opens the [`ClaimCursor`] for the new epoch, and bumps the
//!   gate; the cursor's `SeqCst` transition publishes the slot;
//! * **execute** — every team member, *the coordinating caller
//!   included*, claims tids from the cursor with one CAS each and calls
//!   the borrowed closure directly through the pointer. The coordinator
//!   claims whatever tids no worker has taken yet: on an oversubscribed
//!   machine (or a 1-thread pool) it absorbs the whole region with zero
//!   context switches, while on a multicore machine the spinning workers
//!   win the claims and the region runs in parallel — fork-join overhead
//!   adapts to what the hardware can actually overlap;
//! * **join** — whoever executed a tid stores the finished epoch into
//!   that tid's cache-line-padded [`JoinLatch`] slot; the coordinator
//!   scans the slots, and only the region's last completion wakes a
//!   parked coordinator.
//!
//! All waits are spin-then-park ([`crate::barrier`]): bounded spinning
//! keeps back-to-back regions syscall-free, parking keeps an idle pool
//! off the CPU. Measured fork-join latency versus the retained
//! mutex/condvar design ([`crate::legacy`]) is reported by the
//! `forkjoin_calibrate` binary and committed in `BENCH_forkjoin.json`.
//!
//! Because tids may execute on fewer OS threads than `threads()`, jobs
//! must not synchronize *between* tids (no intra-region barriers) — the
//! same restriction the rest of this crate's `parallel for` API already
//! satisfies by construction.
//!
//! **Nested/concurrent regions.** A `run` (or `parallel_for`) issued
//! while another region is active on the same pool — from inside a
//! worker's job or from a second coordinating thread — degrades to
//! inline serial execution of the job on the calling thread (`job(tid)`
//! for every tid), preserving the exactly-once iteration contract. This
//! mirrors OpenMP's behaviour with nested parallelism disabled.
//!
//! # Fault model and self-healing
//!
//! Each claim is *attributed*: the claimer records `(epoch, who,
//! claimed|started)` in a cache-padded per-tid slot before and after the
//! instant it begins the job. While the coordinator waits for the join
//! it runs a **watchdog** every [`WATCHDOG_TICK`]: if a worker thread
//! has died (detected with `JoinHandle::is_finished`) the watchdog
//! consults the records for every unjoined tid the dead worker claimed —
//!
//! * **claimed but never started** → the tid's job has had no effect, so
//!   the coordinator *reclaims* it: it executes the job itself and marks
//!   the join, and the region completes normally (counted in
//!   [`PoolHealth::reclaimed_tids`]);
//! * **started** → exactly-once execution can no longer be guaranteed,
//!   so the region *aborts cleanly*: the orphaned slot is force-marked
//!   (so the join terminates, never deadlocks) and the region returns
//!   [`RegionError::WorkerLost`].
//!
//! Dead workers are respawned before the next region
//! ([`PoolHealth::respawned_workers`]); the team never shrinks
//! permanently. Join marks use `fetch_max`, so a straggler finishing an
//! abandoned tid later cannot corrupt a newer region's join.
//!
//! **Panics.** A panicking job does not deadlock the pool: the claimer
//! catches the unwind, records the first payload, reports completion,
//! and the region returns [`RegionError::Panicked`] (the `run` wrapper
//! re-raises it). The pool stays usable afterwards.
//!
//! **Deadlines.** [`ThreadPool::run_with_deadline`] and
//! [`ThreadPool::parallel_for_deadline`] trip the caller's
//! [`CancelToken`] once the deadline passes, drain cooperatively, and
//! return [`RegionError::DeadlineExceeded`]. Cancellation is
//! cooperative: a job that never polls the token is waited for (the
//! region borrows the caller's frame, so abandoning it would dangle).
//!
//! Chaos tests drive these paths deterministically through the
//! `subsub-failpoint` sites `omprt.worker.wake`, `omprt.worker.claim`,
//! `omprt.region.fork`, `omprt.region.join` and `omprt.reduce.slot`.

use crate::barrier::{CachePadded, ClaimCursor, EpochGate, JoinLatch, EPOCH_MASK};
use crate::cancel::CancelToken;
use crate::schedule::{dynamic_batch, guided_claim, static_chunks, Schedule};
use crate::sendptr::SendPtr;
use std::cell::UnsafeCell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use subsub_failpoint as failpoint;
use subsub_telemetry as telemetry;
use subsub_telemetry::{EventKind, Phase};

/// The erased fork-join job: a pointer to a closure borrowed for the
/// duration of exactly one region.
type RawJob = *const (dyn Fn(usize) + Sync);

/// How often the joining coordinator interleaves a watchdog scan with
/// its park. Healthy regions never reach the first tick: the join
/// completes inside the spin budget.
pub const WATCHDOG_TICK: Duration = Duration::from_millis(2);

/// Claimer id of the coordinating caller in a claim record.
const COORD: u16 = u16::MAX;

/// Claim-record states (low two bits of the record word).
const REC_CLAIMED: u64 = 1;
const REC_STARTED: u64 = 2;
const REC_WHO_SHIFT: u32 = 2;
const REC_WHO_MASK: u64 = 0xFFFF;
const REC_EPOCH_SHIFT: u32 = 18;

fn record(epoch: u64, who: u16, state: u64) -> u64 {
    (epoch << REC_EPOCH_SHIFT) | (u64::from(who) << REC_WHO_SHIFT) | state
}

fn record_matches_epoch(rec: u64, epoch: u64) -> bool {
    rec >> REC_EPOCH_SHIFT == (epoch << REC_EPOCH_SHIFT) >> REC_EPOCH_SHIFT
}

fn record_who(rec: u64) -> u16 {
    ((rec >> REC_WHO_SHIFT) & REC_WHO_MASK) as u16
}

fn record_state(rec: u64) -> u64 {
    rec & 0b11
}

/// Why a fork-join region could not complete normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionError {
    /// At least one tid's job panicked; `detail` carries the first
    /// payload (injected failpoint panics keep their site name).
    Panicked {
        /// Rendering of the first panic payload observed.
        detail: String,
    },
    /// A worker thread died after *starting* a job, so exactly-once
    /// execution cannot be guaranteed; the region was aborted cleanly.
    WorkerLost {
        /// The orphaned tid.
        tid: usize,
    },
    /// The region's deadline elapsed; remaining work was cancelled
    /// cooperatively. Side effects of completed iterations remain.
    DeadlineExceeded,
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::Panicked { detail } => {
                write!(f, "a job panicked inside a parallel region: {detail}")
            }
            RegionError::WorkerLost { tid } => {
                write!(f, "worker executing tid {tid} died mid-job; region aborted")
            }
            RegionError::DeadlineExceeded => write!(f, "region deadline exceeded"),
        }
    }
}

impl std::error::Error for RegionError {}

/// Recovery work one region performed (all zero on the healthy path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionReport {
    /// Tids reclaimed from dead workers and executed by the coordinator.
    pub reclaimed_tids: u32,
    /// Dead worker threads replaced around this region.
    pub respawned_workers: u32,
}

/// Cumulative self-healing counters for one pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolHealth {
    /// Fork-join regions coordinated (inline-degraded ones included).
    pub regions: u64,
    /// Regions in which at least one job panicked (and was contained).
    pub job_panics: u64,
    /// Tids reclaimed from dead workers by the coordinator.
    pub reclaimed_tids: u64,
    /// Worker threads respawned after dying.
    pub respawned_workers: u64,
    /// Regions aborted because a worker died mid-job.
    pub aborted_regions: u64,
    /// Regions whose deadline tripped the cancel token.
    pub deadline_cancels: u64,
}

impl PoolHealth {
    /// Total degradation events recorded: everything except the plain
    /// region count. Monotone, so a consumer polling for "did anything
    /// go wrong since last time" can diff two snapshots.
    pub fn degradation_events(&self) -> u64 {
        self.job_panics
            + self.reclaimed_tids
            + self.respawned_workers
            + self.aborted_regions
            + self.deadline_cancels
    }

    /// Degradation events in `self` that were not yet present in the
    /// earlier snapshot `prev` (saturating; snapshots are cumulative).
    pub fn degradation_since(&self, prev: &PoolHealth) -> u64 {
        self.degradation_events()
            .saturating_sub(prev.degradation_events())
    }
}

#[derive(Debug, Default)]
struct HealthCounters {
    regions: AtomicU64,
    job_panics: AtomicU64,
    reclaimed_tids: AtomicU64,
    respawned_workers: AtomicU64,
    aborted_regions: AtomicU64,
    deadline_cancels: AtomicU64,
}

struct Shared {
    /// Job slot for the current region. Written by the coordinator
    /// *before* opening the claim cursor and read only between a
    /// successful claim and that claim's join mark, so the cursor's
    /// `SeqCst` transition orders every access (see `execute_claims`).
    job: UnsafeCell<Option<RawJob>>,
    gate: EpochGate,
    claim: ClaimCursor,
    join: JoinLatch,
    /// Team size; a claim word's tid field is 16 bits, so this is capped
    /// at 65534 in `ThreadPool::new` (65535 is the coordinator's id).
    threads: usize,
    shutdown: AtomicBool,
    /// Some claimed tid's job panicked during the current region.
    panicked: AtomicBool,
    /// Rendering of the first panic payload of the current region.
    panic_detail: Mutex<Option<String>>,
    /// Per-worker liveness heartbeat, bumped on every wake and claim.
    beats: Vec<CachePadded<AtomicU64>>,
    /// Per-tid claim attribution: `(epoch, who, claimed|started)`,
    /// written by the claimer, read by the watchdog.
    records: Vec<CachePadded<AtomicU64>>,
}

impl Shared {
    fn note_panic(&self, detail: String) {
        self.panicked.store(true, Ordering::SeqCst);
        let mut slot = lock(&self.panic_detail);
        slot.get_or_insert(detail);
    }
}

// SAFETY: `job` is written only by the single coordinator while no
// region is open (the cursor is exhausted and every claimed tid is
// marked, so no thread can reach the slot) and read only under a live
// claim; the `SeqCst` claim-open / CAS pair orders the write before
// every read.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// A fixed-size team of worker threads executing fork-join parallel
/// regions, with watchdog-based recovery from dead workers.
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// `None` marks a slot whose respawn failed; retried each region.
    /// Locked only by the coordinator (under `region_active`) and `drop`.
    workers: Mutex<Vec<Option<JoinHandle<()>>>>,
    threads: usize,
    /// Guards against nested/concurrent `run` on the same pool.
    region_active: AtomicBool,
    /// Set when a worker death was observed; makes the next region scan
    /// and respawn eagerly instead of waiting for the periodic sweep.
    suspect: AtomicBool,
    health: HealthCounters,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (the calling thread is not
    /// part of the team; it coordinates).
    pub fn new(threads: usize) -> ThreadPool {
        // tid and claimer ids must fit their 16-bit fields, with
        // `u16::MAX` reserved for the coordinator.
        let threads = threads.clamp(1, 65_534);
        let shared = Arc::new(Shared {
            job: UnsafeCell::new(None),
            gate: EpochGate::new(),
            claim: ClaimCursor::new(),
            join: JoinLatch::new(threads),
            threads,
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            panic_detail: Mutex::new(None),
            beats: (0..threads).map(|_| CachePadded::default()).collect(),
            records: (0..threads).map(|_| CachePadded::default()).collect(),
        });
        let workers = (0..threads).map(|w| spawn_worker(&shared, w, 0)).collect();
        ThreadPool {
            shared,
            workers: Mutex::new(workers),
            threads,
            region_active: AtomicBool::new(false),
            suspect: AtomicBool::new(false),
            health: HealthCounters::default(),
        }
    }

    /// Spawns a pool wrapped for sharing across threads — the handle a
    /// long-lived service hands to every worker so concurrent requests
    /// multiplex over one team (concurrent coordinators degrade inline
    /// per the module docs; the pool stays correct, the losers just run
    /// their regions serially).
    pub fn shared(threads: usize) -> Arc<ThreadPool> {
        Arc::new(ThreadPool::new(threads))
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the pool's self-healing counters.
    pub fn health(&self) -> PoolHealth {
        PoolHealth {
            regions: self.health.regions.load(Ordering::Relaxed),
            job_panics: self.health.job_panics.load(Ordering::Relaxed),
            reclaimed_tids: self.health.reclaimed_tids.load(Ordering::Relaxed),
            respawned_workers: self.health.respawned_workers.load(Ordering::Relaxed),
            aborted_regions: self.health.aborted_regions.load(Ordering::Relaxed),
            deadline_cancels: self.health.deadline_cancels.load(Ordering::Relaxed),
        }
    }

    /// Runs `job(tid)` on every worker and waits for all to finish —
    /// one fork-join region. Nested or concurrent calls degrade to
    /// inline serial execution (see the module docs). Panics (with a
    /// [`RegionError`] payload) if the region faulted; use
    /// [`ThreadPool::try_run`] to handle faults as values.
    pub fn run<F>(&self, job: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if let Err(e) = self.try_run(job) {
            std::panic::panic_any(e);
        }
    }

    /// Runs one fork-join region, reporting faults (job panics, lost
    /// workers) as a [`RegionError`] instead of panicking. The pool
    /// remains usable after any error.
    pub fn try_run<F>(&self, job: F) -> Result<RegionReport, RegionError>
    where
        F: Fn(usize) + Send + Sync,
    {
        self.region(&job, None, None)
    }

    /// Runs one fork-join region with a deadline: once `deadline`
    /// elapses, `cancel` is tripped so cooperative jobs drain, and the
    /// region returns [`RegionError::DeadlineExceeded`]. Jobs must poll
    /// the token (as every `parallel_for` body does) for the deadline to
    /// take effect.
    pub fn run_with_deadline<F>(
        &self,
        cancel: &CancelToken,
        deadline: Duration,
        job: F,
    ) -> Result<RegionReport, RegionError>
    where
        F: Fn(usize) + Send + Sync,
    {
        self.region(&job, Some(cancel), Some(Instant::now() + deadline))
    }

    /// OpenMP-style `parallel for` over `0..n` with the given schedule.
    pub fn parallel_for<F>(&self, n: usize, sched: Schedule, body: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if let Err(e) = self.parallel_for_impl(n, sched, None, None, &body) {
            std::panic::panic_any(e);
        }
    }

    /// [`ThreadPool::parallel_for`] reporting region faults as values.
    pub fn try_parallel_for<F>(
        &self,
        n: usize,
        sched: Schedule,
        body: F,
    ) -> Result<RegionReport, RegionError>
    where
        F: Fn(usize) + Send + Sync,
    {
        self.parallel_for_impl(n, sched, None, None, &body)
    }

    /// [`ThreadPool::parallel_for`] with cooperative cancellation: once
    /// any thread calls `cancel.cancel()` (typically from inside `body`),
    /// no further iteration starts on any thread. Iterations already in
    /// flight finish; every executed iteration runs at most once.
    pub fn parallel_for_cancel<F>(&self, n: usize, sched: Schedule, cancel: &CancelToken, body: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if let Err(e) = self.parallel_for_impl(n, sched, Some(cancel), None, &body) {
            std::panic::panic_any(e);
        }
    }

    /// [`ThreadPool::parallel_for_cancel`] reporting region faults as
    /// values instead of panicking — the form fault-tolerant callers
    /// (the rtcheck inspector) build on.
    pub fn try_parallel_for_cancel<F>(
        &self,
        n: usize,
        sched: Schedule,
        cancel: &CancelToken,
        body: F,
    ) -> Result<RegionReport, RegionError>
    where
        F: Fn(usize) + Send + Sync,
    {
        self.parallel_for_impl(n, sched, Some(cancel), None, &body)
    }

    /// [`ThreadPool::parallel_for_cancel`] with a deadline: iterations
    /// stop starting once `deadline` elapses (the token is tripped) and
    /// the call reports [`RegionError::DeadlineExceeded`]. Side effects
    /// of iterations that completed before the trip remain.
    pub fn parallel_for_deadline<F>(
        &self,
        n: usize,
        sched: Schedule,
        cancel: &CancelToken,
        deadline: Duration,
        body: F,
    ) -> Result<RegionReport, RegionError>
    where
        F: Fn(usize) + Send + Sync,
    {
        let dl = Instant::now() + deadline;
        let report = self.parallel_for_impl(n, sched, Some(cancel), Some(dl), &body)?;
        if cancel.is_cancelled() && Instant::now() >= dl {
            self.health.deadline_cancels.fetch_add(1, Ordering::Relaxed);
            return Err(RegionError::DeadlineExceeded);
        }
        Ok(report)
    }

    fn parallel_for_impl<F>(
        &self,
        n: usize,
        sched: Schedule,
        cancel: Option<&CancelToken>,
        deadline: Option<Instant>,
        body: &F,
    ) -> Result<RegionReport, RegionError>
    where
        F: Fn(usize) + Send + Sync,
    {
        // An explicit token always wins; otherwise the coordinating
        // thread's ambient scope (installed by a host via
        // `cancel::with_ambient_cancel`) supplies one, so cancellation
        // reaches regions opened by code that never learned about
        // tokens (kernel bodies calling plain `parallel_for`).
        let ambient = if cancel.is_none() {
            crate::cancel::ambient_cancel()
        } else {
            None
        };
        let cancel = cancel.or(ambient.as_deref());
        // Padded so the shared cursor never false-shares with the
        // coordinator's stack around it.
        let cursor = CachePadded::new(AtomicUsize::new(0));
        let threads = self.threads;
        let deadline_hit = AtomicBool::new(false);
        let check_deadline = || {
            if let Some(dl) = deadline {
                if Instant::now() >= dl {
                    deadline_hit.store(true, Ordering::Relaxed);
                    if let Some(c) = cancel {
                        c.cancel();
                    }
                }
            }
        };
        let report = self.region(
            &|tid| {
                drive(sched, n, threads, tid, &cursor, cancel, |s, e| {
                    check_deadline();
                    for i in s..e {
                        if cancel.is_some_and(CancelToken::is_cancelled) {
                            return false;
                        }
                        // Deadlines are polled between claimed ranges and
                        // every 128 iterations within one, so one huge
                        // static chunk cannot overshoot unboundedly.
                        if deadline.is_some() && (i - s) % 128 == 127 {
                            check_deadline();
                        }
                        body(i);
                    }
                    true
                });
            },
            cancel,
            deadline,
        )?;
        if deadline_hit.load(Ordering::Relaxed) {
            self.health.deadline_cancels.fetch_add(1, Ordering::Relaxed);
            return Err(RegionError::DeadlineExceeded);
        }
        Ok(report)
    }

    /// `parallel for` with a `+`-style reduction: each thread folds its
    /// iterations locally with `fold` into a cache-line-padded private
    /// slot (no locks anywhere), and partials are combined with
    /// `combine` in tid order after the join.
    pub fn parallel_for_reduce<T, F, C>(
        &self,
        n: usize,
        sched: Schedule,
        identity: T,
        fold: F,
        combine: C,
    ) -> T
    where
        T: Clone + Send + Sync,
        F: Fn(T, usize) -> T + Send + Sync,
        C: Fn(T, T) -> T,
    {
        let mut partials: Vec<CachePadded<Option<T>>> =
            (0..self.threads).map(|_| CachePadded::new(None)).collect();
        let slots = SendPtr::new(partials.as_mut_ptr());
        let cursor = CachePadded::new(AtomicUsize::new(0));
        let threads = self.threads;
        // Reductions honour the coordinator's ambient cancel scope the
        // same way `parallel_for` does: a cancelled reduction stops
        // claiming and folds only the iterations that already ran (the
        // host discards the partial result).
        let ambient = crate::cancel::ambient_cancel();
        let cancel = ambient.as_deref();
        self.run(|tid| {
            let mut acc = Some(identity.clone());
            drive(sched, n, threads, tid, &cursor, cancel, |s, e| {
                for i in s..e {
                    if cancel.is_some_and(CancelToken::is_cancelled) {
                        return false;
                    }
                    // The accumulator is always re-seated below; if it
                    // ever were empty, restarting from the identity is
                    // the only sound continuation (never panic here).
                    let cur = acc.take().unwrap_or_else(|| identity.clone());
                    acc = Some(fold(cur, i));
                }
                true
            });
            failpoint::hit("omprt.reduce.slot");
            // SAFETY: slot `tid` is written by exactly one claimer (and by
            // the inline-serial fallback strictly sequentially), and the
            // coordinator reads only after the region's join.
            unsafe { *slots.get().add(tid) = CachePadded::new(acc) };
        });
        partials
            .into_iter()
            .fold(identity, |a, slot| match slot.into_inner() {
                Some(p) => combine(a, p),
                None => a,
            })
    }

    /// The region engine behind every public entry point: fork, claim
    /// participation, watchdog-interleaved join, recovery, respawn.
    fn region(
        &self,
        job: &(dyn Fn(usize) + Sync),
        cancel: Option<&CancelToken>,
        deadline: Option<Instant>,
    ) -> Result<RegionReport, RegionError> {
        if self.region_active.swap(true, Ordering::Acquire) {
            // Another region is in flight on this pool: run the job
            // inline, serialized, preserving the per-tid contract.
            return self.inline_region(job, cancel, deadline);
        }
        let mut report = RegionReport::default();
        let _region_span = telemetry::span(Phase::Region, 0);
        self.health.regions.fetch_add(1, Ordering::Relaxed);
        report.respawned_workers += self.ensure_workers(false);
        // Erase the borrow: the closure lives on (or below) this frame
        // and the region cannot outlive this call because we block until
        // every tid's join slot reaches the region's epoch.
        let raw: RawJob = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), RawJob>(
                job as *const (dyn Fn(usize) + Sync),
            )
        };
        self.shared.panicked.store(false, Ordering::SeqCst);
        *lock(&self.shared.panic_detail) = None;
        unsafe { *self.shared.job.get() = Some(raw) };
        failpoint::hit("omprt.region.fork");
        telemetry::instant(EventKind::RegionFork, Phase::Region, 0, self.threads as u64);
        // Publish order: job slot, then the claim cursor (`SeqCst`), then
        // the gate wake-up. Only the coordinator bumps the gate, so the
        // next epoch is `current + 1`.
        let epoch = self.shared.gate.current() + 1;
        self.shared.claim.open(epoch);
        self.shared.gate.open_next();
        // Participate: claim and execute whatever tids no worker has
        // taken yet, instead of blocking while workers wake up.
        execute_claims(&self.shared, COORD, false);
        failpoint::hit("omprt.region.join");
        let masked = epoch & EPOCH_MASK;
        let mut lost: Vec<usize> = Vec::new();
        let mut stale_strikes = 0u32;
        let mut deadline_tripped = false;
        loop {
            if self.shared.join.wait_all_for(masked, WATCHDOG_TICK) {
                break;
            }
            if !deadline_tripped {
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        deadline_tripped = true;
                        if let Some(c) = cancel {
                            c.cancel();
                        }
                    }
                }
            }
            self.watchdog(masked, raw, &mut report, &mut lost, &mut stale_strikes);
        }
        // Clear the slot while the borrow is still alive (hygiene: the
        // pointer must never dangle into a dead frame).
        unsafe { *self.shared.job.get() = None };
        telemetry::instant(
            EventKind::RegionJoin,
            Phase::Region,
            0,
            u64::from(report.reclaimed_tids),
        );
        let panicked = self.shared.panicked.load(Ordering::SeqCst);
        let detail = lock(&self.shared.panic_detail).take();
        report.respawned_workers += self.ensure_workers(false);
        self.health
            .reclaimed_tids
            .fetch_add(u64::from(report.reclaimed_tids), Ordering::Relaxed);
        self.region_active.store(false, Ordering::Release);
        if let Some(&tid) = lost.first() {
            self.health.aborted_regions.fetch_add(1, Ordering::Relaxed);
            return Err(RegionError::WorkerLost { tid });
        }
        if panicked {
            self.health.job_panics.fetch_add(1, Ordering::Relaxed);
            return Err(RegionError::Panicked {
                detail: detail.unwrap_or_else(|| "unknown panic payload".into()),
            });
        }
        Ok(report)
    }

    /// The nested/concurrent fallback: every tid inline on this thread.
    fn inline_region(
        &self,
        job: &(dyn Fn(usize) + Sync),
        cancel: Option<&CancelToken>,
        deadline: Option<Instant>,
    ) -> Result<RegionReport, RegionError> {
        let mut first_panic: Option<String> = None;
        for tid in 0..self.threads {
            if let (Some(dl), Some(c)) = (deadline, cancel) {
                if Instant::now() >= dl {
                    c.cancel();
                }
            }
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| job(tid)));
            if let Err(p) = r {
                first_panic.get_or_insert_with(|| payload_detail(p.as_ref()));
            }
        }
        if let Some(detail) = first_panic {
            return Err(RegionError::Panicked { detail });
        }
        Ok(RegionReport::default())
    }

    /// Reaps dead worker threads and respawns replacements. Cheap
    /// (per-slot `is_finished` loads under an uncontended, coordinator-
    /// only mutex), but still gated: a full sweep runs when a death was
    /// observed (`suspect`), every 64th region, or when `force`d —
    /// so back-to-back microscopic regions pay one flag load.
    fn ensure_workers(&self, force: bool) -> u32 {
        let periodic = self.health.regions.load(Ordering::Relaxed) % 64 == 1;
        if !force && !periodic && !self.suspect.swap(false, Ordering::Relaxed) {
            return 0;
        }
        let mut respawned = 0;
        let mut workers = lock(&self.workers);
        for (w, slot) in workers.iter_mut().enumerate() {
            let dead = match slot {
                Some(h) => h.is_finished(),
                None => true,
            };
            if !dead {
                continue;
            }
            if let Some(h) = slot.take() {
                let _ = h.join(); // reap; a panicked worker is expected here
            }
            *slot = spawn_worker(&self.shared, w, respawned + 1);
            if slot.is_some() {
                respawned += 1;
            }
        }
        self.health
            .respawned_workers
            .fetch_add(u64::from(respawned), Ordering::Relaxed);
        respawned
    }

    /// One watchdog pass over an incomplete join: recover every tid a
    /// dead worker left behind. See the module docs for the policy.
    fn watchdog(
        &self,
        masked_epoch: u64,
        raw: RawJob,
        report: &mut RegionReport,
        lost: &mut Vec<usize>,
        stale_strikes: &mut u32,
    ) {
        let sh = &self.shared;
        // Which workers are dead right now? (Coordinator-only lock.)
        let dead: Vec<bool> = {
            let workers = lock(&self.workers);
            workers
                .iter()
                .map(|slot| slot.as_ref().is_none_or(JoinHandle::is_finished))
                .collect()
        };
        if !dead.iter().any(|&d| d) {
            return;
        }
        self.suspect.store(true, Ordering::Relaxed);
        let dead_count = dead.iter().filter(|&&d| d).count();
        telemetry::instant(EventKind::WatchdogScan, Phase::Region, 0, dead_count as u64);
        let claimed = sh.claim.claimed(masked_epoch, sh.threads);
        for tid in 0..sh.threads {
            if sh.join.is_marked(tid, masked_epoch) {
                continue;
            }
            let rec = sh.records[tid].load(Ordering::SeqCst);
            if !record_matches_epoch(rec, masked_epoch) {
                // Claimed (the coordinator drains the cursor before
                // joining, so every tid is) but never attributed: the
                // claimer died between its CAS and its record store, or
                // is nanoseconds away from storing. Give it a few ticks
                // before declaring the tid lost — never reclaim it, the
                // ambiguity means it may have started.
                if tid < claimed {
                    *stale_strikes += 1;
                    if *stale_strikes >= 3 && !lost.contains(&tid) {
                        lost.push(tid);
                        sh.join.mark(tid, masked_epoch);
                    }
                }
                continue;
            }
            let who = record_who(rec);
            if who == COORD || !dead.get(who as usize).copied().unwrap_or(false) {
                continue; // ours, or a live worker still executing
            }
            match record_state(rec) {
                REC_CLAIMED => {
                    // Dead before starting: the job has had no effect on
                    // this tid, so the coordinator reclaims it. The job
                    // pointer is valid — we are inside `region`'s frame.
                    sh.records[tid]
                        .store(record(masked_epoch, COORD, REC_STARTED), Ordering::SeqCst);
                    let r = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*raw)(tid) }));
                    if let Err(p) = r {
                        sh.note_panic(payload_detail(p.as_ref()));
                    }
                    sh.join.mark(tid, masked_epoch);
                    report.reclaimed_tids += 1;
                }
                _ => {
                    // Started and the executor died: exactly-once is
                    // unrecoverable. Force-complete the slot so the join
                    // terminates, and abort the region.
                    if !lost.contains(&tid) {
                        lost.push(tid);
                    }
                    sh.join.mark(tid, masked_epoch);
                }
            }
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>, w: usize, generation: u32) -> Option<JoinHandle<()>> {
    let sh = Arc::clone(shared);
    let name = if generation == 0 {
        format!("omprt-{w}")
    } else {
        format!("omprt-{w}-r{generation}")
    };
    std::thread::Builder::new()
        .name(name)
        .spawn(move || worker_loop(sh, w))
        .ok()
}

/// One worker's share of a scheduled loop: claims ranges according to
/// `sched` and feeds them to `on_range` until the space is exhausted,
/// `on_range` returns `false`, or the cancel token trips. All three
/// schedules go through here, so `parallel_for` and
/// `parallel_for_reduce` have identical scheduling behaviour by
/// construction.
fn drive(
    sched: Schedule,
    n: usize,
    threads: usize,
    tid: usize,
    cursor: &AtomicUsize,
    cancel: Option<&CancelToken>,
    mut on_range: impl FnMut(usize, usize) -> bool,
) {
    let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    match sched {
        Schedule::Static { chunk } => {
            for (s, e) in static_chunks(n, threads, chunk, tid) {
                if cancelled() || !on_range(s, e) {
                    return;
                }
            }
        }
        Schedule::Dynamic { chunk } => {
            // Batched claiming: one fetch_add grabs up to 64 chunks so
            // `chunk: 1` no longer serializes the team on one RMW per
            // iteration.
            let claim = dynamic_batch(n, threads, chunk);
            loop {
                if cancelled() {
                    return;
                }
                let s = cursor.fetch_add(claim, Ordering::Relaxed);
                if s >= n {
                    return;
                }
                if !on_range(s, (s + claim).min(n)) {
                    return;
                }
            }
        }
        Schedule::Guided { min_chunk } => loop {
            if cancelled() {
                return;
            }
            let s = cursor.load(Ordering::Relaxed);
            if s >= n {
                return;
            }
            let c = guided_claim(n - s, threads, min_chunk);
            if cursor
                .compare_exchange(s, s + c, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            if !on_range(s, s + c) {
                return;
            }
        },
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.gate.open_next();
        let mut workers = lock(&self.workers);
        for w in workers.drain(..).flatten() {
            let _ = w.join();
        }
    }
}

/// Renders a panic payload for [`RegionError::Panicked`], keeping
/// injected-failpoint panics identifiable by their site name.
fn payload_detail(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(inj) = p.downcast_ref::<failpoint::InjectedPanic>() {
        return inj.to_string();
    }
    if let Some(s) = p.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = p.downcast_ref::<String>() {
        return s.clone();
    }
    "non-string panic payload".to_string()
}

/// Locks a mutex, ignoring poisoning (every guarded value here is
/// recovery metadata that stays consistent across an unwinding writer).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Claims and executes tids until the current region's cursor is
/// exhausted. Run by workers after each gate release *and* by the
/// coordinator between fork and join.
///
/// A successful claim pins the region open: `region` cannot pass its
/// join (and therefore cannot clear or rewrite the job slot) until the
/// claimed tid's latch slot reaches the region's epoch, which happens
/// only in the `mark` below — so the pointer read between claim and
/// mark can never dangle or observe a torn rewrite.
fn execute_claims(sh: &Shared, who: u16, is_worker: bool) {
    while let Some((epoch, tid)) = sh.claim.try_claim(sh.threads) {
        sh.records[tid].store(record(epoch, who, REC_CLAIMED), Ordering::SeqCst);
        telemetry::instant(EventKind::ClaimBatch, Phase::Claim, 0, tid as u64);
        if is_worker {
            // Worker-death window (claimed, not yet started): an
            // injected panic here escapes `worker_loop`, kills the
            // thread, and exercises the watchdog's reclaim path.
            failpoint::hit("omprt.worker.claim");
        }
        sh.records[tid].store(record(epoch, who, REC_STARTED), Ordering::SeqCst);
        if is_worker {
            // Worker-death window (started): an injected panic here kills
            // the thread after the tid is attributed as running, so the
            // watchdog cannot reclaim it — this exercises the clean-abort
            // (`RegionError::WorkerLost`) path instead.
            failpoint::hit("omprt.worker.job");
        }
        // SAFETY: claim-pinned as described above; the `SeqCst` CAS that
        // won the claim observed the cursor open, which the coordinator
        // stored after writing the slot.
        let Some(job) = (unsafe { *sh.job.get() }) else {
            // Defensive: a claimable region always carries a job. Were
            // the slot ever empty, completing the tid (instead of
            // unwinding) keeps the join from hanging.
            sh.join.mark(tid, epoch);
            continue;
        };
        // SAFETY: the pointee lives on the coordinator's `region` frame,
        // which is blocked until our mark.
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*job)(tid) }));
        if let Err(p) = r {
            sh.note_panic(payload_detail(p.as_ref()));
        }
        if is_worker {
            sh.beats[who as usize].fetch_add(1, Ordering::Relaxed);
        }
        sh.join.mark(tid, epoch);
    }
}

fn worker_loop(sh: Arc<Shared>, w: usize) {
    let mut seen = 0u64;
    loop {
        seen = sh.gate.wait_past(seen);
        sh.beats[w].fetch_add(1, Ordering::Relaxed);
        if sh.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Idle-death window (no claim held): an injected panic here
        // kills the worker without stranding any tid; the periodic sweep
        // respawns it.
        failpoint::hit("omprt.worker.wake");
        // The claim may already be drained (the coordinator absorbs tids
        // while workers wake), in which case this is a no-op and we go
        // straight back to waiting.
        execute_claims(&sh, w as u16, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    fn all_schedules() -> Vec<Schedule> {
        vec![
            Schedule::static_default(),
            Schedule::Static { chunk: Some(3) },
            Schedule::dynamic_default(),
            Schedule::Dynamic { chunk: 8 },
            Schedule::Guided { min_chunk: 2 },
        ]
    }

    #[test]
    fn every_iteration_exactly_once() {
        let pool = ThreadPool::new(4);
        for sched in all_schedules() {
            for n in [0usize, 1, 17, 256] {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                pool.parallel_for(n, sched, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "{sched} n={n}"
                );
            }
        }
    }

    #[test]
    fn reduction_matches_serial() {
        let pool = ThreadPool::new(3);
        let n = 1000usize;
        for sched in all_schedules() {
            let sum = pool.parallel_for_reduce(n, sched, 0u64, |a, i| a + i as u64, |a, b| a + b);
            assert_eq!(sum, (n as u64 - 1) * n as u64 / 2, "{sched}");
        }
    }

    #[test]
    fn pool_reusable_across_regions() {
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.parallel_for(10, Schedule::dynamic_default(), |i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 45);
    }

    #[test]
    fn run_gives_each_thread_its_id() {
        let pool = ThreadPool::new(4);
        let seen: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|tid| {
            seen[tid].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let mut out = vec![0u32; 8];
        let ptr = crate::sendptr::SendPtr::new(out.as_mut_ptr());
        pool.parallel_for(8, Schedule::static_default(), |i| unsafe {
            *ptr.get().add(i) = i as u32;
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    /// `parallel_for` and `parallel_for_reduce` share `drive`, so their
    /// schedule behaviour is identical by construction; this pins the
    /// guided path specifically (it used to silently degrade to
    /// `Dynamic { chunk: min_chunk }` in the reduce).
    #[test]
    fn reduce_and_for_share_guided_claims() {
        // Single worker: the claim sequence is deterministic. Record the
        // ranges `drive` hands out and check they shrink geometrically.
        let n = 1024usize;
        let cursor = AtomicUsize::new(0);
        let mut ranges = Vec::new();
        drive(
            Schedule::Guided { min_chunk: 2 },
            n,
            4,
            0,
            &cursor,
            None,
            |s, e| {
                ranges.push((s, e));
                true
            },
        );
        assert!(ranges.len() > 4, "guided must issue many shrinking claims");
        let first = ranges[0].1 - ranges[0].0;
        assert_eq!(first, guided_claim(n, 4, 2), "first claim is remaining/2t");
        assert!(first > 2, "first claim is far above min_chunk");
        let mut last = usize::MAX;
        let mut covered = 0;
        for &(s, e) in &ranges {
            assert_eq!(s, covered, "claims are contiguous");
            assert!(e - s <= last);
            last = e - s;
            covered = e;
        }
        assert_eq!(covered, n);
        // And the public reduce over guided still folds every index once.
        let pool = ThreadPool::new(4);
        let sum = pool.parallel_for_reduce(
            n,
            Schedule::Guided { min_chunk: 2 },
            0u64,
            |a, i| a + i as u64,
            |a, b| a + b,
        );
        assert_eq!(sum, (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn dynamic_batching_still_covers_exactly_once() {
        // Large n with chunk 1 exercises the batched-claim path.
        let pool = ThreadPool::new(4);
        let n = 100_000usize;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, Schedule::dynamic_default(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn try_run_reports_job_panics_as_values() {
        let pool = ThreadPool::new(2);
        let err = pool
            .try_run(|tid| {
                if tid == 1 {
                    panic!("kaboom {tid}");
                }
            })
            .expect_err("must report the panic");
        match err {
            RegionError::Panicked { detail } => assert!(detail.contains("kaboom"), "{detail}"),
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(pool.health().job_panics, 1);
        // Still healthy afterwards.
        assert!(pool.try_run(|_| {}).is_ok());
    }

    #[test]
    fn deadline_cancels_cooperative_loops() {
        let pool = ThreadPool::new(2);
        let cancel = CancelToken::new();
        let done = AtomicUsize::new(0);
        let err = pool.parallel_for_deadline(
            1_000_000,
            Schedule::Dynamic { chunk: 1 },
            &cancel,
            Duration::from_millis(5),
            |_| {
                done.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(50));
            },
        );
        assert_eq!(err, Err(RegionError::DeadlineExceeded));
        assert!(cancel.is_cancelled());
        let ran = done.load(Ordering::Relaxed);
        assert!(ran > 0, "some iterations ran before the trip");
        assert!(ran < 1_000_000, "the deadline pruned the space");
        assert_eq!(pool.health().deadline_cancels, 1);
    }

    #[test]
    fn generous_deadline_is_not_an_error() {
        let pool = ThreadPool::new(2);
        let cancel = CancelToken::new();
        let r = pool.parallel_for_deadline(
            100,
            Schedule::static_default(),
            &cancel,
            Duration::from_secs(60),
            |_| {},
        );
        assert!(r.is_ok(), "{r:?}");
        assert!(!cancel.is_cancelled());
    }

    #[test]
    fn claim_records_round_trip() {
        for (epoch, who, state) in [
            (0u64, 0u16, REC_CLAIMED),
            (7, 3, REC_STARTED),
            (EPOCH_MASK, COORD, REC_STARTED),
            ((1 << 46) - 1, 65_000, REC_CLAIMED),
        ] {
            let r = record(epoch, who, state);
            assert!(record_matches_epoch(r, epoch));
            assert_eq!(record_who(r), who);
            assert_eq!(record_state(r), state);
        }
        assert!(!record_matches_epoch(record(5, 1, REC_CLAIMED), 6));
    }
}
