//! A persistent worker thread pool with OpenMP-style `parallel for`.
//!
//! Workers are spawned once and parked between parallel regions; each
//! region broadcasts one job to all workers and waits on a completion
//! latch — the fork-join pattern of an OpenMP runtime, with the fork-join
//! cost being a real, measurable quantity (see [`crate::sim`] for the
//! calibrated model used by the figure harnesses).

use crate::schedule::{static_chunks, Schedule};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Locks a mutex, ignoring poisoning: workers only panic if a user job
/// panics, and the pool's state (plain counters) stays consistent anyway.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

type Job = Arc<dyn Fn(usize) + Send + Sync>;

struct Shared {
    /// Monotonic epoch; bumping it wakes the workers with a new job.
    epoch: Mutex<u64>,
    job: Mutex<Option<Job>>,
    wake: Condvar,
    done: Mutex<usize>,
    done_cv: Condvar,
    shutdown: Mutex<bool>,
}

/// A fixed-size team of worker threads executing fork-join parallel
/// regions.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (the calling thread is not
    /// part of the team; it coordinates).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            epoch: Mutex::new(0),
            job: Mutex::new(None),
            wake: Condvar::new(),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            shutdown: Mutex::new(false),
        });
        let workers = (0..threads)
            .map(|tid| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("omprt-{tid}"))
                    .spawn(move || worker_loop(tid, sh))
                    .expect("spawn worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(tid)` on every worker and waits for all to finish —
    /// one fork-join region.
    pub fn run<F>(&self, job: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        // SAFETY-free broadcast: we erase the lifetime by boxing a clone of
        // the closure behind Arc; the region cannot outlive this call
        // because we block until every worker reports completion.
        let job: Arc<dyn Fn(usize) + Send + Sync> = unsafe {
            std::mem::transmute::<
                Arc<dyn Fn(usize) + Send + Sync + '_>,
                Arc<dyn Fn(usize) + Send + Sync + 'static>,
            >(Arc::new(job))
        };
        {
            let mut j = lock(&self.shared.job);
            *j = Some(job);
            let mut d = lock(&self.shared.done);
            *d = 0;
            let mut e = lock(&self.shared.epoch);
            *e += 1;
        }
        self.shared.wake.notify_all();
        let mut d = lock(&self.shared.done);
        while *d < self.threads {
            d = self
                .shared
                .done_cv
                .wait(d)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(d);
        // Workers have dropped their clones (they drop the job before
        // reporting done); clearing the broadcast slot drops the closure
        // while its borrows are still alive.
        *lock(&self.shared.job) = None;
    }

    /// OpenMP-style `parallel for` over `0..n` with the given schedule.
    pub fn parallel_for<F>(&self, n: usize, sched: Schedule, body: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        let next = AtomicUsize::new(0);
        let threads = self.threads;
        self.run(|tid| match sched {
            Schedule::Static { chunk } => {
                for (s, e) in static_chunks(n, threads, chunk, tid) {
                    for i in s..e {
                        body(i);
                    }
                }
            }
            Schedule::Dynamic { chunk } => {
                let c = chunk.max(1);
                loop {
                    let s = next.fetch_add(c, Ordering::Relaxed);
                    if s >= n {
                        break;
                    }
                    for i in s..(s + c).min(n) {
                        body(i);
                    }
                }
            }
            Schedule::Guided { min_chunk } => {
                let min = min_chunk.max(1);
                loop {
                    let s = next.load(Ordering::Relaxed);
                    if s >= n {
                        break;
                    }
                    let remaining = n - s;
                    let c = (remaining / (2 * threads)).max(min).min(remaining);
                    if next
                        .compare_exchange(s, s + c, Ordering::Relaxed, Ordering::Relaxed)
                        .is_err()
                    {
                        continue;
                    }
                    for i in s..s + c {
                        body(i);
                    }
                }
            }
        });
    }

    /// `parallel for` with a `+`-style reduction: each thread folds its
    /// iterations locally with `fold`, partials are combined with
    /// `combine`.
    pub fn parallel_for_reduce<T, F, C>(
        &self,
        n: usize,
        sched: Schedule,
        identity: T,
        fold: F,
        combine: C,
    ) -> T
    where
        T: Clone + Send + Sync,
        F: Fn(T, usize) -> T + Send + Sync,
        C: Fn(T, T) -> T,
    {
        let partials: Vec<Mutex<T>> = (0..self.threads)
            .map(|_| Mutex::new(identity.clone()))
            .collect();
        let next = AtomicUsize::new(0);
        let threads = self.threads;
        self.run(|tid| {
            let mut acc = identity.clone();
            match sched {
                Schedule::Static { chunk } => {
                    for (s, e) in static_chunks(n, threads, chunk, tid) {
                        for i in s..e {
                            acc = fold(acc, i);
                        }
                    }
                }
                Schedule::Dynamic { chunk } | Schedule::Guided { min_chunk: chunk } => {
                    let c = chunk.max(1);
                    loop {
                        let s = next.fetch_add(c, Ordering::Relaxed);
                        if s >= n {
                            break;
                        }
                        for i in s..(s + c).min(n) {
                            acc = fold(acc, i);
                        }
                    }
                }
            }
            *lock(&partials[tid]) = acc;
        });
        partials.into_iter().fold(identity, |a, m| {
            combine(a, m.into_inner().unwrap_or_else(|e| e.into_inner()))
        })
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut s = lock(&self.shared.shutdown);
            *s = true;
            let mut e = lock(&self.shared.epoch);
            *e += 1;
        }
        self.shared.wake.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(tid: usize, sh: Arc<Shared>) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut e = lock(&sh.epoch);
            while *e == seen {
                e = sh.wake.wait(e).unwrap_or_else(|p| p.into_inner());
            }
            seen = *e;
            if *lock(&sh.shutdown) {
                return;
            }
            lock(&sh.job).clone()
        };
        if let Some(job) = job {
            job(tid);
        }
        let mut d = lock(&sh.done);
        *d += 1;
        sh.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    fn all_schedules() -> Vec<Schedule> {
        vec![
            Schedule::static_default(),
            Schedule::Static { chunk: Some(3) },
            Schedule::dynamic_default(),
            Schedule::Dynamic { chunk: 8 },
            Schedule::Guided { min_chunk: 2 },
        ]
    }

    #[test]
    fn every_iteration_exactly_once() {
        let pool = ThreadPool::new(4);
        for sched in all_schedules() {
            for n in [0usize, 1, 17, 256] {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                pool.parallel_for(n, sched, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "{sched} n={n}"
                );
            }
        }
    }

    #[test]
    fn reduction_matches_serial() {
        let pool = ThreadPool::new(3);
        let n = 1000usize;
        for sched in all_schedules() {
            let sum = pool.parallel_for_reduce(n, sched, 0u64, |a, i| a + i as u64, |a, b| a + b);
            assert_eq!(sum, (n as u64 - 1) * n as u64 / 2, "{sched}");
        }
    }

    #[test]
    fn pool_reusable_across_regions() {
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.parallel_for(10, Schedule::dynamic_default(), |i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 45);
    }

    #[test]
    fn run_gives_each_thread_its_id() {
        let pool = ThreadPool::new(4);
        let seen: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|tid| {
            seen[tid].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let mut out = vec![0u32; 8];
        let ptr = crate::sendptr::SendPtr::new(out.as_mut_ptr());
        pool.parallel_for(8, Schedule::static_default(), |i| unsafe {
            *ptr.get().add(i) = i as u32;
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }
}
