//! A persistent worker thread pool with OpenMP-style `parallel for`.
//!
//! Workers are spawned once and wait between parallel regions on a
//! lock-free [`EpochGate`]; a region is one epoch. The fork-join hot
//! path takes no locks:
//!
//! * **fork** — the coordinator writes the job as a *single erased
//!   pointer* into a plain slot (no per-worker `Arc` clones, no job
//!   mutex), opens the [`ClaimCursor`] for the new epoch, and bumps the
//!   gate; the cursor's `SeqCst` transition publishes the slot;
//! * **execute** — every team member, *the coordinating caller
//!   included*, claims tids from the cursor with one CAS each and calls
//!   the borrowed closure directly through the pointer. The coordinator
//!   claims whatever tids no worker has taken yet: on an oversubscribed
//!   machine (or a 1-thread pool) it absorbs the whole region with zero
//!   context switches, while on a multicore machine the spinning workers
//!   win the claims and the region runs in parallel — fork-join overhead
//!   adapts to what the hardware can actually overlap;
//! * **join** — whoever executed a tid stores the finished epoch into
//!   that tid's cache-line-padded [`JoinLatch`] slot; the coordinator
//!   scans the slots, and only the region's last completion wakes a
//!   parked coordinator.
//!
//! All waits are spin-then-park ([`crate::barrier`]): bounded spinning
//! keeps back-to-back regions syscall-free, parking keeps an idle pool
//! off the CPU. Measured fork-join latency versus the retained
//! mutex/condvar design ([`crate::legacy`]) is reported by the
//! `forkjoin_calibrate` binary and committed in `BENCH_forkjoin.json`.
//!
//! Because tids may execute on fewer OS threads than `threads()`, jobs
//! must not synchronize *between* tids (no intra-region barriers) — the
//! same restriction the rest of this crate's `parallel for` API already
//! satisfies by construction.
//!
//! **Nested/concurrent regions.** A `run` (or `parallel_for`) issued
//! while another region is active on the same pool — from inside a
//! worker's job or from a second coordinating thread — degrades to
//! inline serial execution of the job on the calling thread (`job(tid)`
//! for every tid), preserving the exactly-once iteration contract. This
//! mirrors OpenMP's behaviour with nested parallelism disabled.
//!
//! **Panics.** A panicking job no longer deadlocks the pool: the worker
//! catches the unwind, reports completion, and the coordinator re-raises
//! a panic after the join. The pool stays usable afterwards.

use crate::barrier::{CachePadded, ClaimCursor, EpochGate, JoinLatch, EPOCH_MASK};
use crate::cancel::CancelToken;
use crate::schedule::{dynamic_batch, guided_claim, static_chunks, Schedule};
use crate::sendptr::SendPtr;
use std::cell::UnsafeCell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The erased fork-join job: a pointer to a closure borrowed for the
/// duration of exactly one region.
type RawJob = *const (dyn Fn(usize) + Sync);

struct Shared {
    /// Job slot for the current region. Written by the coordinator
    /// *before* opening the claim cursor and read only between a
    /// successful claim and that claim's join mark, so the cursor's
    /// `SeqCst` transition orders every access (see `execute_claims`).
    job: UnsafeCell<Option<RawJob>>,
    gate: EpochGate,
    claim: ClaimCursor,
    join: JoinLatch,
    /// Team size; a claim word's tid field is 16 bits, so this is capped
    /// at 65535 in `ThreadPool::new`.
    threads: usize,
    shutdown: AtomicBool,
    /// Some claimed tid's job panicked during the current region.
    panicked: AtomicBool,
}

// SAFETY: `job` is written only by the single coordinator while no
// region is open (the cursor is exhausted and every claimed tid is
// marked, so no thread can reach the slot) and read only under a live
// claim; the `SeqCst` claim-open / CAS pair orders the write before
// every read.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// A fixed-size team of worker threads executing fork-join parallel
/// regions.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Guards against nested/concurrent `run` on the same pool.
    region_active: AtomicBool,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (the calling thread is not
    /// part of the team; it coordinates).
    pub fn new(threads: usize) -> ThreadPool {
        // tid must fit the claim word's 16-bit field.
        let threads = threads.clamp(1, 65_535);
        let shared = Arc::new(Shared {
            job: UnsafeCell::new(None),
            gate: EpochGate::new(),
            claim: ClaimCursor::new(),
            join: JoinLatch::new(threads),
            threads,
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|w| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("omprt-{w}"))
                    .spawn(move || worker_loop(sh))
                    .expect("spawn worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
            region_active: AtomicBool::new(false),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(tid)` on every worker and waits for all to finish —
    /// one fork-join region. Nested or concurrent calls degrade to
    /// inline serial execution (see the module docs).
    pub fn run<F>(&self, job: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if self.region_active.swap(true, Ordering::Acquire) {
            // Another region is in flight on this pool: run the job
            // inline, serialized, preserving the per-tid contract.
            for tid in 0..self.threads {
                job(tid);
            }
            return;
        }
        // Erase the borrow: the closure lives on this frame and the
        // region cannot outlive this call because we block until every
        // worker's join slot reaches the region's epoch.
        let obj: &(dyn Fn(usize) + Sync) = &job;
        let raw: RawJob =
            unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), RawJob>(obj) };
        self.shared.panicked.store(false, Ordering::Relaxed);
        unsafe { *self.shared.job.get() = Some(raw) };
        // Publish order: job slot, then the claim cursor (`SeqCst`), then
        // the gate wake-up. Only the coordinator bumps the gate, so the
        // next epoch is `current + 1`.
        let epoch = self.shared.gate.current() + 1;
        self.shared.claim.open(epoch);
        self.shared.gate.open_next();
        // Participate: claim and execute whatever tids no worker has
        // taken yet, instead of blocking while workers wake up.
        execute_claims(&self.shared);
        self.shared.join.wait_all(epoch & EPOCH_MASK);
        // Clear the slot while the borrow is still alive (hygiene: the
        // pointer must never dangle into a dead frame).
        unsafe { *self.shared.job.get() = None };
        let panicked = self.shared.panicked.load(Ordering::Relaxed);
        self.region_active.store(false, Ordering::Release);
        if panicked {
            panic!("omprt: a worker's job panicked inside a parallel region");
        }
    }

    /// OpenMP-style `parallel for` over `0..n` with the given schedule.
    pub fn parallel_for<F>(&self, n: usize, sched: Schedule, body: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        self.parallel_for_impl(n, sched, None, &body);
    }

    /// [`ThreadPool::parallel_for`] with cooperative cancellation: once
    /// any thread calls `cancel.cancel()` (typically from inside `body`),
    /// no further iteration starts on any thread. Iterations already in
    /// flight finish; every executed iteration runs at most once.
    pub fn parallel_for_cancel<F>(&self, n: usize, sched: Schedule, cancel: &CancelToken, body: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        self.parallel_for_impl(n, sched, Some(cancel), &body);
    }

    fn parallel_for_impl<F>(
        &self,
        n: usize,
        sched: Schedule,
        cancel: Option<&CancelToken>,
        body: &F,
    ) where
        F: Fn(usize) + Send + Sync,
    {
        // Padded so the shared cursor never false-shares with the
        // coordinator's stack around it.
        let cursor = CachePadded::new(AtomicUsize::new(0));
        let threads = self.threads;
        self.run(|tid| {
            drive(sched, n, threads, tid, &cursor, cancel, |s, e| {
                for i in s..e {
                    if cancel.is_some_and(CancelToken::is_cancelled) {
                        return false;
                    }
                    body(i);
                }
                true
            });
        });
    }

    /// `parallel for` with a `+`-style reduction: each thread folds its
    /// iterations locally with `fold` into a cache-line-padded private
    /// slot (no locks anywhere), and partials are combined with
    /// `combine` in tid order after the join.
    pub fn parallel_for_reduce<T, F, C>(
        &self,
        n: usize,
        sched: Schedule,
        identity: T,
        fold: F,
        combine: C,
    ) -> T
    where
        T: Clone + Send + Sync,
        F: Fn(T, usize) -> T + Send + Sync,
        C: Fn(T, T) -> T,
    {
        let mut partials: Vec<CachePadded<Option<T>>> =
            (0..self.threads).map(|_| CachePadded::new(None)).collect();
        let slots = SendPtr::new(partials.as_mut_ptr());
        let cursor = CachePadded::new(AtomicUsize::new(0));
        let threads = self.threads;
        self.run(|tid| {
            let mut acc = Some(identity.clone());
            drive(sched, n, threads, tid, &cursor, None, |s, e| {
                for i in s..e {
                    acc = Some(fold(acc.take().expect("accumulator present"), i));
                }
                true
            });
            // SAFETY: slot `tid` is written by exactly one worker (and by
            // the inline-serial fallback strictly sequentially), and the
            // coordinator reads only after the region's join.
            unsafe { *slots.get().add(tid) = CachePadded::new(acc) };
        });
        partials
            .into_iter()
            .fold(identity, |a, slot| match slot.into_inner() {
                Some(p) => combine(a, p),
                None => a,
            })
    }
}

/// One worker's share of a scheduled loop: claims ranges according to
/// `sched` and feeds them to `on_range` until the space is exhausted,
/// `on_range` returns `false`, or the cancel token trips. All three
/// schedules go through here, so `parallel_for` and
/// `parallel_for_reduce` have identical scheduling behaviour by
/// construction.
fn drive(
    sched: Schedule,
    n: usize,
    threads: usize,
    tid: usize,
    cursor: &AtomicUsize,
    cancel: Option<&CancelToken>,
    mut on_range: impl FnMut(usize, usize) -> bool,
) {
    let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    match sched {
        Schedule::Static { chunk } => {
            for (s, e) in static_chunks(n, threads, chunk, tid) {
                if cancelled() || !on_range(s, e) {
                    return;
                }
            }
        }
        Schedule::Dynamic { chunk } => {
            // Batched claiming: one fetch_add grabs up to 64 chunks so
            // `chunk: 1` no longer serializes the team on one RMW per
            // iteration.
            let claim = dynamic_batch(n, threads, chunk);
            loop {
                if cancelled() {
                    return;
                }
                let s = cursor.fetch_add(claim, Ordering::Relaxed);
                if s >= n {
                    return;
                }
                if !on_range(s, (s + claim).min(n)) {
                    return;
                }
            }
        }
        Schedule::Guided { min_chunk } => loop {
            if cancelled() {
                return;
            }
            let s = cursor.load(Ordering::Relaxed);
            if s >= n {
                return;
            }
            let c = guided_claim(n - s, threads, min_chunk);
            if cursor
                .compare_exchange(s, s + c, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            if !on_range(s, s + c) {
                return;
            }
        },
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.gate.open_next();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Claims and executes tids until the current region's cursor is
/// exhausted. Run by workers after each gate release *and* by the
/// coordinator between fork and join.
///
/// A successful claim pins the region open: `run` cannot pass its join
/// (and therefore cannot clear or rewrite the job slot) until the
/// claimed tid's latch slot reaches the region's epoch, which happens
/// only in the `mark` below — so the pointer read between claim and
/// mark can never dangle or observe a torn rewrite.
fn execute_claims(sh: &Shared) {
    while let Some((epoch, tid)) = sh.claim.try_claim(sh.threads) {
        // SAFETY: claim-pinned as described above; the `SeqCst` CAS that
        // won the claim observed the cursor open, which the coordinator
        // stored after writing the slot.
        let job = unsafe { (*sh.job.get()).expect("claimable region has a job") };
        // SAFETY: the pointee lives on the coordinator's `run` frame,
        // which is blocked until our mark.
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*job)(tid) }));
        if r.is_err() {
            sh.panicked.store(true, Ordering::Relaxed);
        }
        sh.join.mark(tid, epoch);
    }
}

fn worker_loop(sh: Arc<Shared>) {
    let mut seen = 0u64;
    loop {
        seen = sh.gate.wait_past(seen);
        if sh.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // The claim may already be drained (the coordinator absorbs tids
        // while workers wake), in which case this is a no-op and we go
        // straight back to waiting.
        execute_claims(&sh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    fn all_schedules() -> Vec<Schedule> {
        vec![
            Schedule::static_default(),
            Schedule::Static { chunk: Some(3) },
            Schedule::dynamic_default(),
            Schedule::Dynamic { chunk: 8 },
            Schedule::Guided { min_chunk: 2 },
        ]
    }

    #[test]
    fn every_iteration_exactly_once() {
        let pool = ThreadPool::new(4);
        for sched in all_schedules() {
            for n in [0usize, 1, 17, 256] {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                pool.parallel_for(n, sched, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "{sched} n={n}"
                );
            }
        }
    }

    #[test]
    fn reduction_matches_serial() {
        let pool = ThreadPool::new(3);
        let n = 1000usize;
        for sched in all_schedules() {
            let sum = pool.parallel_for_reduce(n, sched, 0u64, |a, i| a + i as u64, |a, b| a + b);
            assert_eq!(sum, (n as u64 - 1) * n as u64 / 2, "{sched}");
        }
    }

    #[test]
    fn pool_reusable_across_regions() {
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.parallel_for(10, Schedule::dynamic_default(), |i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 45);
    }

    #[test]
    fn run_gives_each_thread_its_id() {
        let pool = ThreadPool::new(4);
        let seen: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|tid| {
            seen[tid].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let mut out = vec![0u32; 8];
        let ptr = crate::sendptr::SendPtr::new(out.as_mut_ptr());
        pool.parallel_for(8, Schedule::static_default(), |i| unsafe {
            *ptr.get().add(i) = i as u32;
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    /// `parallel_for` and `parallel_for_reduce` share `drive`, so their
    /// schedule behaviour is identical by construction; this pins the
    /// guided path specifically (it used to silently degrade to
    /// `Dynamic { chunk: min_chunk }` in the reduce).
    #[test]
    fn reduce_and_for_share_guided_claims() {
        // Single worker: the claim sequence is deterministic. Record the
        // ranges `drive` hands out and check they shrink geometrically.
        let n = 1024usize;
        let cursor = AtomicUsize::new(0);
        let mut ranges = Vec::new();
        drive(
            Schedule::Guided { min_chunk: 2 },
            n,
            4,
            0,
            &cursor,
            None,
            |s, e| {
                ranges.push((s, e));
                true
            },
        );
        assert!(ranges.len() > 4, "guided must issue many shrinking claims");
        let first = ranges[0].1 - ranges[0].0;
        assert_eq!(first, guided_claim(n, 4, 2), "first claim is remaining/2t");
        assert!(first > 2, "first claim is far above min_chunk");
        let mut last = usize::MAX;
        let mut covered = 0;
        for &(s, e) in &ranges {
            assert_eq!(s, covered, "claims are contiguous");
            assert!(e - s <= last);
            last = e - s;
            covered = e;
        }
        assert_eq!(covered, n);
        // And the public reduce over guided still folds every index once.
        let pool = ThreadPool::new(4);
        let sum = pool.parallel_for_reduce(
            n,
            Schedule::Guided { min_chunk: 2 },
            0u64,
            |a, i| a + i as u64,
            |a, b| a + b,
        );
        assert_eq!(sum, (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn dynamic_batching_still_covers_exactly_once() {
        // Large n with chunk 1 exercises the batched-claim path.
        let pool = ThreadPool::new(4);
        let n = 100_000usize;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, Schedule::dynamic_default(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
