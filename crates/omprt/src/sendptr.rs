//! A `Send + Sync` raw-pointer wrapper for provably disjoint writes.
//!
//! OpenMP C programs freely write shared arrays from multiple threads;
//! correctness rests on the compiler's (or programmer's) proof that
//! iterations touch disjoint elements — exactly the property the paper's
//! analysis establishes (injectivity of the subscript array). This wrapper
//! is the Rust-side expression of that contract: it unlocks raw-pointer
//! writes across the team, and every use site must argue disjointness.

/// A raw pointer assertable as `Send + Sync`.
///
/// # Safety contract
///
/// Creating a `SendPtr` is safe; *dereferencing* [`SendPtr::get`]'s result
/// is `unsafe` and requires that concurrent accesses through the pointer
/// are data-race free (distinct iterations write distinct elements).
#[derive(Clone, Copy, Debug)]
pub struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wraps a raw pointer.
    pub fn new(p: *mut T) -> SendPtr<T> {
        SendPtr(p)
    }

    /// The wrapped pointer.
    pub fn get(&self) -> *mut T {
        self.0
    }

    /// A new `SendPtr` offset by `count` elements.
    ///
    /// # Safety
    ///
    /// Same contract as [`pointer::add`]: the offset pointer must stay
    /// inside (or one past) the allocation the base points into.
    pub unsafe fn add(&self, count: usize) -> SendPtr<T> {
        SendPtr(self.0.add(count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut v = [1, 2, 3];
        let p = SendPtr::new(v.as_mut_ptr());
        unsafe {
            *p.get().add(1) = 9;
            *p.add(2).get() = 8;
        }
        assert_eq!(v, [1, 9, 8]);
    }
}
