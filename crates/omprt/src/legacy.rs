//! The original mutex/condvar fork-join pool, retained as the A/B
//! baseline for `forkjoin_calibrate`.
//!
//! This is the pre-rearchitecture broadcast design: three mutexes
//! (epoch, job slot, done counter), a condvar broadcast to wake the
//! team, and one `Arc` clone of the job per worker per region. Keeping
//! it compilable lets the calibration binary measure the lock-free
//! pool's fork-join latency *against the design it replaced on the same
//! machine*, so the improvement claim in `BENCH_forkjoin.json` is
//! reproducible rather than historical. Not for production use — new
//! code should use [`crate::ThreadPool`].

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

type Job = Arc<dyn Fn(usize) + Send + Sync>;

struct Shared {
    epoch: Mutex<u64>,
    job: Mutex<Option<Job>>,
    wake: Condvar,
    done: Mutex<usize>,
    done_cv: Condvar,
    shutdown: Mutex<bool>,
}

/// The pre-change mutex/condvar pool (fork-join baseline).
pub struct LegacyMutexPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl LegacyMutexPool {
    /// Spawns a pool with `threads` workers.
    pub fn new(threads: usize) -> LegacyMutexPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            epoch: Mutex::new(0),
            job: Mutex::new(None),
            wake: Condvar::new(),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            shutdown: Mutex::new(false),
        });
        let workers = (0..threads)
            .map(|tid| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("omprt-legacy-{tid}"))
                    .spawn(move || worker_loop(tid, sh))
                    .expect("spawn worker")
            })
            .collect();
        LegacyMutexPool {
            shared,
            workers,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(tid)` on every worker and waits — one fork-join region
    /// through the mutex/condvar broadcast path.
    pub fn run<F>(&self, job: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        let job: Arc<dyn Fn(usize) + Send + Sync> = unsafe {
            std::mem::transmute::<
                Arc<dyn Fn(usize) + Send + Sync + '_>,
                Arc<dyn Fn(usize) + Send + Sync + 'static>,
            >(Arc::new(job))
        };
        {
            let mut j = lock(&self.shared.job);
            *j = Some(job);
            let mut d = lock(&self.shared.done);
            *d = 0;
            let mut e = lock(&self.shared.epoch);
            *e += 1;
        }
        self.shared.wake.notify_all();
        let mut d = lock(&self.shared.done);
        while *d < self.threads {
            d = self
                .shared
                .done_cv
                .wait(d)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(d);
        *lock(&self.shared.job) = None;
    }
}

impl Drop for LegacyMutexPool {
    fn drop(&mut self) {
        {
            let mut s = lock(&self.shared.shutdown);
            *s = true;
            let mut e = lock(&self.shared.epoch);
            *e += 1;
        }
        self.shared.wake.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(tid: usize, sh: Arc<Shared>) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut e = lock(&sh.epoch);
            while *e == seen {
                e = sh.wake.wait(e).unwrap_or_else(|p| p.into_inner());
            }
            seen = *e;
            if *lock(&sh.shutdown) {
                return;
            }
            lock(&sh.job).clone()
        };
        if let Some(job) = job {
            job(tid);
        }
        let mut d = lock(&sh.done);
        *d += 1;
        sh.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn legacy_pool_runs_regions() {
        let pool = LegacyMutexPool::new(3);
        let count = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 30);
    }
}
