//! Deterministic scheduling cost model.
//!
//! Replays OpenMP loop-scheduling policies over a vector of per-iteration
//! costs and charges a calibrated fork-join overhead per parallel region.
//! Because the model consumes the *real* per-iteration work distribution
//! of the *real* generated workloads, it reproduces the phenomena the
//! paper's figures hinge on — load imbalance under static scheduling
//! (Figure 16), fork-join-dominated inner-loop parallelization
//! (Figure 13's 58× anomaly), and efficiency decline with core count
//! (Figure 15) — without requiring a 20-core machine.

use crate::schedule::{dynamic_batch, guided_claim, static_chunks, Schedule};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

/// Cost-model parameters. Units are arbitrary but consistent (the figure
/// harnesses use nanoseconds calibrated against real single-thread runs).
#[derive(Debug, Clone, Copy)]
pub struct SimParams {
    /// Cost of forking and joining one parallel region (thread wake-up,
    /// barrier). OpenMP fork-join on a multi-socket Xeon is on the order
    /// of microseconds.
    pub fork_join: f64,
    /// Per-chunk cost of dynamic/guided self-scheduling (the shared
    /// counter's atomic update plus cache traffic).
    pub dispatch: f64,
    /// Fraction of the region's work bound by shared memory bandwidth
    /// (0.0 = fully compute-bound). Parallel time cannot drop below
    /// `mem_frac · total_work / mem_scale` — the roofline that caps
    /// SpMV-style kernels at a few× regardless of core count (the paper's
    /// AMGmk saturates at 3.43×).
    pub mem_frac: f64,
    /// Aggregate memory-bandwidth speedup of the machine over one core
    /// (≈3–4 on a dual-socket Xeon for streaming access).
    pub mem_scale: f64,
}

impl Default for SimParams {
    fn default() -> SimParams {
        SimParams {
            fork_join: 5_000.0,
            dispatch: 80.0,
            mem_frac: 0.0,
            mem_scale: 3.5,
        }
    }
}

/// Result of simulating one parallel region.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Simulated wall time of the region (max thread finish time plus
    /// fork-join overhead).
    pub time: f64,
    /// Per-thread busy time.
    pub per_thread: Vec<f64>,
}

impl SimResult {
    /// Load imbalance: max over mean of thread busy time (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let max = self.per_thread.iter().cloned().fold(0.0, f64::max);
        let mean = self.per_thread.iter().sum::<f64>() / self.per_thread.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Simulates `parallel for` over `costs` (one entry per iteration) on
/// `threads` threads with the given schedule.
pub fn simulate_parallel_for(
    costs: &[f64],
    threads: usize,
    sched: Schedule,
    params: &SimParams,
) -> SimResult {
    let threads = threads.max(1);
    let n = costs.len();
    let mut per_thread = vec![0.0f64; threads];
    match sched {
        Schedule::Static { chunk } => {
            for (tid, t) in per_thread.iter_mut().enumerate() {
                for (s, e) in static_chunks(n, threads, chunk, tid) {
                    *t += costs[s..e].iter().sum::<f64>();
                }
            }
        }
        Schedule::Dynamic { chunk } => {
            // Event-driven self-scheduling: the earliest-finishing thread
            // grabs the next claim. Claims are batched exactly like the
            // real pool's (`dynamic_batch`), so the per-claim dispatch
            // charge models the same number of shared-counter updates
            // the runtime performs.
            let claim = dynamic_batch(n, threads, chunk);
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
                (0..threads).map(|t| Reverse((0u64, t))).collect();
            let mut s = 0usize;
            while s < n {
                let Reverse((busy_bits, tid)) = heap.pop().expect("nonempty");
                let busy = f64::from_bits(busy_bits);
                let work: f64 = costs[s..(s + claim).min(n)].iter().sum::<f64>() + params.dispatch;
                let new_busy = busy + work;
                per_thread[tid] = new_busy;
                heap.push(Reverse((new_busy.to_bits(), tid)));
                s += claim;
            }
        }
        Schedule::Guided { min_chunk } => {
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
                (0..threads).map(|t| Reverse((0u64, t))).collect();
            let mut s = 0usize;
            while s < n {
                let Reverse((busy_bits, tid)) = heap.pop().expect("nonempty");
                let busy = f64::from_bits(busy_bits);
                let c = guided_claim(n - s, threads, min_chunk);
                let work: f64 = costs[s..s + c].iter().sum::<f64>() + params.dispatch;
                let new_busy = busy + work;
                per_thread[tid] = new_busy;
                heap.push(Reverse((new_busy.to_bits(), tid)));
                s += c;
            }
        }
    }
    let max = per_thread.iter().cloned().fold(0.0, f64::max);
    // Progressive memory-bandwidth roofline: the bandwidth-bound share of
    // the work scales with the *effective* bandwidth speedup
    // bw(p) = mem_scale·p / (p + mem_scale − 1) (1 at one core, saturating
    // at mem_scale), while the compute share scales with p. The region
    // cannot run faster than that sum, regardless of load balance.
    //
    // Load imbalance still costs wall time when the floor binds: a thread
    // finishing late extends the region even if aggregate bandwidth is
    // saturated, so the schedule's excess over a perfectly balanced
    // partition (max − total/p) rides on top of the floor rather than
    // being absorbed by it.
    let total: f64 = costs.iter().sum();
    let busy: f64 = per_thread.iter().sum();
    let floor = if threads > 1 && params.mem_scale > 1.0 && params.mem_frac > 0.0 {
        let p = threads as f64;
        let bw = params.mem_scale * p / (p + params.mem_scale - 1.0);
        params.mem_frac * total / bw + (1.0 - params.mem_frac) * total / p
    } else {
        0.0
    };
    let excess = (max - busy / threads as f64).max(0.0);
    SimResult {
        time: max.max(floor + excess) + params.fork_join,
        per_thread,
    }
}

/// Simulates the *inner-loop parallelization* strategy the classical
/// baseline produces: the outer loop runs serially and forks a team for
/// each iteration's inner loop. `inner_costs[i]` holds the per-iteration
/// costs of outer iteration `i`'s inner loop; `outer_overhead[i]` is the
/// serial work of outer iteration `i` outside the inner loop.
pub fn simulate_inner_parallel(
    inner_costs: &[Vec<f64>],
    outer_overhead: &[f64],
    threads: usize,
    sched: Schedule,
    params: &SimParams,
) -> f64 {
    inner_costs
        .iter()
        .enumerate()
        .map(|(i, costs)| {
            let extra = outer_overhead.get(i).copied().unwrap_or(0.0);
            extra + simulate_parallel_for(costs, threads, sched, params).time
        })
        .sum()
}

/// Serial time: the plain sum.
pub fn serial_time(costs: &[f64]) -> f64 {
    costs.iter().sum()
}

/// Fork-join constants measured on *this* machine by the
/// `forkjoin_calibrate` binary (`BENCH_forkjoin.json`), replacing the
/// hard-coded defaults in the figure harnesses' cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineCalibration {
    /// Median latency of one empty fork-join region, nanoseconds.
    pub fork_join_ns: f64,
    /// Per-claim overhead of dynamic self-scheduling, nanoseconds.
    pub dispatch_ns: f64,
    /// Thread count the constants were measured at.
    pub threads: usize,
}

impl MachineCalibration {
    /// Parses a `BENCH_forkjoin.json` document. The format is the flat
    /// object `forkjoin_calibrate` emits; only the three scalar keys are
    /// read, so the parser is a deliberate 20-line scan rather than a
    /// JSON dependency.
    pub fn parse_json(doc: &str) -> Option<MachineCalibration> {
        let fork_join_ns = scan_number(doc, "fork_join_ns")?;
        let dispatch_ns = scan_number(doc, "dispatch_ns")?;
        let threads = scan_number(doc, "cal_threads")? as usize;
        (fork_join_ns.is_finite() && fork_join_ns > 0.0 && dispatch_ns.is_finite()).then_some(
            MachineCalibration {
                fork_join_ns,
                dispatch_ns: dispatch_ns.max(0.0),
                threads: threads.max(1),
            },
        )
    }

    /// Reads a calibration file from disk.
    pub fn load(path: &std::path::Path) -> Option<MachineCalibration> {
        MachineCalibration::parse_json(&std::fs::read_to_string(path).ok()?)
    }

    /// The process-wide calibration, loaded once from
    /// `$SUBSUB_FORKJOIN_CAL` or `./BENCH_forkjoin.json`. `None` when no
    /// calibration file exists — callers fall back to the hard-coded
    /// defaults.
    pub fn load_default() -> Option<MachineCalibration> {
        static CAL: OnceLock<Option<MachineCalibration>> = OnceLock::new();
        *CAL.get_or_init(|| {
            let path = std::env::var("SUBSUB_FORKJOIN_CAL")
                .unwrap_or_else(|_| "BENCH_forkjoin.json".to_string());
            MachineCalibration::load(std::path::Path::new(&path))
        })
    }

    /// Measured dispatch-to-fork-join cost ratio, clamped to a sane
    /// range (a noisy measurement must not turn the dispatch charge
    /// negative or larger than the whole region overhead).
    pub fn dispatch_ratio(&self) -> f64 {
        (self.dispatch_ns / self.fork_join_ns).clamp(1e-4, 1.0)
    }
}

impl SimParams {
    /// Defaults overridden by this machine's measured constants when a
    /// calibration file is present: `fork_join` and `dispatch` become
    /// real nanoseconds instead of the canonical 5000/80.
    pub fn calibrated() -> SimParams {
        match MachineCalibration::load_default() {
            Some(c) => SimParams {
                fork_join: c.fork_join_ns,
                dispatch: c.dispatch_ns,
                ..SimParams::default()
            },
            None => SimParams::default(),
        }
    }
}

/// Finds `"key": <number>` in a flat JSON document.
fn scan_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, c: f64) -> Vec<f64> {
        vec![c; n]
    }

    #[test]
    fn static_uniform_scales() {
        let p = SimParams {
            fork_join: 0.0,
            dispatch: 0.0,
            ..SimParams::default()
        };
        let costs = uniform(1600, 10.0);
        let t1 = simulate_parallel_for(&costs, 1, Schedule::static_default(), &p).time;
        let t16 = simulate_parallel_for(&costs, 16, Schedule::static_default(), &p).time;
        assert!((t1 / t16 - 16.0).abs() < 1e-9);
    }

    #[test]
    fn total_work_conserved() {
        let p = SimParams {
            fork_join: 0.0,
            dispatch: 0.0,
            ..SimParams::default()
        };
        let costs: Vec<f64> = (0..257).map(|i| (i % 7) as f64 + 1.0).collect();
        for sched in [
            Schedule::static_default(),
            Schedule::Static { chunk: Some(4) },
            Schedule::dynamic_default(),
            Schedule::Guided { min_chunk: 1 },
        ] {
            let r = simulate_parallel_for(&costs, 5, sched, &p);
            let total: f64 = r.per_thread.iter().sum();
            assert!(
                (total - costs.iter().sum::<f64>()).abs() < 1e-6,
                "{sched}: {total}"
            );
        }
    }

    #[test]
    fn dynamic_beats_static_on_skewed_work() {
        // One heavy tail at the end of the iteration space: the static
        // blocked schedule loads the last thread with all heavy items.
        let p = SimParams {
            fork_join: 0.0,
            dispatch: 1.0,
            ..SimParams::default()
        };
        let mut costs = uniform(1000, 10.0);
        for c in costs.iter_mut().skip(900) {
            *c = 500.0;
        }
        let st = simulate_parallel_for(&costs, 8, Schedule::static_default(), &p).time;
        let dy = simulate_parallel_for(&costs, 8, Schedule::dynamic_default(), &p).time;
        assert!(dy < st, "dynamic {dy} should beat static {st}");
    }

    #[test]
    fn static_wins_on_uniform_work_with_dispatch_cost() {
        let p = SimParams {
            fork_join: 0.0,
            dispatch: 50.0,
            ..SimParams::default()
        };
        let costs = uniform(10_000, 10.0);
        let st = simulate_parallel_for(&costs, 8, Schedule::static_default(), &p).time;
        let dy = simulate_parallel_for(&costs, 8, Schedule::dynamic_default(), &p).time;
        assert!(
            st < dy,
            "static {st} should beat dynamic {dy} on uniform work"
        );
    }

    #[test]
    fn inner_parallel_pays_fork_join_per_outer_iteration() {
        let params = SimParams {
            fork_join: 1_000.0,
            dispatch: 0.0,
            ..SimParams::default()
        };
        // 100 outer iterations, each with a tiny inner loop.
        let inner: Vec<Vec<f64>> = (0..100).map(|_| uniform(4, 1.0)).collect();
        let inner_time =
            simulate_inner_parallel(&inner, &[], 8, Schedule::static_default(), &params);
        // Outer-parallel: one region over 100 iterations of cost 4 each.
        let outer_costs = uniform(100, 4.0);
        let outer_time =
            simulate_parallel_for(&outer_costs, 8, Schedule::static_default(), &params).time;
        let serial: f64 = 400.0;
        assert!(inner_time > serial, "fork-join swamps the inner strategy");
        assert!(outer_time < inner_time / 50.0);
    }

    #[test]
    fn more_threads_never_slower_static_uniform() {
        let p = SimParams::default();
        let costs = uniform(4096, 25.0);
        let mut last = f64::INFINITY;
        for t in [1, 2, 4, 8, 16] {
            let r = simulate_parallel_for(&costs, t, Schedule::static_default(), &p);
            assert!(r.time <= last + 1e-9);
            last = r.time;
        }
    }

    #[test]
    fn imbalance_metric() {
        let p = SimParams {
            fork_join: 0.0,
            dispatch: 0.0,
            ..SimParams::default()
        };
        let costs = vec![100.0, 1.0];
        let r = simulate_parallel_for(&costs, 2, Schedule::static_default(), &p);
        assert!(r.imbalance() > 1.5);
    }

    #[test]
    fn bandwidth_floor_caps_speedup() {
        let p = SimParams {
            fork_join: 0.0,
            dispatch: 0.0,
            mem_frac: 1.0,
            mem_scale: 3.5,
        };
        let costs = uniform(1600, 10.0);
        let serial: f64 = costs.iter().sum();
        // Fully bandwidth-bound: speedup follows bw(p) and saturates
        // below mem_scale, growing monotonically with p.
        let mut last = 0.0;
        for cores in [4usize, 8, 16] {
            let t = simulate_parallel_for(&costs, cores, Schedule::static_default(), &p).time;
            let sp = serial / t;
            assert!(sp > last, "speedup should grow with cores");
            assert!(sp < 3.5, "speedup stays below mem_scale");
            last = sp;
        }
        // Single thread: no floor.
        let t1 = simulate_parallel_for(&costs, 1, Schedule::static_default(), &p).time;
        assert!((t1 - serial).abs() < 1e-9);
    }

    #[test]
    fn empty_loop() {
        let p = SimParams::default();
        let r = simulate_parallel_for(&[], 8, Schedule::dynamic_default(), &p);
        assert_eq!(r.time, p.fork_join);
    }

    #[test]
    fn calibration_parses_the_emitted_format() {
        let doc = r#"{
  "schema": "subsub-forkjoin/v1",
  "quick": false,
  "cal_threads": 4,
  "fork_join_ns": 1234.5,
  "dispatch_ns": 42.0,
  "legacy_fork_join_ns": 4200.0,
  "improvement": 3.4
}"#;
        let c = MachineCalibration::parse_json(doc).expect("parses");
        assert_eq!(c.threads, 4);
        assert!((c.fork_join_ns - 1234.5).abs() < 1e-9);
        assert!((c.dispatch_ns - 42.0).abs() < 1e-9);
        assert!(c.dispatch_ratio() > 0.0 && c.dispatch_ratio() <= 1.0);
    }

    #[test]
    fn calibration_rejects_garbage() {
        assert!(MachineCalibration::parse_json("{}").is_none());
        assert!(MachineCalibration::parse_json(
            r#"{"cal_threads": 4, "fork_join_ns": -1, "dispatch_ns": 2}"#
        )
        .is_none());
        assert!(MachineCalibration::parse_json(
            r#"{"cal_threads": 4, "fork_join_ns": "nope", "dispatch_ns": 2}"#
        )
        .is_none());
    }

    #[test]
    fn dynamic_batching_conserves_work_in_sim() {
        // Large n with chunk 1: batched claims must still cover every
        // iteration's cost exactly once.
        let p = SimParams {
            fork_join: 0.0,
            dispatch: 0.0,
            ..SimParams::default()
        };
        let costs: Vec<f64> = (0..100_000).map(|i| ((i % 5) + 1) as f64).collect();
        let r = simulate_parallel_for(&costs, 4, Schedule::dynamic_default(), &p);
        let total: f64 = costs.iter().sum();
        let busy: f64 = r.per_thread.iter().sum();
        assert!((busy - total).abs() < 1e-6 * total);
    }
}
