//! Cooperative cancellation for parallel regions.
//!
//! A [`CancelToken`] lets any thread in (or outside) a `parallel for`
//! request that the remaining iterations be abandoned — the mechanism
//! behind early-exit inspectors: once one chunk finds a monotonicity
//! violation the whole scan's answer is known, so scanning the rest of
//! the index array is pure waste. Cancellation is *cooperative*: the
//! runtime checks the token between chunk claims and between iterations,
//! so an iteration already in flight always finishes (iterations run at
//! most once, and none start after the cancel is observed).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable one-way cancellation flag.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
}

impl CancelToken {
    /// A fresh (not cancelled) token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

thread_local! {
    /// Stack of ambient tokens installed by [`with_ambient_cancel`] on
    /// *this* thread. A stack (not a slot) so nested scopes restore the
    /// outer token instead of clearing it.
    static AMBIENT: RefCell<Vec<Arc<CancelToken>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with `token` installed as this thread's *ambient* cancel
/// token: any `parallel for` the thread coordinates while inside `f`
/// observes the token exactly as if it had been passed explicitly to
/// [`crate::ThreadPool::parallel_for_deadline`].
///
/// This is the hook that lets a host (the analysis service) cancel deep
/// inside code that never learned about tokens — kernels call plain
/// `pool.parallel_for`, and the runtime picks the token up from the
/// coordinating thread's ambient scope. The scope is strictly
/// per-thread: other coordinators sharing the pool are unaffected.
pub fn with_ambient_cancel<R>(token: &Arc<CancelToken>, f: impl FnOnce() -> R) -> R {
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            AMBIENT.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    AMBIENT.with(|s| s.borrow_mut().push(Arc::clone(token)));
    let _guard = PopOnDrop;
    f()
}

/// The innermost ambient token installed on this thread, if any.
pub fn ambient_cancel() -> Option<Arc<CancelToken>> {
    AMBIENT.with(|s| s.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_sticky_and_idempotent() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn ambient_scope_nests_and_restores() {
        assert!(ambient_cancel().is_none());
        let outer = Arc::new(CancelToken::new());
        let inner = Arc::new(CancelToken::new());
        with_ambient_cancel(&outer, || {
            assert!(Arc::ptr_eq(
                &ambient_cancel().expect("outer installed"),
                &outer
            ));
            with_ambient_cancel(&inner, || {
                assert!(Arc::ptr_eq(
                    &ambient_cancel().expect("inner installed"),
                    &inner
                ));
            });
            assert!(Arc::ptr_eq(
                &ambient_cancel().expect("outer restored"),
                &outer
            ));
        });
        assert!(ambient_cancel().is_none());
    }

    #[test]
    fn ambient_scope_unwinds_on_panic() {
        let t = Arc::new(CancelToken::new());
        let caught = std::panic::catch_unwind(|| {
            with_ambient_cancel(&t, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(ambient_cancel().is_none());
    }

    #[test]
    fn ambient_is_per_thread() {
        let t = Arc::new(CancelToken::new());
        with_ambient_cancel(&t, || {
            let seen = std::thread::spawn(|| ambient_cancel().is_some())
                .join()
                .expect("probe thread");
            assert!(!seen, "ambient token leaked across threads");
        });
    }
}
