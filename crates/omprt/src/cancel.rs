//! Cooperative cancellation for parallel regions.
//!
//! A [`CancelToken`] lets any thread in (or outside) a `parallel for`
//! request that the remaining iterations be abandoned — the mechanism
//! behind early-exit inspectors: once one chunk finds a monotonicity
//! violation the whole scan's answer is known, so scanning the rest of
//! the index array is pure waste. Cancellation is *cooperative*: the
//! runtime checks the token between chunk claims and between iterations,
//! so an iteration already in flight always finishes (iterations run at
//! most once, and none start after the cancel is observed).

use std::sync::atomic::{AtomicBool, Ordering};

/// A shareable one-way cancellation flag.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
}

impl CancelToken {
    /// A fresh (not cancelled) token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_sticky_and_idempotent() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        t.cancel();
        assert!(t.is_cancelled());
    }
}
