//! Edge-case integration tests for the claim-based fork-join pool:
//! oversubscription, nested/concurrent regions, long-haul reuse,
//! cooperative cancellation, and panic recovery.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use subsub_omprt::{CancelToken, Schedule, ThreadPool};

#[test]
fn oversubscribed_pool_is_exactly_once() {
    // 16 workers on a (possibly) 1-core machine: most tids get executed
    // by whichever thread wins the claim, not "their" worker. Coverage
    // must stay exactly-once regardless.
    let pool = ThreadPool::new(16);
    for sched in [
        Schedule::static_default(),
        Schedule::dynamic_default(),
        Schedule::Guided { min_chunk: 2 },
    ] {
        let n = 10_000usize;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, sched, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "{sched}"
        );
    }
}

#[test]
fn nested_run_degrades_to_inline_serial() {
    // A `run` issued from inside a job must not deadlock; it executes the
    // inner job inline for every tid (OpenMP nested-disabled semantics).
    let pool = ThreadPool::new(4);
    let inner_calls = AtomicUsize::new(0);
    let outer_calls = AtomicUsize::new(0);
    pool.run(|_| {
        outer_calls.fetch_add(1, Ordering::Relaxed);
        pool.run(|_| {
            inner_calls.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert_eq!(outer_calls.load(Ordering::Relaxed), 4);
    // Each of the 4 outer tids ran the inner region inline over 4 tids.
    assert_eq!(inner_calls.load(Ordering::Relaxed), 16);
}

#[test]
fn concurrent_runs_from_two_threads_both_complete() {
    // Two coordinators racing on one pool: whichever loses the
    // region_active flag runs inline. Both must produce exact sums.
    let pool = Arc::new(ThreadPool::new(4));
    let n = 50_000usize;
    let expected = (n as u64 - 1) * n as u64 / 2;
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let total = AtomicU64::new(0);
                for _ in 0..20 {
                    total.store(0, Ordering::Relaxed);
                    pool.parallel_for(n, Schedule::dynamic_default(), |i| {
                        total.fetch_add(i as u64, Ordering::Relaxed);
                    });
                    assert_eq!(total.load(Ordering::Relaxed), expected);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("concurrent coordinator");
    }
}

#[test]
fn fifty_thousand_region_reuse_stress() {
    // The epoch/claim protocol must hold up across a long back-to-back
    // region stream (epoch monotonicity, no leaked claims, no missed
    // wake-ups).
    let pool = ThreadPool::new(4);
    let count = AtomicU64::new(0);
    for _ in 0..50_000 {
        pool.run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(count.load(Ordering::Relaxed), 50_000 * 4);
}

#[test]
fn cancellation_stops_future_iterations_only() {
    // Cancel at iteration 500 of 100k: every executed iteration runs at
    // most once, no iteration starts after the cancel is observed, and a
    // large majority of the space is pruned.
    let pool = ThreadPool::new(4);
    let n = 100_000usize;
    let cancel = CancelToken::new();
    let cancelled = AtomicBool::new(false);
    let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    let after_cancel = AtomicUsize::new(0);
    pool.parallel_for_cancel(n, Schedule::dynamic_default(), &cancel, |i| {
        // `cancelled` is set strictly before `cancel.cancel()`, so any
        // iteration that starts after the token trips must observe it.
        if cancelled.load(Ordering::SeqCst) && cancel.is_cancelled() {
            after_cancel.fetch_add(1, Ordering::Relaxed);
        }
        hits[i].fetch_add(1, Ordering::Relaxed);
        if i == 500 {
            cancelled.store(true, Ordering::SeqCst);
            cancel.cancel();
        }
    });
    assert!(
        hits.iter().all(|h| h.load(Ordering::Relaxed) <= 1),
        "no iteration may run twice"
    );
    let total: usize = hits.iter().map(|h| h.load(Ordering::Relaxed)).sum();
    assert!(total >= 1, "iteration 500 itself ran");
    assert!(
        total < n / 2,
        "cancellation pruned the space (ran {total} of {n})"
    );
    // The runtime re-checks the token before every iteration, so nothing
    // *begins* once its thread has seen the cancel. A thread that passed
    // its pre-check just before the trip may still execute that one
    // in-flight iteration, so the bound is one straggler per thread.
    assert!(
        after_cancel.load(Ordering::Relaxed) <= pool.threads(),
        "at most one in-flight iteration per thread after the cancel"
    );
}

#[test]
fn cancel_racing_region_boundaries_never_deadlocks() {
    // An external canceller races `CancelToken::cancel` against the
    // region lifecycle: depending on timing the trip lands before the
    // fork, mid-region, or after the join. Whatever interleaving occurs,
    // the call must terminate, run nothing twice, and run nothing at all
    // once a pre-tripped token is observed.
    let pool = ThreadPool::new(4);
    let n = 2_000usize;
    for round in 0..100u64 {
        let cancel = Arc::new(CancelToken::new());
        let canceller = {
            let cancel = Arc::clone(&cancel);
            std::thread::spawn(move || {
                // Sweep the trip point across the region boundary.
                std::thread::sleep(std::time::Duration::from_micros(round % 40));
                cancel.cancel();
            })
        };
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_cancel(n, Schedule::dynamic_default(), &cancel, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        canceller.join().expect("canceller thread");
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) <= 1),
            "round {round}: no iteration may run twice"
        );
        // The token is now tripped: a follow-up region on the same token
        // must prune everything before any body runs.
        let late = AtomicUsize::new(0);
        pool.parallel_for_cancel(n, Schedule::static_default(), &cancel, |_| {
            late.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(
            late.load(Ordering::Relaxed),
            0,
            "round {round}: pre-cancelled region ran iterations"
        );
    }
}

#[test]
fn panic_in_reduction_propagates_without_leaking_slots() {
    let pool = ThreadPool::new(4);
    let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
        pool.parallel_for_reduce(
            1_000,
            Schedule::static_default(),
            0u64,
            |acc, i| {
                if i == 777 {
                    panic!("reduce boom");
                }
                acc + i as u64
            },
            |a, b| a + b,
        )
    }));
    // The fold panic surfaces as a structured region error, not a hang
    // and not a partial result.
    let payload = r.expect_err("the fold panic must propagate");
    match payload.downcast_ref::<subsub_omprt::RegionError>() {
        Some(subsub_omprt::RegionError::Panicked { detail }) => {
            assert!(detail.contains("reduce boom"), "{detail}")
        }
        other => panic!("expected RegionError::Panicked, got {other:?}"),
    }
    assert!(pool.health().job_panics >= 1);
    // No padded slot from the aborted reduction leaks into later ones:
    // fresh reductions are exact under every schedule.
    let n = 10_000usize;
    let expected = (n as u64 - 1) * n as u64 / 2;
    for sched in [
        Schedule::static_default(),
        Schedule::dynamic_default(),
        Schedule::Guided { min_chunk: 2 },
    ] {
        let sum = pool.parallel_for_reduce(n, sched, 0u64, |a, i| a + i as u64, |a, b| a + b);
        assert_eq!(sum, expected, "{sched}");
    }
}

#[test]
fn worker_panic_propagates_and_pool_survives() {
    let pool = ThreadPool::new(4);
    let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
        pool.run(|tid| {
            if tid == 2 {
                panic!("boom");
            }
        });
    }));
    assert!(r.is_err(), "the coordinator re-raises the job panic");
    // The pool is still usable afterwards.
    let count = AtomicU64::new(0);
    pool.parallel_for(1000, Schedule::static_default(), |_| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 1000);
}
