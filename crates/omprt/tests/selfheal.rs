//! Self-healing integration tests: injected worker deaths at the three
//! failure windows (idle wake, claimed-not-started, started) and the
//! pool's recovery behaviour — reclaim by the watchdog, clean
//! `WorkerLost` abort, and worker respawn.
//!
//! These tests *arm* failpoints, which is process-global state; they live
//! in their own test binary so no unrelated test shares the process.
//! Within the binary, `failpoint::arm` serializes armed scopes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use subsub_failpoint::{self as failpoint, Arm, FailPlan, Fire};
use subsub_omprt::{RegionError, Schedule, ThreadPool};

/// Armed failpoints are process-global: serialize the tests so one
/// test's armed schedule never injects into another's clean phase.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A region body slow enough that the worker threads (not just the
/// coordinator) win some of the per-tid claims.
fn slow_body() {
    std::thread::sleep(Duration::from_micros(300));
}

#[test]
fn claim_window_death_is_reclaimed_and_the_region_completes() {
    let _t = serialize();
    failpoint::silence_injected_panics();
    let pool = ThreadPool::new(4);
    let _armed =
        failpoint::arm(FailPlan::new().with("omprt.worker.claim", Arm::Panic, Fire::nth(0)));
    // Which thread makes the first worker claim is scheduling-dependent,
    // so run regions until the failpoint has fired. Every region —
    // including the one whose worker died between claiming a tid and
    // starting its job — must complete exactly-once: the watchdog
    // attributes the orphaned claim to the dead worker and the
    // coordinator re-executes it.
    let mut fired = false;
    for _ in 0..50 {
        let n = 64usize;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let r = pool.try_parallel_for(n, Schedule::static_default(), |i| {
            slow_body();
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(r.is_ok(), "claim-window death must not abort: {r:?}");
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "reclaim must preserve exactly-once"
        );
        if failpoint::fired("omprt.worker.claim") > 0 {
            fired = true;
            break;
        }
    }
    assert!(fired, "the claim-window failpoint never fired");
    let h = pool.health();
    assert!(
        h.reclaimed_tids >= 1,
        "watchdog reclaim not recorded: {h:?}"
    );
    // The watchdog flagged the pool suspect, so the region epilogue
    // already swept and respawned the dead worker.
    assert!(h.respawned_workers >= 1, "no respawn recorded: {h:?}");
}

#[test]
fn idle_wake_death_heals_by_the_periodic_sweep() {
    let _t = serialize();
    failpoint::silence_injected_panics();
    let pool = ThreadPool::new(4);
    {
        let _armed =
            failpoint::arm(FailPlan::new().with("omprt.worker.wake", Arm::Panic, Fire::nth(0)));
        // The worker dies on wake-up holding no claim, so regions keep
        // completing off the survivors; nothing forces the watchdog to
        // observe the death.
        for _ in 0..10 {
            pool.run(|_| slow_body());
        }
        assert!(
            failpoint::fired("omprt.worker.wake") > 0,
            "wake failpoint never fired"
        );
    }
    // Disarmed: drive enough regions to cross a periodic maintenance
    // sweep (every 64th region), which reaps the dead handle and
    // respawns. Exactly-once coverage must hold throughout.
    let count = AtomicU64::new(0);
    for _ in 0..130 {
        pool.run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(count.load(Ordering::Relaxed), 130 * 4);
    let h = pool.health();
    assert!(
        h.respawned_workers >= 1,
        "periodic sweep did not heal: {h:?}"
    );
}

#[test]
fn mid_job_death_aborts_with_worker_lost_then_pool_recovers() {
    let _t = serialize();
    failpoint::silence_injected_panics();
    let pool = ThreadPool::new(4);
    let lost = {
        let _armed =
            failpoint::arm(FailPlan::new().with("omprt.worker.job", Arm::Panic, Fire::nth(0)));
        let mut lost = None;
        for _ in 0..50 {
            let r = pool.try_run(|_| slow_body());
            if failpoint::fired("omprt.worker.job") > 0 {
                lost = Some(r);
                break;
            }
            assert!(r.is_ok(), "unfired region must succeed: {r:?}");
        }
        lost.expect("the mid-job failpoint never fired")
    };
    // The dead worker's tid was attributed as *started*: re-running it
    // could double-execute side effects, so the region must abort as a
    // value — never hang, never pretend success.
    match lost {
        Err(RegionError::WorkerLost { .. }) => {}
        other => panic!("expected WorkerLost, got {other:?}"),
    }
    let h = pool.health();
    assert!(h.aborted_regions >= 1, "{h:?}");
    // Disarmed: the pool healed (respawn happens on the abort path) and
    // later regions are exactly-once again.
    let count = AtomicU64::new(0);
    pool.parallel_for(1_000, Schedule::dynamic_default(), |_| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 1_000);
    assert!(pool.health().respawned_workers >= 1);
}

#[test]
fn repeated_injected_deaths_never_wedge_the_pool() {
    let _t = serialize();
    failpoint::silence_injected_panics();
    let pool = ThreadPool::new(4);
    {
        // One death every 40 claim hits, up to 5 deaths: a sustained
        // fault load across many regions.
        let _armed = failpoint::arm(FailPlan::new().with(
            "omprt.worker.claim",
            Arm::Panic,
            Fire {
                from_hit: 2,
                period: 40,
                max_fires: 5,
            },
        ));
        for _ in 0..60 {
            let n = 32usize;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let r = pool.try_parallel_for(n, Schedule::dynamic_default(), |i| {
                slow_body();
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            // Claim-window deaths are always reclaimable; the region
            // must complete with exact coverage.
            assert!(r.is_ok(), "{r:?}");
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }
    // After the storm: healthy steady state.
    let count = AtomicU64::new(0);
    for _ in 0..20 {
        pool.parallel_for(500, Schedule::static_default(), |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(count.load(Ordering::Relaxed), 20 * 500);
    let h = pool.health();
    assert_eq!(h.deadline_cancels, 0, "{h:?}");
}
