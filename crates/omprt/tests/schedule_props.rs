//! Property-style validation of the loop schedules and the simulator,
//! swept deterministically over dense parameter grids (no external
//! property-testing dependency; failures reproduce exactly).

use subsub_omprt::schedule::static_chunks;
use subsub_omprt::{sim, Schedule, SimParams, ThreadPool};

/// Static chunking is an exact partition for any (n, threads, chunk).
#[test]
fn static_chunks_partition() {
    for n in [0usize, 1, 2, 7, 16, 63, 100, 255, 499] {
        for threads in 1usize..17 {
            for chunk in [None, Some(1), Some(2), Some(5), Some(17), Some(31)] {
                let mut hits = vec![0u32; n];
                for tid in 0..threads {
                    for (s, e) in static_chunks(n, threads, chunk, tid) {
                        assert!(s <= e && e <= n);
                        for h in &mut hits[s..e] {
                            *h += 1;
                        }
                    }
                }
                assert!(
                    hits.iter().all(|&h| h == 1),
                    "n={n} threads={threads} chunk={chunk:?}"
                );
            }
        }
    }
}

/// The simulator conserves work for every schedule (no fork-join, no
/// dispatch): thread busy times sum to the serial total.
#[test]
fn simulator_conserves_work() {
    let scheds = [
        Schedule::static_default(),
        Schedule::Static { chunk: Some(4) },
        Schedule::dynamic_default(),
        Schedule::Guided { min_chunk: 2 },
    ];
    for len in [0usize, 1, 13, 97, 300] {
        // Deterministic cost pattern with irregular values in [0, 100).
        let costs: Vec<f64> = (0..len).map(|i| ((i * 37 + 11) % 100) as f64).collect();
        for threads in 1usize..17 {
            for sched in scheds {
                let p = SimParams {
                    fork_join: 0.0,
                    dispatch: 0.0,
                    ..SimParams::default()
                };
                let r = sim::simulate_parallel_for(&costs, threads, sched, &p);
                let total: f64 = costs.iter().sum();
                let busy: f64 = r.per_thread.iter().sum();
                assert!(
                    (busy - total).abs() < 1e-6 * total.max(1.0),
                    "len={len} threads={threads} {sched}"
                );
                // Wall time is at least total/threads and at most total (+eps).
                assert!(r.time >= total / threads as f64 - 1e-9);
                assert!(r.time <= total + 1e-9);
            }
        }
    }
}

/// Real pool execution visits every index exactly once for many
/// (n, schedule) combinations.
#[test]
fn pool_visits_each_index_once() {
    use std::sync::atomic::{AtomicU32, Ordering};
    let scheds = [
        Schedule::static_default(),
        Schedule::dynamic_default(),
        Schedule::Guided { min_chunk: 1 },
    ];
    let pool = ThreadPool::new(3);
    for n in [0usize, 1, 2, 3, 5, 17, 64, 129, 199] {
        for sched in scheds {
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            pool.parallel_for(n, sched, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n={n} {sched}"
            );
        }
    }
}
