//! Property-based validation of the loop schedules and the simulator.

use proptest::prelude::*;
use subsub_omprt::schedule::static_chunks;
use subsub_omprt::{sim, Schedule, SimParams, ThreadPool};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Static chunking is an exact partition for any (n, threads, chunk).
    #[test]
    fn static_chunks_partition(n in 0usize..500, threads in 1usize..17,
                               chunk in prop::option::of(1usize..32)) {
        let mut hits = vec![0u32; n];
        for tid in 0..threads {
            for (s, e) in static_chunks(n, threads, chunk, tid) {
                prop_assert!(s <= e && e <= n);
                for h in &mut hits[s..e] {
                    *h += 1;
                }
            }
        }
        prop_assert!(hits.iter().all(|&h| h == 1));
    }

    /// The simulator conserves work for every schedule (no fork-join, no
    /// dispatch): thread busy times sum to the serial total.
    #[test]
    fn simulator_conserves_work(
        costs in prop::collection::vec(0.0f64..100.0, 0..300),
        threads in 1usize..17,
        which in 0usize..4,
    ) {
        let sched = [
            Schedule::static_default(),
            Schedule::Static { chunk: Some(4) },
            Schedule::dynamic_default(),
            Schedule::Guided { min_chunk: 2 },
        ][which];
        let p = SimParams { fork_join: 0.0, dispatch: 0.0, ..SimParams::default() };
        let r = sim::simulate_parallel_for(&costs, threads, sched, &p);
        let total: f64 = costs.iter().sum();
        let busy: f64 = r.per_thread.iter().sum();
        prop_assert!((busy - total).abs() < 1e-6 * total.max(1.0));
        // Wall time is at least total/threads and at most total (+eps).
        prop_assert!(r.time >= total / threads as f64 - 1e-9);
        prop_assert!(r.time <= total + 1e-9);
    }

    /// Real pool execution visits every index exactly once for random
    /// (n, schedule) combinations.
    #[test]
    fn pool_visits_each_index_once(n in 0usize..200, which in 0usize..3) {
        use std::sync::atomic::{AtomicU32, Ordering};
        let sched = [
            Schedule::static_default(),
            Schedule::dynamic_default(),
            Schedule::Guided { min_chunk: 1 },
        ][which];
        let pool = ThreadPool::new(3);
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        pool.parallel_for(n, sched, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
