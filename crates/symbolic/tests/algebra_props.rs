//! Property-based validation of the expression and range algebra: every
//! algebraic identity the analysis relies on is checked against brute-
//! force evaluation under random concrete valuations.

use proptest::prelude::*;
use subsub_symbolic::{Expr, Range, RangeEnv, Symbol};

/// A small strategy for expressions over three symbols with bounded depth.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::int),
        Just(Expr::var("x")),
        Just(Expr::var("y")),
        Just(Expr::var("z")),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            inner.prop_map(|a| -a),
        ]
    })
}

fn valuation(x: i64, y: i64, z: i64) -> impl Fn(&Symbol) -> i64 {
    move |s: &Symbol| match &*s.name {
        "x" => x,
        "y" => y,
        "z" => z,
        _ => 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Canonicalization preserves meaning: (a+b), (a*b), (a-b) evaluate
    /// like their concrete counterparts.
    #[test]
    fn ops_match_concrete(a in arb_expr(), b in arb_expr(),
                          x in -7i64..7, y in -7i64..7, z in -7i64..7) {
        let v = valuation(x, y, z);
        let reads = |_: &str, _: &[i64]| 0i64;
        let ea = a.eval(&v, &reads);
        let eb = b.eval(&v, &reads);
        prop_assert_eq!((a.clone() + b.clone()).eval(&v, &reads), ea.wrapping_add(eb));
        prop_assert_eq!((a.clone() - b.clone()).eval(&v, &reads), ea.wrapping_sub(eb));
        prop_assert_eq!((a.clone() * b.clone()).eval(&v, &reads), ea.wrapping_mul(eb));
        prop_assert_eq!((-a.clone()).eval(&v, &reads), ea.wrapping_neg());
    }

    /// Structural equality after canonicalization is a congruence:
    /// a + b == b + a and a - a == 0.
    #[test]
    fn commutativity_and_cancellation(a in arb_expr(), b in arb_expr()) {
        prop_assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
        prop_assert_eq!(a.clone() * b.clone(), b.clone() * a.clone());
        prop_assert!((a.clone() - a.clone()).is_zero());
    }

    /// Substitution commutes with evaluation:
    /// e[s := r] evaluated == e evaluated with s ↦ eval(r).
    #[test]
    fn substitution_commutes(e in arb_expr(), r in arb_expr(),
                             x in -5i64..5, y in -5i64..5, z in -5i64..5) {
        let sym = Symbol::var("x");
        let reads = |_: &str, _: &[i64]| 0i64;
        let v = valuation(x, y, z);
        let rv = r.eval(&v, &reads);
        let direct = e.subst_sym(&sym, &r).eval(&v, &reads);
        let via = e.eval(&valuation(rv, y, z), &reads);
        prop_assert_eq!(direct, via);
    }

    /// split_linear is a decomposition: coef*sym + rest == e, with the
    /// symbol absent from both parts.
    #[test]
    fn split_linear_reconstructs(e in arb_expr()) {
        let sym = Symbol::var("x");
        if let Some((coef, rest)) = e.split_linear(&sym) {
            prop_assert!(!coef.contains_sym(&sym));
            prop_assert!(!rest.contains_sym(&sym));
            let rebuilt = coef * Expr::sym(sym.clone()) + rest;
            prop_assert_eq!(rebuilt, e);
        }
    }

    /// Sign analysis is sound: whatever sign the env proves under the
    /// assumption x,y,z >= 0 holds for all non-negative valuations.
    #[test]
    fn sign_analysis_sound(e in arb_expr(),
                           x in 0i64..6, y in 0i64..6, z in 0i64..6) {
        let mut env = RangeEnv::new();
        env.assume_nonneg(Symbol::var("x"));
        env.assume_nonneg(Symbol::var("y"));
        env.assume_nonneg(Symbol::var("z"));
        let reads = |_: &str, _: &[i64]| 0i64;
        let val = e.eval(&valuation(x, y, z), &reads);
        let s = env.sign_of(&e);
        if s.is_pos() {
            prop_assert!(val > 0, "claimed Pos but {} (e = {})", val, e);
        }
        if s.is_nonneg() {
            prop_assert!(val >= 0, "claimed NonNeg but {} (e = {})", val, e);
        }
        if s.is_nonpos() {
            prop_assert!(val <= 0, "claimed NonPos but {} (e = {})", val, e);
        }
    }

    /// Range arithmetic preserves containment: if v ∈ a and w ∈ b
    /// (constant ranges), then v+w ∈ a.add(b).
    #[test]
    fn range_add_contains(alo in -10i64..10, aw in 0i64..10,
                          blo in -10i64..10, bw in 0i64..10,
                          t in 0.0f64..1.0, u in 0.0f64..1.0) {
        let a = Range::ints(alo, alo + aw);
        let b = Range::ints(blo, blo + bw);
        let v = alo + (t * aw as f64) as i64;
        let w = blo + (u * bw as f64) as i64;
        let sum = a.add(&b);
        let (lo, hi) = (sum.lo.as_int().unwrap(), sum.hi.as_int().unwrap());
        prop_assert!(lo <= v + w && v + w <= hi);
    }

    /// Range scaling flips bounds correctly for negative factors.
    #[test]
    fn range_mul_int_contains(lo in -10i64..10, w in 0i64..10,
                              c in -5i64..5, t in 0.0f64..1.0) {
        let r = Range::ints(lo, lo + w);
        let v = lo + (t * w as f64) as i64;
        let scaled = r.mul_int(c);
        let (slo, shi) = (scaled.lo.as_int().unwrap(), scaled.hi.as_int().unwrap());
        prop_assert!(slo <= c * v && c * v <= shi);
    }

    /// Hull contains both inputs and is exact for constant ranges.
    #[test]
    fn union_is_upper_bound(alo in -10i64..10, aw in 0i64..8,
                            blo in -10i64..10, bw in 0i64..8) {
        let env = RangeEnv::new();
        let a = Range::ints(alo, alo + aw);
        let b = Range::ints(blo, blo + bw);
        let u = a.union(&b, &env).expect("constant hull always provable");
        let (lo, hi) = (u.lo.as_int().unwrap(), u.hi.as_int().unwrap());
        prop_assert!(lo <= alo && alo + aw <= hi);
        prop_assert!(lo <= blo && blo + bw <= hi);
        prop_assert!(lo == alo.min(blo) && hi == (alo + aw).max(blo + bw));
    }
}
