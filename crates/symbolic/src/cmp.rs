//! Symbolic comparison of expressions.
//!
//! A thin layer over sign analysis: comparing `a` and `b` reduces to the
//! sign of `b - a`. The result is a [`SymOrdering`] — a partial verdict
//! that may be `Unknown` when the assumptions cannot order the operands.

use crate::env::{RangeEnv, Sign};
use crate::expr::Expr;

/// Outcome of a symbolic comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymOrdering {
    /// `a < b` proven.
    Lt,
    /// `a <= b` proven (equality possible).
    Le,
    /// `a == b` proven.
    Eq,
    /// `a >= b` proven (equality possible).
    Ge,
    /// `a > b` proven.
    Gt,
    /// The assumptions cannot order `a` and `b`.
    Unknown,
}

impl SymOrdering {
    /// True if the verdict proves `a <= b`.
    pub fn implies_le(self) -> bool {
        matches!(self, SymOrdering::Lt | SymOrdering::Le | SymOrdering::Eq)
    }

    /// True if the verdict proves `a < b`.
    pub fn implies_lt(self) -> bool {
        matches!(self, SymOrdering::Lt)
    }

    /// True if the verdict proves `a >= b`.
    pub fn implies_ge(self) -> bool {
        matches!(self, SymOrdering::Gt | SymOrdering::Ge | SymOrdering::Eq)
    }

    /// True if the verdict proves `a > b`.
    pub fn implies_gt(self) -> bool {
        matches!(self, SymOrdering::Gt)
    }
}

/// Compares two expressions under the environment's assumptions.
pub fn cmp_exprs(a: &Expr, b: &Expr, env: &RangeEnv) -> SymOrdering {
    let diff = b.clone() - a.clone(); // sign(diff) tells how a relates to b
    match env.sign_of(&diff) {
        Sign::Zero => SymOrdering::Eq,
        Sign::Pos => SymOrdering::Lt,
        Sign::NonNeg => SymOrdering::Le,
        Sign::Neg => SymOrdering::Gt,
        Sign::NonPos => SymOrdering::Ge,
        Sign::Unknown => SymOrdering::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::Symbol;

    #[test]
    fn equal_expressions() {
        let env = RangeEnv::new();
        let a = Expr::var("x") + Expr::int(1);
        assert_eq!(cmp_exprs(&a, &a, &env), SymOrdering::Eq);
    }

    #[test]
    fn constant_ordering() {
        let env = RangeEnv::new();
        assert_eq!(
            cmp_exprs(&Expr::int(3), &Expr::int(5), &env),
            SymOrdering::Lt
        );
        assert_eq!(
            cmp_exprs(&Expr::int(5), &Expr::int(3), &env),
            SymOrdering::Gt
        );
    }

    #[test]
    fn shifted_symbol() {
        let env = RangeEnv::new();
        let x = Expr::var("x");
        assert_eq!(
            cmp_exprs(&x, &(x.clone() + Expr::int(1)), &env),
            SymOrdering::Lt
        );
        assert_eq!(
            cmp_exprs(&x, &(x.clone() - Expr::int(2)), &env),
            SymOrdering::Gt
        );
    }

    #[test]
    fn assumption_driven_le() {
        let mut env = RangeEnv::new();
        env.assume_nonneg(Symbol::var("k"));
        let x = Expr::var("x");
        let verdict = cmp_exprs(&x, &(x.clone() + Expr::var("k")), &env);
        assert_eq!(verdict, SymOrdering::Le);
        assert!(verdict.implies_le());
        assert!(!verdict.implies_lt());
    }

    #[test]
    fn incomparable() {
        let env = RangeEnv::new();
        assert_eq!(
            cmp_exprs(&Expr::var("x"), &Expr::var("y"), &env),
            SymOrdering::Unknown
        );
    }
}
