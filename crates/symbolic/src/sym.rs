//! Symbols: named atoms appearing in symbolic expressions.
//!
//! The paper distinguishes several flavours of named values:
//!
//! * plain program variables and loop indices (`i`, `n`, `num_rows`, …),
//! * `λ_v` — the value of `v` at the *beginning of the loop iteration*
//!   being symbolically executed (Phase-1),
//! * `Λ_v` — the value of `v` at the *entry of the loop* (Phase-2
//!   aggregation),
//! * `v_max` — the value of `v` *after* the loop (used in aggregated
//!   subscript ranges such as `A_rownnz[0:irownnz_max]`).
//!
//! All four are ordinary [`Symbol`]s with a different [`SymbolKind`], so the
//! expression algebra treats them uniformly.

use std::fmt;
use std::sync::Arc;

/// The flavour of a [`Symbol`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SymbolKind {
    /// A plain program variable, loop index or loop-invariant term.
    Var,
    /// `λ_v`: value of `v` at the beginning of the analyzed loop iteration.
    Lambda,
    /// `Λ_v`: value of `v` at the entry of the analyzed loop.
    Entry,
    /// `v_max`: value of `v` after the loop has finished.
    PostMax,
}

/// An interned symbolic name.
///
/// Cloning is cheap (`Arc<str>`), and ordering is total so symbols can key
/// canonical term orderings inside [`crate::Expr`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol {
    /// Flavour of the symbol; participates in ordering so that `λ_v`,
    /// `Λ_v` and `v` are distinct atoms.
    pub kind: SymbolKind,
    /// The base program-variable name.
    pub name: Arc<str>,
}

impl Symbol {
    /// A plain variable symbol.
    pub fn var(name: &str) -> Self {
        Symbol {
            kind: SymbolKind::Var,
            name: Arc::from(name),
        }
    }

    /// The `λ_name` symbol (iteration-entry value).
    pub fn lambda(name: &str) -> Self {
        Symbol {
            kind: SymbolKind::Lambda,
            name: Arc::from(name),
        }
    }

    /// The `Λ_name` symbol (loop-entry value).
    pub fn entry(name: &str) -> Self {
        Symbol {
            kind: SymbolKind::Entry,
            name: Arc::from(name),
        }
    }

    /// The `name_max` symbol (post-loop value).
    pub fn post_max(name: &str) -> Self {
        Symbol {
            kind: SymbolKind::PostMax,
            name: Arc::from(name),
        }
    }

    /// True if this is a `λ_v` symbol.
    pub fn is_lambda(&self) -> bool {
        self.kind == SymbolKind::Lambda
    }

    /// The same base name reinterpreted with a different kind.
    pub fn with_kind(&self, kind: SymbolKind) -> Symbol {
        Symbol {
            kind,
            name: self.name.clone(),
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            SymbolKind::Var => write!(f, "{}", self.name),
            SymbolKind::Lambda => write!(f, "\u{3bb}_{}", self.name),
            SymbolKind::Entry => write!(f, "\u{39b}_{}", self.name),
            SymbolKind::PostMax => write!(f, "{}_max", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_kinds() {
        assert_eq!(Symbol::var("n").to_string(), "n");
        assert_eq!(Symbol::lambda("m").to_string(), "λ_m");
        assert_eq!(Symbol::entry("irownnz").to_string(), "Λ_irownnz");
        assert_eq!(Symbol::post_max("holder").to_string(), "holder_max");
    }

    #[test]
    fn kinds_are_distinct_atoms() {
        assert_ne!(Symbol::var("m"), Symbol::lambda("m"));
        assert_ne!(Symbol::lambda("m"), Symbol::entry("m"));
    }

    #[test]
    fn with_kind_preserves_name() {
        let s = Symbol::lambda("m").with_kind(SymbolKind::Entry);
        assert_eq!(s, Symbol::entry("m"));
    }

    #[test]
    fn ordering_is_total_and_stable() {
        // Kind-major ordering: all plain vars sort before λ symbols.
        let mut v = [Symbol::lambda("a"), Symbol::var("b"), Symbol::var("a")];
        v.sort();
        assert_eq!(v[0], Symbol::var("a"));
        assert_eq!(v[1], Symbol::var("b"));
        assert_eq!(v[2], Symbol::lambda("a"));
    }
}
