//! Symbolic expression and range algebra.
//!
//! This crate is the substitute for the symbolic-analysis layer of the Cetus
//! compiler used by the paper *Recurrence Analysis for Automatic
//! Parallelization of Subscripted Subscripts* (PPoPP'24): canonical symbolic
//! expressions, inclusive symbolic value ranges `[lb:ub]`, a range
//! environment implementing symbolic range propagation in the style of
//! Blume & Eigenmann, sign analysis, symbolic comparison, and the
//! multi-expression simplification used by the Phase-2 aggregation
//! (Section 3.3 of the paper).
//!
//! The central type is [`Expr`], a canonical sum-of-products over interned
//! [`Symbol`]s and opaque array reads. All arithmetic keeps expressions in
//! canonical form, so structural equality is semantic equality for the
//! polynomial fragment.
//!
//! # Example
//!
//! ```
//! use subsub_symbolic::{Expr, Range, RangeEnv, Sign};
//!
//! // 25*j + lambda_ntemp + 4
//! let e = Expr::int(25) * Expr::var("j") + Expr::lambda("ntemp") + Expr::int(4);
//! assert_eq!(e.to_string(), "25*j + \u{3bb}_ntemp + 4");
//!
//! let mut env = RangeEnv::new();
//! env.assume_nonneg(Expr::var("j").expect_sym());
//! // j >= 0  =>  25*j + 4 is positive
//! let probe = Expr::int(25) * Expr::var("j") + Expr::int(4);
//! assert_eq!(env.sign_of(&probe), Sign::Pos);
//! ```

pub mod cmp;
pub mod env;
pub mod expr;
pub mod range;
pub mod simplify;
pub mod sym;

pub use cmp::{cmp_exprs, SymOrdering};
pub use env::{RangeEnv, Sign};
pub use expr::{Atom, Expr, Term};
pub use range::{Bound, Interval, Pnn, Range};
pub use simplify::{hull, simplify_range_set};
pub use sym::{Symbol, SymbolKind};
