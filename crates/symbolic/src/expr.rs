//! Canonical symbolic expressions.
//!
//! [`Expr`] is a *sum of products*: a sorted list of [`Term`]s, each an
//! integer coefficient times a sorted multiset of [`Atom`]s (symbols or
//! opaque array reads). The constant part is the term with no atoms.
//! All constructors and operators maintain canonical form, which makes
//! structural equality coincide with semantic equality for the polynomial
//! fragment the paper's analysis manipulates (`25*j + λ_ntemp + 4`,
//! `125*iel`, `α*i + rl`, …).

use crate::sym::Symbol;
use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::sync::Arc;

/// A multiplicative atom: a symbol or an opaque array read such as
/// `A_i[i+1]` whose value the analysis does not interpret.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// A named symbolic value.
    Sym(Symbol),
    /// An uninterpreted array read, e.g. `A_i[1 + i]`.
    Read {
        /// Name of the array being read.
        array: Arc<str>,
        /// Subscript expressions, outermost dimension first.
        indices: Vec<Expr>,
    },
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Sym(s) => write!(f, "{s}"),
            Atom::Read { array, indices } => {
                write!(f, "{array}")?;
                for ix in indices {
                    write!(f, "[{ix}]")?;
                }
                Ok(())
            }
        }
    }
}

/// One term of a sum-of-products expression: `coeff * atoms[0] * atoms[1] …`.
///
/// The atom list is kept sorted; an empty list denotes the constant term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Term {
    /// Integer coefficient (never 0 in a canonical expression).
    pub coeff: i64,
    /// Sorted multiset of multiplicative atoms.
    pub atoms: Vec<Atom>,
}

impl Term {
    fn constant(c: i64) -> Term {
        Term {
            coeff: c,
            atoms: Vec::new(),
        }
    }

    /// Total degree of the term (number of atoms, counting multiplicity).
    pub fn degree(&self) -> usize {
        self.atoms.len()
    }

    fn mul(&self, other: &Term) -> Term {
        let mut atoms = Vec::with_capacity(self.atoms.len() + other.atoms.len());
        atoms.extend(self.atoms.iter().cloned());
        atoms.extend(other.atoms.iter().cloned());
        atoms.sort();
        Term {
            coeff: self.coeff * other.coeff,
            atoms,
        }
    }
}

/// A canonical symbolic expression: sum of [`Term`]s, sorted by atom lists,
/// with like terms merged and zero-coefficient terms removed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Expr {
    terms: Vec<Term>,
}

impl Expr {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// The integer constant `c`.
    pub fn int(c: i64) -> Expr {
        if c == 0 {
            Expr::default()
        } else {
            Expr {
                terms: vec![Term::constant(c)],
            }
        }
    }

    /// The constant zero.
    pub fn zero() -> Expr {
        Expr::default()
    }

    /// A single symbol.
    pub fn sym(s: Symbol) -> Expr {
        Expr {
            terms: vec![Term {
                coeff: 1,
                atoms: vec![Atom::Sym(s)],
            }],
        }
    }

    /// A plain program variable.
    pub fn var(name: &str) -> Expr {
        Expr::sym(Symbol::var(name))
    }

    /// The `λ_name` iteration-entry value.
    pub fn lambda(name: &str) -> Expr {
        Expr::sym(Symbol::lambda(name))
    }

    /// The `Λ_name` loop-entry value.
    pub fn entry(name: &str) -> Expr {
        Expr::sym(Symbol::entry(name))
    }

    /// The `name_max` post-loop value.
    pub fn post_max(name: &str) -> Expr {
        Expr::sym(Symbol::post_max(name))
    }

    /// An uninterpreted array read `array[indices…]`.
    pub fn read(array: &str, indices: Vec<Expr>) -> Expr {
        Expr {
            terms: vec![Term {
                coeff: 1,
                atoms: vec![Atom::Read {
                    array: Arc::from(array),
                    indices,
                }],
            }],
        }
    }

    /// Builds an expression from raw terms, canonicalizing.
    pub fn from_terms(terms: Vec<Term>) -> Expr {
        let mut e = Expr { terms };
        e.canonicalize();
        e
    }

    fn canonicalize(&mut self) {
        for t in &mut self.terms {
            t.atoms.sort();
        }
        self.terms.sort_by(|a, b| a.atoms.cmp(&b.atoms));
        let mut out: Vec<Term> = Vec::with_capacity(self.terms.len());
        for t in self.terms.drain(..) {
            match out.last_mut() {
                Some(last) if last.atoms == t.atoms => last.coeff += t.coeff,
                _ => out.push(t),
            }
        }
        out.retain(|t| t.coeff != 0);
        self.terms = out;
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// The terms of the canonical sum.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// True if the expression is the constant zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value, if the expression is a literal integer.
    pub fn as_int(&self) -> Option<i64> {
        match self.terms.len() {
            0 => Some(0),
            1 if self.terms[0].atoms.is_empty() => Some(self.terms[0].coeff),
            _ => None,
        }
    }

    /// The single symbol, if the expression is exactly `1 * sym`.
    pub fn as_sym(&self) -> Option<&Symbol> {
        match self.terms.as_slice() {
            [Term { coeff: 1, atoms }] => match atoms.as_slice() {
                [Atom::Sym(s)] => Some(s),
                _ => None,
            },
            _ => None,
        }
    }

    /// Like [`Expr::as_sym`] but panics with a clear message; convenient in
    /// tests and examples.
    pub fn expect_sym(&self) -> Symbol {
        self.as_sym()
            .cloned()
            .unwrap_or_else(|| panic!("expected a bare symbol, got {self}"))
    }

    /// The constant part of the sum.
    pub fn constant_part(&self) -> i64 {
        self.terms
            .iter()
            .find(|t| t.atoms.is_empty())
            .map(|t| t.coeff)
            .unwrap_or(0)
    }

    /// The expression minus its constant part.
    pub fn drop_constant(&self) -> Expr {
        Expr {
            terms: self
                .terms
                .iter()
                .filter(|t| !t.atoms.is_empty())
                .cloned()
                .collect(),
        }
    }

    /// All symbols appearing anywhere in the expression (including inside
    /// array-read subscripts).
    pub fn free_syms(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_syms(&mut out);
        out
    }

    fn collect_syms(&self, out: &mut BTreeSet<Symbol>) {
        for t in &self.terms {
            for a in &t.atoms {
                match a {
                    Atom::Sym(s) => {
                        out.insert(s.clone());
                    }
                    Atom::Read { indices, .. } => {
                        for ix in indices {
                            ix.collect_syms(out);
                        }
                    }
                }
            }
        }
    }

    /// True if `sym` occurs anywhere in the expression.
    pub fn contains_sym(&self, sym: &Symbol) -> bool {
        self.terms.iter().any(|t| {
            t.atoms.iter().any(|a| match a {
                Atom::Sym(s) => s == sym,
                Atom::Read { indices, .. } => indices.iter().any(|ix| ix.contains_sym(sym)),
            })
        })
    }

    /// True if any `λ_*` symbol occurs in the expression.
    pub fn contains_lambda(&self) -> bool {
        self.free_syms().iter().any(Symbol::is_lambda)
    }

    /// True if the expression contains an uninterpreted array read.
    pub fn contains_read(&self) -> bool {
        self.terms.iter().any(|t| {
            t.atoms.iter().any(|a| match a {
                Atom::Read { .. } => true,
                Atom::Sym(_) => false,
            })
        })
    }

    /// Maximum term degree (0 for constants).
    pub fn degree(&self) -> usize {
        self.terms.iter().map(Term::degree).max().unwrap_or(0)
    }

    /// Splits the expression as `coef * sym + rest` where neither `coef`
    /// nor `rest` contains `sym`. Returns `None` if `sym` occurs
    /// non-linearly (degree ≥ 2 in some term, or inside an array read).
    pub fn split_linear(&self, sym: &Symbol) -> Option<(Expr, Expr)> {
        let mut coef_terms = Vec::new();
        let mut rest_terms = Vec::new();
        for t in &self.terms {
            let occurrences = t
                .atoms
                .iter()
                .filter(|a| matches!(a, Atom::Sym(s) if s == sym))
                .count();
            let inside_read = t.atoms.iter().any(|a| match a {
                Atom::Read { indices, .. } => indices.iter().any(|ix| ix.contains_sym(sym)),
                Atom::Sym(_) => false,
            });
            if inside_read {
                return None;
            }
            match occurrences {
                0 => rest_terms.push(t.clone()),
                1 => {
                    let atoms: Vec<Atom> = t
                        .atoms
                        .iter()
                        .filter(|a| !matches!(a, Atom::Sym(s) if s == sym))
                        .cloned()
                        .collect();
                    coef_terms.push(Term {
                        coeff: t.coeff,
                        atoms,
                    });
                }
                _ => return None,
            }
        }
        Some((Expr::from_terms(coef_terms), Expr::from_terms(rest_terms)))
    }

    /// The integer coefficient of `sym` if the expression is affine in
    /// `sym` with a constant coefficient; `None` otherwise.
    pub fn int_coeff_of(&self, sym: &Symbol) -> Option<i64> {
        let (coef, _) = self.split_linear(sym)?;
        coef.as_int()
    }

    // ------------------------------------------------------------------
    // Substitution
    // ------------------------------------------------------------------

    /// Replaces every occurrence of `sym` (including inside array-read
    /// subscripts) with `replacement`.
    pub fn subst_sym(&self, sym: &Symbol, replacement: &Expr) -> Expr {
        let mut acc = Expr::zero();
        for t in &self.terms {
            let mut factor = Expr::int(t.coeff);
            for a in &t.atoms {
                let atom_expr = match a {
                    Atom::Sym(s) if s == sym => replacement.clone(),
                    Atom::Sym(s) => Expr::sym(s.clone()),
                    Atom::Read { array, indices } => {
                        let new_indices: Vec<Expr> = indices
                            .iter()
                            .map(|ix| ix.subst_sym(sym, replacement))
                            .collect();
                        Expr {
                            terms: vec![Term {
                                coeff: 1,
                                atoms: vec![Atom::Read {
                                    array: array.clone(),
                                    indices: new_indices,
                                }],
                            }],
                        }
                    }
                };
                factor = factor * atom_expr;
            }
            acc = acc + factor;
        }
        acc
    }

    /// Applies a sequence of symbol substitutions left to right.
    pub fn subst_all<'a, I>(&self, substs: I) -> Expr
    where
        I: IntoIterator<Item = (&'a Symbol, &'a Expr)>,
    {
        let mut out = self.clone();
        for (s, e) in substs {
            out = out.subst_sym(s, e);
        }
        out
    }

    /// Rewrites every symbol with kind `from` into kind `to`, e.g. turning
    /// `λ_v` into `Λ_v` when moving from Phase-1 to Phase-2.
    pub fn rekind(&self, from: crate::sym::SymbolKind, to: crate::sym::SymbolKind) -> Expr {
        let lambdas: Vec<Symbol> = self
            .free_syms()
            .into_iter()
            .filter(|s| s.kind == from)
            .collect();
        let mut out = self.clone();
        for s in lambdas {
            let replacement = Expr::sym(s.with_kind(to));
            out = out.subst_sym(&s, &replacement);
        }
        out
    }

    /// Evaluates the expression under a concrete valuation of symbols and
    /// array reads. Used by tests to validate algebra against brute force.
    pub fn eval<F, G>(&self, sym_val: &F, read_val: &G) -> i64
    where
        F: Fn(&Symbol) -> i64,
        G: Fn(&str, &[i64]) -> i64,
    {
        self.terms
            .iter()
            .map(|t| {
                let mut v = t.coeff;
                for a in &t.atoms {
                    v *= match a {
                        Atom::Sym(s) => sym_val(s),
                        Atom::Read { array, indices } => {
                            let ix: Vec<i64> =
                                indices.iter().map(|e| e.eval(sym_val, read_val)).collect();
                            read_val(array, &ix)
                        }
                    };
                }
                v
            })
            .sum()
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        let mut terms = self.terms;
        terms.extend(rhs.terms);
        Expr::from_terms(terms)
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        self + (-rhs)
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(mut self) -> Expr {
        for t in &mut self.terms {
            t.coeff = -t.coeff;
        }
        self
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        let mut terms = Vec::with_capacity(self.terms.len() * rhs.terms.len());
        for a in &self.terms {
            for b in &rhs.terms {
                terms.push(a.mul(b));
            }
        }
        Expr::from_terms(terms)
    }
}

impl From<i64> for Expr {
    fn from(c: i64) -> Expr {
        Expr::int(c)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        // Print non-constant terms in order, constant last, matching the
        // paper's style "25*j + λ_ntemp + 4".
        let (consts, vars): (Vec<&Term>, Vec<&Term>) =
            self.terms.iter().partition(|t| t.atoms.is_empty());
        let mut first = true;
        for t in vars.into_iter().chain(consts) {
            let (sign, mag) = if t.coeff < 0 {
                ("-", -t.coeff)
            } else {
                ("+", t.coeff)
            };
            if first {
                if sign == "-" {
                    write!(f, "-")?;
                }
                first = false;
            } else {
                write!(f, " {sign} ")?;
            }
            if t.atoms.is_empty() {
                write!(f, "{mag}")?;
            } else {
                if mag != 1 {
                    write!(f, "{mag}*")?;
                }
                let mut first_atom = true;
                for a in &t.atoms {
                    if !first_atom {
                        write!(f, "*")?;
                    }
                    first_atom = false;
                    write!(f, "{a}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j() -> Expr {
        Expr::var("j")
    }
    fn i() -> Expr {
        Expr::var("i")
    }

    #[test]
    fn constants_fold() {
        let e = Expr::int(3) + Expr::int(4);
        assert_eq!(e.as_int(), Some(7));
        assert!((Expr::int(5) - Expr::int(5)).is_zero());
    }

    #[test]
    fn like_terms_merge() {
        let e = j() + j() + Expr::int(2) * j();
        assert_eq!(e, Expr::int(4) * j());
    }

    #[test]
    fn cancellation_yields_zero() {
        let e = Expr::int(25) * j() + Expr::lambda("ntemp")
            - Expr::int(25) * j()
            - Expr::lambda("ntemp");
        assert!(e.is_zero());
    }

    #[test]
    fn display_matches_paper_style() {
        let e = Expr::int(25) * j() + Expr::lambda("ntemp") + Expr::int(4);
        assert_eq!(e.to_string(), "25*j + λ_ntemp + 4");
        let neg = Expr::int(-1) * j() + Expr::int(1);
        assert_eq!(neg.to_string(), "-j + 1");
    }

    #[test]
    fn product_distributes() {
        // (i + 1) * (i + 2) = i^2 + 3i + 2
        let e = (i() + Expr::int(1)) * (i() + Expr::int(2));
        let expected = i() * i() + Expr::int(3) * i() + Expr::int(2);
        assert_eq!(e, expected);
        assert_eq!(e.degree(), 2);
    }

    #[test]
    fn split_linear_basic() {
        // 125*iel + 24  ->  (125, 24) w.r.t. iel
        let iel = Symbol::var("iel");
        let e = Expr::int(125) * Expr::sym(iel.clone()) + Expr::int(24);
        let (coef, rest) = e.split_linear(&iel).unwrap();
        assert_eq!(coef.as_int(), Some(125));
        assert_eq!(rest.as_int(), Some(24));
    }

    #[test]
    fn split_linear_symbolic_coeff() {
        // alpha*i + rl  ->  (alpha, rl)
        let isym = Symbol::var("i");
        let e = Expr::var("alpha") * i() + Expr::var("rl");
        let (coef, rest) = e.split_linear(&isym).unwrap();
        assert_eq!(coef, Expr::var("alpha"));
        assert_eq!(rest, Expr::var("rl"));
    }

    #[test]
    fn split_linear_rejects_quadratic() {
        let isym = Symbol::var("i");
        let e = i() * i();
        assert!(e.split_linear(&isym).is_none());
    }

    #[test]
    fn split_linear_rejects_sym_inside_read() {
        let isym = Symbol::var("i");
        let e = Expr::read("A_i", vec![i() + Expr::int(1)]);
        assert!(e.split_linear(&isym).is_none());
    }

    #[test]
    fn subst_simple() {
        // (m + 1)[m := λ_m] = λ_m + 1
        let m = Symbol::var("m");
        let e = Expr::sym(m.clone()) + Expr::int(1);
        let out = e.subst_sym(&m, &Expr::lambda("m"));
        assert_eq!(out, Expr::lambda("m") + Expr::int(1));
    }

    #[test]
    fn subst_inside_read() {
        let isym = Symbol::var("i");
        let e = Expr::read("A_i", vec![i() + Expr::int(1)]) - Expr::read("A_i", vec![i()]);
        let out = e.subst_sym(&isym, &Expr::int(3));
        assert_eq!(
            out,
            Expr::read("A_i", vec![Expr::int(4)]) - Expr::read("A_i", vec![Expr::int(3)])
        );
    }

    #[test]
    fn subst_expands_powers() {
        // i^2 [i := j+1] = j^2 + 2j + 1
        let isym = Symbol::var("i");
        let e = i() * i();
        let out = e.subst_sym(&isym, &(j() + Expr::int(1)));
        assert_eq!(out, j() * j() + Expr::int(2) * j() + Expr::int(1));
    }

    #[test]
    fn rekind_lambda_to_entry() {
        use crate::sym::SymbolKind;
        let e = Expr::lambda("ntemp") + Expr::int(124);
        let out = e.rekind(SymbolKind::Lambda, SymbolKind::Entry);
        assert_eq!(out, Expr::entry("ntemp") + Expr::int(124));
    }

    #[test]
    fn eval_matches_structure() {
        let e = Expr::int(25) * j() + Expr::var("n") * Expr::var("n") - Expr::int(7);
        let v = e.eval(
            &|s: &Symbol| match &*s.name {
                "j" => 2,
                "n" => 3,
                _ => 0,
            },
            &|_, _| 0,
        );
        assert_eq!(v, 25 * 2 + 9 - 7);
    }

    #[test]
    fn free_syms_includes_read_indices() {
        let e = Expr::read("A_i", vec![i() + Expr::int(1)]);
        assert!(e.free_syms().contains(&Symbol::var("i")));
        assert!(e.contains_read());
    }
}
