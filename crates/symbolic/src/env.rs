//! Range environment and sign analysis.
//!
//! The analysis answers questions like *"is `k` a Positive or Non-Negative
//! (PNN) value?"* or *"does `α + rl ≥ ru` hold?"* under a set of assumptions
//! about program symbols (loop bounds are non-negative, sizes are positive,
//! …). [`RangeEnv`] carries those assumptions as symbolic [`Interval`]s and
//! implements a conservative sign analysis over canonical expressions —
//! the fragment of symbolic range propagation [Blume & Eigenmann, IPPS'95]
//! that Phase-2 relies on.

use crate::expr::{Atom, Expr, Term};
use crate::range::{Bound, Interval};
use crate::sym::Symbol;
use std::collections::HashMap;

/// Conservative sign of a symbolic expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Known `< 0`.
    Neg,
    /// Known `<= 0`.
    NonPos,
    /// Known `== 0`.
    Zero,
    /// Known `>= 0`.
    NonNeg,
    /// Known `> 0`.
    Pos,
    /// Nothing is known.
    Unknown,
}

impl Sign {
    /// Sign of an integer constant.
    pub fn of_int(c: i64) -> Sign {
        match c {
            0 => Sign::Zero,
            c if c > 0 => Sign::Pos,
            _ => Sign::Neg,
        }
    }

    /// Sign of a sum `x + y` given the signs of `x` and `y`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Sign) -> Sign {
        use Sign::*;
        match (self, other) {
            (Zero, s) | (s, Zero) => s,
            (Pos, Pos) | (Pos, NonNeg) | (NonNeg, Pos) => Pos,
            (NonNeg, NonNeg) => NonNeg,
            (Neg, Neg) | (Neg, NonPos) | (NonPos, Neg) => Neg,
            (NonPos, NonPos) => NonPos,
            _ => Unknown,
        }
    }

    /// Sign of a product `x * y` given the signs of `x` and `y`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Sign) -> Sign {
        use Sign::*;
        match (self, other) {
            (Zero, _) | (_, Zero) => Zero,
            (Unknown, _) | (_, Unknown) => Unknown,
            (Pos, s) | (s, Pos) => s,
            (NonNeg, NonNeg) => NonNeg,
            (NonNeg, Neg) | (Neg, NonNeg) | (NonNeg, NonPos) | (NonPos, NonNeg) => NonPos,
            (Neg, Neg) | (NonPos, NonPos) => Pos_or_nonneg(self, other),
            (Neg, NonPos) | (NonPos, Neg) => NonNeg,
        }
    }

    /// True if the sign proves `>= 0`.
    pub fn is_nonneg(self) -> bool {
        matches!(self, Sign::Zero | Sign::NonNeg | Sign::Pos)
    }

    /// True if the sign proves `> 0`.
    pub fn is_pos(self) -> bool {
        matches!(self, Sign::Pos)
    }

    /// True if the sign proves `<= 0`.
    pub fn is_nonpos(self) -> bool {
        matches!(self, Sign::Zero | Sign::NonPos | Sign::Neg)
    }
}

/// Helper resolving the (Neg,Neg)/(NonPos,NonPos) product cases.
#[allow(non_snake_case)]
fn Pos_or_nonneg(a: Sign, b: Sign) -> Sign {
    if a == Sign::Neg && b == Sign::Neg {
        Sign::Pos
    } else {
        Sign::NonNeg
    }
}

/// A set of assumptions mapping symbols to symbolic intervals, with a
/// conservative sign oracle on top.
#[derive(Debug, Clone, Default)]
pub struct RangeEnv {
    intervals: HashMap<Symbol, Interval>,
}

/// Recursion fuel for sign analysis: interval bounds may themselves mention
/// symbols with interval assumptions.
const SIGN_DEPTH: u32 = 8;

impl RangeEnv {
    /// An empty environment (everything `Unknown` except constants).
    pub fn new() -> RangeEnv {
        RangeEnv::default()
    }

    /// Records `sym ∈ interval`, replacing any previous assumption.
    pub fn assume(&mut self, sym: Symbol, interval: Interval) {
        self.intervals.insert(sym, interval);
    }

    /// Records `sym >= 0`.
    pub fn assume_nonneg(&mut self, sym: Symbol) {
        self.assume(sym, Interval::at_least(Expr::int(0)));
    }

    /// Records `sym >= 1`.
    pub fn assume_pos(&mut self, sym: Symbol) {
        self.assume(sym, Interval::at_least(Expr::int(1)));
    }

    /// Records `lo <= sym <= hi`.
    pub fn assume_range(&mut self, sym: Symbol, lo: Expr, hi: Expr) {
        self.assume(sym, Interval::finite(lo, hi));
    }

    /// The assumed interval for `sym`, if any.
    pub fn interval_of(&self, sym: &Symbol) -> Option<&Interval> {
        self.intervals.get(sym)
    }

    /// All assumed symbols, for diagnostics.
    pub fn symbols(&self) -> impl Iterator<Item = &Symbol> {
        self.intervals.keys()
    }

    /// Conservative sign of `e` under the environment's assumptions.
    pub fn sign_of(&self, e: &Expr) -> Sign {
        self.sign_of_depth(e, SIGN_DEPTH)
    }

    fn sign_of_depth(&self, e: &Expr, depth: u32) -> Sign {
        if let Some(c) = e.as_int() {
            return Sign::of_int(c);
        }
        if depth == 0 {
            return Sign::Unknown;
        }
        let mut acc = Sign::Zero;
        for t in e.terms() {
            acc = acc.add(self.sign_of_term(t, depth));
            if acc == Sign::Unknown {
                return Sign::Unknown;
            }
        }
        acc
    }

    fn sign_of_term(&self, t: &Term, depth: u32) -> Sign {
        let mut s = Sign::of_int(t.coeff);
        for a in &t.atoms {
            s = s.mul(self.sign_of_atom(a, depth));
            if s == Sign::Unknown {
                return Sign::Unknown;
            }
        }
        s
    }

    fn sign_of_atom(&self, a: &Atom, depth: u32) -> Sign {
        match a {
            Atom::Sym(sym) => self.sign_of_sym(sym, depth),
            Atom::Read { .. } => Sign::Unknown,
        }
    }

    fn sign_of_sym(&self, sym: &Symbol, depth: u32) -> Sign {
        let Some(iv) = self.intervals.get(sym) else {
            return Sign::Unknown;
        };
        // Lower-bound-driven positivity.
        let lower = match &iv.lo {
            Bound::NegInf => Sign::Unknown,
            Bound::PosInf => Sign::Pos, // degenerate but sound: empty range
            Bound::Fin(lo) => self.sign_of_depth(lo, depth - 1),
        };
        if lower.is_pos() {
            return Sign::Pos;
        }
        if lower.is_nonneg() {
            // Could still be zero or positive.
            return Sign::NonNeg;
        }
        // Upper-bound-driven negativity.
        let upper = match &iv.hi {
            Bound::PosInf => Sign::Unknown,
            Bound::NegInf => Sign::Neg,
            Bound::Fin(hi) => self.sign_of_depth(hi, depth - 1),
        };
        match upper {
            Sign::Neg => Sign::Neg,
            Sign::Zero | Sign::NonPos => Sign::NonPos,
            _ => Sign::Unknown,
        }
    }

    /// Proves `a <= b` under the assumptions (i.e. `b - a >= 0`).
    pub fn proves_le(&self, a: &Expr, b: &Expr) -> bool {
        self.sign_of(&(b.clone() - a.clone())).is_nonneg()
    }

    /// Proves `a < b` under the assumptions (i.e. `b - a > 0`).
    pub fn proves_lt(&self, a: &Expr, b: &Expr) -> bool {
        self.sign_of(&(b.clone() - a.clone())).is_pos()
    }

    /// Proves `a >= b`.
    pub fn proves_ge(&self, a: &Expr, b: &Expr) -> bool {
        self.proves_le(b, a)
    }

    /// Proves `a > b`.
    pub fn proves_gt(&self, a: &Expr, b: &Expr) -> bool {
        self.proves_lt(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signs() {
        let env = RangeEnv::new();
        assert_eq!(env.sign_of(&Expr::int(3)), Sign::Pos);
        assert_eq!(env.sign_of(&Expr::int(0)), Sign::Zero);
        assert_eq!(env.sign_of(&Expr::int(-2)), Sign::Neg);
    }

    #[test]
    fn unknown_symbol_is_unknown() {
        let env = RangeEnv::new();
        assert_eq!(env.sign_of(&Expr::var("x")), Sign::Unknown);
    }

    #[test]
    fn nonneg_assumption_propagates() {
        let mut env = RangeEnv::new();
        env.assume_nonneg(Symbol::var("j"));
        let e = Expr::int(25) * Expr::var("j") + Expr::int(4);
        assert_eq!(env.sign_of(&e), Sign::Pos);
        let e2 = Expr::int(25) * Expr::var("j");
        assert_eq!(env.sign_of(&e2), Sign::NonNeg);
    }

    #[test]
    fn negative_coefficient() {
        let mut env = RangeEnv::new();
        env.assume_pos(Symbol::var("n"));
        let e = Expr::int(-3) * Expr::var("n");
        assert_eq!(env.sign_of(&e), Sign::Neg);
    }

    #[test]
    fn mixed_sum_is_unknown() {
        let mut env = RangeEnv::new();
        env.assume_pos(Symbol::var("n"));
        let e = Expr::var("n") - Expr::var("m");
        assert_eq!(env.sign_of(&e), Sign::Unknown);
    }

    #[test]
    fn product_of_nonnegs() {
        let mut env = RangeEnv::new();
        env.assume_nonneg(Symbol::var("a"));
        env.assume_nonneg(Symbol::var("b"));
        let e = Expr::var("a") * Expr::var("b");
        assert_eq!(env.sign_of(&e), Sign::NonNeg);
    }

    #[test]
    fn symbolic_lower_bound_chain() {
        // m >= n and n >= 1  =>  m > 0
        let mut env = RangeEnv::new();
        env.assume(Symbol::var("m"), Interval::at_least(Expr::var("n")));
        env.assume_pos(Symbol::var("n"));
        assert_eq!(env.sign_of(&Expr::var("m")), Sign::Pos);
    }

    #[test]
    fn upper_bound_negativity() {
        let mut env = RangeEnv::new();
        env.assume(Symbol::var("d"), Interval::at_most(Expr::int(-1)));
        assert_eq!(env.sign_of(&Expr::var("d")), Sign::Neg);
        assert_eq!(env.sign_of(&(Expr::int(-2) * Expr::var("d"))), Sign::Pos);
    }

    #[test]
    fn proves_comparisons() {
        let mut env = RangeEnv::new();
        env.assume_nonneg(Symbol::var("rl"));
        // alpha = 125, rl in [0:?], check 125 + 0 >= 124
        let lhs = Expr::int(125) + Expr::int(0);
        let rhs = Expr::int(124);
        assert!(env.proves_ge(&lhs, &rhs));
        assert!(env.proves_gt(&lhs, &rhs));
        assert!(!env.proves_lt(&lhs, &rhs));
    }

    #[test]
    fn le_on_equal_expressions() {
        let env = RangeEnv::new();
        let a = Expr::var("x") + Expr::int(1);
        assert!(env.proves_le(&a, &a));
        assert!(!env.proves_lt(&a, &a));
    }

    #[test]
    fn sign_add_table_sound() {
        use Sign::*;
        assert_eq!(Pos.add(NonNeg), Pos);
        assert_eq!(NonNeg.add(NonNeg), NonNeg);
        assert_eq!(Neg.add(NonPos), Neg);
        assert_eq!(Pos.add(Neg), Unknown);
        assert_eq!(Zero.add(Unknown), Unknown);
    }

    #[test]
    fn sign_mul_table_sound() {
        use Sign::*;
        assert_eq!(Neg.mul(Neg), Pos);
        assert_eq!(NonPos.mul(NonPos), NonNeg);
        assert_eq!(Neg.mul(NonNeg), NonPos);
        assert_eq!(Zero.mul(Unknown), Zero);
        assert_eq!(Pos.mul(Unknown), Unknown);
    }
}
