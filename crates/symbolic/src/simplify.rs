//! Multi-expression simplification (Phase-2, Section 3.3 of the paper).
//!
//! When Phase-1 produces *several* value ranges for the same array region —
//! as for `idel` in the UA example, where six assignments yield six ranges
//! `(4+25j+λ : 24+25j+λ), (25j+λ : 20+25j+λ), …` — Phase-2 "attempts to
//! simplify the expressions and deduce a single expression that represents
//! the range of values assigned". That simplification is the provable hull
//! of the set: the ranges merge into one exactly when every pairwise bound
//! comparison is decidable under the environment, e.g. after the `j`-loop
//! aggregation the six ranges collapse to `[Λ_ntemp : 124+Λ_ntemp]`.

use crate::env::RangeEnv;
use crate::range::Range;

/// Provable hull of a set of ranges: the smallest `[min lb : max ub]` when
/// all the necessary bound comparisons are decidable; `None` otherwise
/// (simplification "not yet successful" in the paper's terms).
pub fn hull(ranges: &[Range], env: &RangeEnv) -> Option<Range> {
    let (first, rest) = ranges.split_first()?;
    let mut acc = first.clone();
    for r in rest {
        acc = acc.union(r, env)?;
    }
    Some(acc)
}

/// Simplifies a set of ranges into a single representative range if
/// possible. Currently identical to [`hull`]; kept as a separate entry
/// point because Phase-2 calls it in a context where future strategies
/// (e.g. stride-aware unions) may apply.
pub fn simplify_range_set(ranges: &[Range], env: &RangeEnv) -> Option<Range> {
    hull(ranges, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::sym::Symbol;

    /// The six `idel` ranges of the UA example after aggregating the
    /// innermost `i`-loop and then the `j`-loop (j ∈ [0:4]); they must
    /// simplify to `[Λ_ntemp : 124 + Λ_ntemp]`.
    #[test]
    fn ua_idel_ranges_simplify() {
        let l = Expr::entry("ntemp");
        let j = Symbol::var("j");
        let mk = |lo_c: i64, lo_j: i64, hi_c: i64, hi_j: i64| {
            Range::new(
                Expr::int(lo_j) * Expr::sym(j.clone()) + l.clone() + Expr::int(lo_c),
                Expr::int(hi_j) * Expr::sym(j.clone()) + l.clone() + Expr::int(hi_c),
            )
        };
        // Phase-1 ranges of the j-loop body (per paper Section 3.3):
        let per_iter = [
            mk(4, 25, 24, 25),  // idel[iel][0]
            mk(0, 25, 20, 25),  // idel[iel][1]
            mk(20, 25, 24, 25), // idel[iel][2]
            mk(0, 25, 4, 25),   // idel[iel][3]
            mk(100, 5, 104, 5), // idel[iel][4]
            mk(0, 5, 4, 5),     // idel[iel][5]
        ];
        // Aggregate j over [0:4] first (subst_sym_range), then hull.
        let env = RangeEnv::new();
        let jr = Range::ints(0, 4);
        let aggregated: Vec<Range> = per_iter
            .iter()
            .map(|r| r.subst_sym_range(&j, &jr, &env).unwrap())
            .collect();
        let out = simplify_range_set(&aggregated, &env).unwrap();
        assert_eq!(out, Range::new(l.clone(), l + Expr::int(124)));
    }

    #[test]
    fn hull_of_single_range_is_identity() {
        let env = RangeEnv::new();
        let r = Range::ints(3, 9);
        assert_eq!(hull(std::slice::from_ref(&r), &env), Some(r));
    }

    #[test]
    fn hull_of_empty_set_is_none() {
        let env = RangeEnv::new();
        assert_eq!(hull(&[], &env), None);
    }

    #[test]
    fn hull_fails_on_incomparable_bounds() {
        let env = RangeEnv::new();
        let a = Range::ints(0, 5);
        let b = Range::point(Expr::var("x"));
        assert_eq!(hull(&[a, b], &env), None);
    }

    #[test]
    fn hull_of_constant_ranges() {
        let env = RangeEnv::new();
        let rs = [Range::ints(10, 20), Range::ints(0, 5), Range::ints(15, 30)];
        assert_eq!(hull(&rs, &env), Some(Range::ints(0, 30)));
    }
}
