//! Symbolic value ranges.
//!
//! Two range flavours are used by the analysis:
//!
//! * [`Range`] — the paper's inclusive `[lb:ub]` with *finite symbolic*
//!   bounds; the value representation stored in the Symbolic Value
//!   Dictionary and aggregated by Phase-2.
//! * [`Interval`] — a possibly half-open assumption interval used by the
//!   [`crate::RangeEnv`] for sign analysis (`n ∈ [1, +∞)`).

use crate::env::RangeEnv;
use crate::expr::Expr;
use crate::sym::Symbol;
use std::fmt;

/// Positive-or-Non-Negative classification of a value or range
/// (the paper's PNN placeholder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pnn {
    /// Known strictly positive.
    Positive,
    /// Known non-negative (may be zero).
    NonNegative,
}

/// One end of an [`Interval`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    /// Unbounded below.
    NegInf,
    /// A finite symbolic bound.
    Fin(Expr),
    /// Unbounded above.
    PosInf,
}

/// An assumption interval with possibly infinite ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interval {
    /// Lower end (inclusive when finite).
    pub lo: Bound,
    /// Upper end (inclusive when finite).
    pub hi: Bound,
}

impl Interval {
    /// `[lo, +∞)`.
    pub fn at_least(lo: Expr) -> Interval {
        Interval {
            lo: Bound::Fin(lo),
            hi: Bound::PosInf,
        }
    }

    /// `(-∞, hi]`.
    pub fn at_most(hi: Expr) -> Interval {
        Interval {
            lo: Bound::NegInf,
            hi: Bound::Fin(hi),
        }
    }

    /// `[lo, hi]`.
    pub fn finite(lo: Expr, hi: Expr) -> Interval {
        Interval {
            lo: Bound::Fin(lo),
            hi: Bound::Fin(hi),
        }
    }

    /// `(-∞, +∞)`.
    pub fn top() -> Interval {
        Interval {
            lo: Bound::NegInf,
            hi: Bound::PosInf,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.lo {
            Bound::NegInf => write!(f, "(-inf")?,
            Bound::Fin(e) => write!(f, "[{e}")?,
            Bound::PosInf => write!(f, "(+inf")?,
        }
        write!(f, ", ")?;
        match &self.hi {
            Bound::NegInf => write!(f, "-inf)"),
            Bound::Fin(e) => write!(f, "{e}]"),
            Bound::PosInf => write!(f, "+inf)"),
        }
    }
}

/// The paper's inclusive symbolic value range `[lb:ub]`.
///
/// A degenerate range with `lo == hi` represents a single symbolic value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Range {
    /// Inclusive symbolic lower bound.
    pub lo: Expr,
    /// Inclusive symbolic upper bound.
    pub hi: Expr,
}

impl Range {
    /// The degenerate range `[e:e]`.
    pub fn point(e: Expr) -> Range {
        Range {
            lo: e.clone(),
            hi: e,
        }
    }

    /// The range `[lo:hi]`.
    pub fn new(lo: Expr, hi: Expr) -> Range {
        Range { lo, hi }
    }

    /// The constant range `[a:b]`.
    pub fn ints(a: i64, b: i64) -> Range {
        Range::new(Expr::int(a), Expr::int(b))
    }

    /// True if the range is a single symbolic value.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// The single value if the range is degenerate.
    pub fn as_point(&self) -> Option<&Expr> {
        if self.is_point() {
            Some(&self.lo)
        } else {
            None
        }
    }

    /// `hi - lo`; zero for a point range.
    pub fn width(&self) -> Expr {
        self.hi.clone() - self.lo.clone()
    }

    /// Element-wise sum of ranges: `[a:b] + [c:d] = [a+c : b+d]`.
    pub fn add(&self, other: &Range) -> Range {
        Range::new(
            self.lo.clone() + other.lo.clone(),
            self.hi.clone() + other.hi.clone(),
        )
    }

    /// Shifts both bounds by `e`.
    pub fn add_expr(&self, e: &Expr) -> Range {
        Range::new(self.lo.clone() + e.clone(), self.hi.clone() + e.clone())
    }

    /// Negates the range: `-[a:b] = [-b:-a]`.
    pub fn neg(&self) -> Range {
        Range::new(-self.hi.clone(), -self.lo.clone())
    }

    /// Scales by an integer constant, swapping bounds when negative.
    pub fn mul_int(&self, c: i64) -> Range {
        if c >= 0 {
            Range::new(
                Expr::int(c) * self.lo.clone(),
                Expr::int(c) * self.hi.clone(),
            )
        } else {
            Range::new(
                Expr::int(c) * self.hi.clone(),
                Expr::int(c) * self.lo.clone(),
            )
        }
    }

    /// Scales by an expression whose sign is known from `env`; `None` when
    /// the sign is unknown (the scaled range would be unordered).
    pub fn mul_expr(&self, e: &Expr, env: &RangeEnv) -> Option<Range> {
        if let Some(c) = e.as_int() {
            return Some(self.mul_int(c));
        }
        let s = env.sign_of(e);
        if s.is_nonneg() {
            Some(Range::new(
                e.clone() * self.lo.clone(),
                e.clone() * self.hi.clone(),
            ))
        } else if s.is_nonpos() {
            Some(Range::new(
                e.clone() * self.hi.clone(),
                e.clone() * self.lo.clone(),
            ))
        } else {
            None
        }
    }

    /// Substitutes a symbol with an expression in both bounds.
    pub fn subst_sym(&self, sym: &Symbol, e: &Expr) -> Range {
        Range::new(self.lo.subst_sym(sym, e), self.hi.subst_sym(sym, e))
    }

    /// Substitutes a symbol that ranges over `r` (e.g. the loop index over
    /// `[0:N-1]`), producing the hull of the bound expressions over that
    /// range. Requires both bounds to be *affine* in `sym`; the coefficient
    /// sign (from `env`) decides which end of `r` minimizes/maximizes each
    /// bound. Returns `None` if a coefficient sign is unknown.
    pub fn subst_sym_range(&self, sym: &Symbol, r: &Range, env: &RangeEnv) -> Option<Range> {
        let lo = extreme_over(&self.lo, sym, r, env, false)?;
        let hi = extreme_over(&self.hi, sym, r, env, true)?;
        Some(Range::new(lo, hi))
    }

    /// The range is PNN if its lower bound is provably positive
    /// ([`Pnn::Positive`]) or non-negative ([`Pnn::NonNegative`]).
    pub fn pnn(&self, env: &RangeEnv) -> Option<Pnn> {
        let s = env.sign_of(&self.lo);
        if s.is_pos() {
            Some(Pnn::Positive)
        } else if s.is_nonneg() {
            Some(Pnn::NonNegative)
        } else {
            None
        }
    }

    /// Proves `self` entirely below `other`: `[a:b] < [c:d]` iff `b < c`
    /// (the paper's range comparison from Definition 1).
    pub fn lt(&self, other: &Range, env: &RangeEnv) -> bool {
        env.proves_lt(&self.hi, &other.lo)
    }

    /// Proves `self` entirely at-or-below `other`: `b <= c`.
    pub fn le(&self, other: &Range, env: &RangeEnv) -> bool {
        env.proves_le(&self.hi, &other.lo)
    }

    /// Hull with another range, when both bound comparisons are provable.
    pub fn union(&self, other: &Range, env: &RangeEnv) -> Option<Range> {
        let lo = pick_min(&self.lo, &other.lo, env)?;
        let hi = pick_max(&self.hi, &other.hi, env)?;
        Some(Range::new(lo, hi))
    }
}

/// Minimum/maximum of an affine expression of `sym` as `sym` ranges over `r`.
fn extreme_over(e: &Expr, sym: &Symbol, r: &Range, env: &RangeEnv, want_max: bool) -> Option<Expr> {
    if !e.contains_sym(sym) {
        return Some(e.clone());
    }
    let (coef, rest) = e.split_linear(sym)?;
    let s = env.sign_of(&coef);
    let at = |end: &Expr| coef.clone() * end.clone() + rest.clone();
    if s.is_nonneg() {
        Some(if want_max { at(&r.hi) } else { at(&r.lo) })
    } else if s.is_nonpos() {
        Some(if want_max { at(&r.lo) } else { at(&r.hi) })
    } else {
        None
    }
}

fn pick_min(a: &Expr, b: &Expr, env: &RangeEnv) -> Option<Expr> {
    if env.proves_le(a, b) {
        Some(a.clone())
    } else if env.proves_le(b, a) {
        Some(b.clone())
    } else {
        None
    }
}

fn pick_max(a: &Expr, b: &Expr, env: &RangeEnv) -> Option<Expr> {
    if env.proves_ge(a, b) {
        Some(a.clone())
    } else if env.proves_ge(b, a) {
        Some(b.clone())
    } else {
        None
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_point() {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "[{}:{}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_width() {
        let p = Range::point(Expr::var("x"));
        assert!(p.is_point());
        assert!(p.width().is_zero());
        let r = Range::ints(0, 124);
        assert_eq!(r.width().as_int(), Some(124));
    }

    #[test]
    fn add_ranges() {
        let a = Range::ints(0, 4);
        let b = Range::ints(10, 20);
        assert_eq!(a.add(&b), Range::ints(10, 24));
    }

    #[test]
    fn mul_int_swaps_on_negative() {
        let r = Range::ints(1, 5);
        assert_eq!(r.mul_int(-2), Range::ints(-10, -2));
        assert_eq!(r.mul_int(3), Range::ints(3, 15));
    }

    #[test]
    fn pnn_classification() {
        let mut env = RangeEnv::new();
        env.assume_nonneg(Symbol::var("j"));
        assert_eq!(Range::ints(0, 124).pnn(&env), Some(Pnn::NonNegative));
        assert_eq!(Range::ints(1, 5).pnn(&env), Some(Pnn::Positive));
        assert_eq!(
            Range::new(Expr::var("j"), Expr::var("j") + Expr::int(3)).pnn(&env),
            Some(Pnn::NonNegative)
        );
        assert_eq!(Range::ints(-1, 5).pnn(&env), None);
    }

    #[test]
    fn range_comparison_definition1() {
        // [lb:ub] < [lb':ub'] iff ub < lb'
        let env = RangeEnv::new();
        let a = Range::ints(0, 9);
        let b = Range::ints(10, 20);
        assert!(a.lt(&b, &env));
        assert!(a.le(&b, &env));
        let c = Range::ints(9, 20);
        assert!(!a.lt(&c, &env));
        assert!(a.le(&c, &env));
    }

    #[test]
    fn subst_sym_range_affine_positive_coeff() {
        // [25*j + L : 25*j + L + 20] over j in [0:4]  ->  [L : L+120]
        let j = Symbol::var("j");
        let l = Expr::entry("ntemp");
        let r = Range::new(
            Expr::int(25) * Expr::sym(j.clone()) + l.clone(),
            Expr::int(25) * Expr::sym(j.clone()) + l.clone() + Expr::int(20),
        );
        let env = RangeEnv::new();
        let out = r.subst_sym_range(&j, &Range::ints(0, 4), &env).unwrap();
        assert_eq!(out, Range::new(l.clone(), l + Expr::int(120)));
    }

    #[test]
    fn subst_sym_range_negative_coeff() {
        // [-2*j : -2*j + 1] over j in [0:3]  ->  [-6 : 1]
        let j = Symbol::var("j");
        let r = Range::new(
            Expr::int(-2) * Expr::sym(j.clone()),
            Expr::int(-2) * Expr::sym(j.clone()) + Expr::int(1),
        );
        let env = RangeEnv::new();
        let out = r.subst_sym_range(&j, &Range::ints(0, 3), &env).unwrap();
        assert_eq!(out, Range::ints(-6, 1));
    }

    #[test]
    fn subst_sym_range_unknown_coeff_fails() {
        let j = Symbol::var("j");
        let a = Expr::var("alpha"); // unknown sign
        let r = Range::point(a * Expr::sym(j.clone()));
        let env = RangeEnv::new();
        assert!(r.subst_sym_range(&j, &Range::ints(0, 3), &env).is_none());
    }

    #[test]
    fn union_hull() {
        let env = RangeEnv::new();
        let a = Range::ints(0, 9);
        let b = Range::ints(5, 20);
        assert_eq!(a.union(&b, &env), Some(Range::ints(0, 20)));
        // Symbolically incomparable bounds -> None
        let c = Range::point(Expr::var("x"));
        assert!(a.union(&c, &env).is_none());
    }

    #[test]
    fn display_matches_paper() {
        let r = Range::new(Expr::int(0), Expr::var("num_rows") - Expr::int(1));
        assert_eq!(r.to_string(), "[0:num_rows - 1]");
    }
}
