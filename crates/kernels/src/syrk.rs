//! syrk (PolyBench 4.2): symmetric rank-k update `C = α·A·Aᵀ + β·C`.
//! The outer row loop is classically parallel — plain affine subscripts
//! (Figure 17 credits plain Cetus).

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};

/// syrk source with 2-D arrays.
pub const SOURCE: &str = r#"
void syrk(int n, int m, double alpha, double beta,
          double C[1200][1200], double A[1200][1000]) {
    int i; int j; int k;
    for (i = 0; i < n; i++) {
        for (j = 0; j <= i; j++) {
            C[i][j] = C[i][j] * beta;
        }
        for (k = 0; k < m; k++) {
            for (j = 0; j <= i; j++) {
                C[i][j] = C[i][j] + alpha * A[i][k] * A[j][k];
            }
        }
    }
}
"#;

/// The syrk benchmark.
pub struct Syrk;

fn size_for(dataset: &str) -> (usize, usize) {
    match dataset {
        "LARGE" => (500, 400),
        "EXTRALARGE" => (700, 550),
        "test" => (12, 9),
        other => panic!("unknown syrk dataset {other}"),
    }
}

impl Kernel for Syrk {
    fn name(&self) -> &'static str {
        "syrk"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "syrk"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["EXTRALARGE", "LARGE"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let (n, m) = size_for(dataset);
        let a: Vec<f64> = (0..n * m).map(|i| ((i % 19) as f64 - 9.0) * 0.05).collect();
        let c0: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 * 0.1).collect();
        Box::new(SyrkInstance {
            n,
            m,
            a,
            c: c0.clone(),
            c0,
        })
    }
}

struct SyrkInstance {
    n: usize,
    m: usize,
    a: Vec<f64>,
    c: Vec<f64>,
    c0: Vec<f64>,
}

impl SyrkInstance {
    #[inline]
    fn row(&self, i: usize, c: *mut f64) {
        let (n, m) = (self.n, self.m);
        for j in 0..=i {
            // SAFETY: row i is written only by iteration i.
            unsafe {
                *c.add(i * n + j) *= 0.9;
            }
        }
        for k in 0..m {
            let aik = self.a[i * m + k];
            for j in 0..=i {
                unsafe {
                    *c.add(i * n + j) += 1.1 * aik * self.a[j * m + k];
                }
            }
        }
    }
}

impl KernelInstance for SyrkInstance {
    fn run_serial(&mut self) {
        let c = self.c.as_mut_ptr();
        for i in 0..self.n {
            self.row(i, c);
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        let c = SendPtr::new(self.c.as_mut_ptr());
        let this: &SyrkInstance = self;
        pool.parallel_for(this.n, sched, |i| {
            this.row(i, c.get());
        });
    }

    fn run_inner(&mut self, pool: &ThreadPool, sched: Schedule) {
        self.run_outer(pool, sched);
    }

    fn outer_costs(&self) -> Vec<f64> {
        // Triangular work: row i costs ~ (i+1)·(m+1).
        (0..self.n)
            .map(|i| (i + 1) as f64 * (self.m + 1) as f64 * 3.0)
            .collect()
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        vec![InnerGroup {
            serial: 0.0,
            inner: self.outer_costs(),
        }]
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.2 // O(n³) compute over O(n²) data
    }

    fn checksum(&self) -> f64 {
        self.c.iter().sum()
    }

    fn reset(&mut self) {
        self.c.copy_from_slice(&self.c0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;

    #[test]
    fn parallel_matches_serial() {
        let pool = ThreadPool::new(4);
        let mut inst = Syrk.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();
        inst.reset();
        // Triangular row costs are imbalanced: exercise dynamic.
        inst.run_outer(&pool, Schedule::dynamic_default());
        assert!(close(inst.checksum(), reference));
    }

    #[test]
    fn triangular_costs_grow() {
        let inst = Syrk.prepare("test");
        let costs = inst.outer_costs();
        assert!(costs.first().unwrap() < costs.last().unwrap());
    }
}
