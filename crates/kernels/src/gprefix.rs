//! Guard-updated prefix recurrence: a segment kernel whose column-pointer
//! fill uses a *symbolic* step of statically unknown sign — the
//! conditionally-monotone recurrence of *Inductive Loop Analysis*
//! (arXiv 2511.06052).
//!
//! `off[i+1] = off[i] + gstep` is monotone only when `gstep >= 1`, a fact
//! no compile-time analysis can establish. The new algorithm records the
//! property *conditionally* (`PropertyKind::Guarded`) and the dependence
//! test conjoins the validity guard `1 <= gstep` into the parallel plan's
//! runtime check, so the segment loop dispatches parallel exactly when the
//! runtime bindings prove the premise.

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};
use subsub_rtcheck::{Bindings, IndexArrayView, MonotoneReq, Provenance, ValidatedIndexArray};

/// Runtime value of the symbolic step (positive: the guard holds).
pub const GSTEP: usize = 3;

/// Inline-expanded source: guarded prefix fill + segment scaling loop.
pub const SOURCE: &str = r#"
void gprefix(int n, int gstep, int *off, double *vals) {
    int i; int j;
    off[0] = 0;
    for (i = 0; i < n; i++) {
        off[i+1] = off[i] + gstep;
    }
    for (i = 0; i < n; i++) {
        for (j = off[i]; j < off[i+1]; j++) {
            vals[j] = vals[j] * 2.0;
        }
    }
}
"#;

/// The guarded-prefix benchmark.
pub struct GuardedPrefix;

fn segments_for(dataset: &str) -> usize {
    match dataset {
        "seg96k" => 98_304,
        "test" => 40,
        other => panic!("unknown GuardedPrefix dataset {other}"),
    }
}

impl Kernel for GuardedPrefix {
    fn name(&self) -> &'static str {
        "GuardedPrefix"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "gprefix"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["seg96k"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let n = segments_for(dataset);
        let vals0: Vec<f64> = (0..n * GSTEP)
            .map(|i| 1.0 + (i % 13) as f64 * 0.125)
            .collect();
        // The fill loop materialized with the positive runtime step; the
        // last boundary equals the element count, hence domain + 1.
        let off = ValidatedIndexArray::ingest(
            "off",
            (0..=n).map(|i| i * GSTEP).collect(),
            vals0.len() + 1,
            Provenance::Dataset {
                name: dataset.to_string(),
            },
        )
        .expect("prefix boundaries are bounded by |vals|");
        Box::new(GuardedPrefixInstance {
            vals: vals0.clone(),
            off,
            vals0,
        })
    }
}

struct GuardedPrefixInstance {
    /// Segment boundaries behind the ingestion trust boundary.
    off: ValidatedIndexArray,
    vals: Vec<f64>,
    vals0: Vec<f64>,
}

const COST_PER_ELEM: f64 = 2.0;
const COST_PER_SEGMENT: f64 = 10.0;

impl KernelInstance for GuardedPrefixInstance {
    fn run_serial(&mut self) {
        for i in 0..self.off.len() - 1 {
            for j in self.off.data()[i]..self.off.data()[i + 1] {
                self.vals[j] *= 2.0;
            }
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        let vals = SendPtr::new(self.vals.as_mut_ptr());
        let v_len = self.vals.len();
        let this: &GuardedPrefixInstance = self;
        pool.parallel_for(this.off.len() - 1, sched, |i| {
            for j in this.off.data()[i]..this.off.data()[i + 1] {
                // SAFETY: ingestion validated the boundaries against the
                // value length, and with the guard `1 <= gstep` holding
                // the prefix sum is monotone, so segments are disjoint.
                debug_assert!(j < v_len, "segment element {j} out of vals[0, {v_len})");
                unsafe {
                    *vals.get().add(j) *= 2.0;
                }
            }
        });
    }

    fn run_inner(&mut self, pool: &ThreadPool, sched: Schedule) {
        let vals = SendPtr::new(self.vals.as_mut_ptr());
        let v_len = self.vals.len();
        for i in 0..self.off.len() - 1 {
            let lo = self.off.data()[i];
            let len = self.off.data()[i + 1].saturating_sub(lo);
            pool.parallel_for(len, sched, |k| {
                debug_assert!(lo + k < v_len, "segment element out of vals bounds");
                unsafe {
                    *vals.get().add(lo + k) *= 2.0;
                }
            });
        }
    }

    fn outer_costs(&self) -> Vec<f64> {
        (0..self.off.len() - 1)
            .map(|_| COST_PER_SEGMENT + COST_PER_ELEM * GSTEP as f64)
            .collect()
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        (0..self.off.len() - 1)
            .map(|_| InnerGroup {
                serial: COST_PER_SEGMENT,
                inner: vec![COST_PER_ELEM; GSTEP],
            })
            .collect()
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.6 // short-segment streaming scale
    }

    fn runtime_bindings(&self) -> Bindings {
        // The guard `1 <= gstep` must be decidable at dispatch time: the
        // harness binds the materialized step value.
        let mut b = Bindings::new();
        b.set_var("gstep", GSTEP as i64);
        b
    }

    fn index_arrays(&self) -> Vec<IndexArrayView<'_>> {
        // Segment disjointness needs only non-strict monotonicity.
        vec![self.off.view(MonotoneReq::NonStrict)]
    }

    fn checksum(&self) -> f64 {
        self.vals.iter().sum()
    }

    fn reset(&mut self) {
        self.vals.copy_from_slice(&self.vals0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;

    #[test]
    fn variants_agree() {
        let pool = ThreadPool::new(2);
        let mut inst = GuardedPrefix.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();
        assert!(reference.is_finite() && reference != 0.0);

        inst.reset();
        inst.run_outer(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));

        inst.reset();
        inst.run_inner(&pool, Schedule::dynamic_default());
        assert!(close(inst.checksum(), reference));
    }

    #[test]
    fn bindings_satisfy_the_guard() {
        use subsub_symbolic::Symbol;
        let inst = GuardedPrefix.prepare("test");
        let b = inst.runtime_bindings();
        assert_eq!(b.get(&Symbol::var("gstep")), Some(GSTEP as i64));
    }
}
