//! CG (NAS Parallel Benchmarks): the conjugate-gradient iteration's
//! dominant SpMV plus vector updates. All subscripted subscripts are
//! *reads* (`p[colidx[k]]`), so classical analysis already parallelizes
//! the row loop — CG is one of the six benchmarks Figure 17 credits to
//! plain Cetus.

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};
use subsub_sparse::{gen, Csr};

/// CG iteration source (SpMV + axpy + dot).
pub const SOURCE: &str = r#"
void cg_iter(int n, int *rowstr, int *colidx, double *a,
             double *p, double *q, double *z, double alpha) {
    int i; int k; double sum;
    for (i = 0; i < n; i++) {
        sum = 0.0;
        for (k = rowstr[i]; k < rowstr[i+1]; k++) {
            sum += a[k] * p[colidx[k]];
        }
        q[i] = sum;
    }
    for (i = 0; i < n; i++) {
        z[i] = z[i] + alpha * p[i];
    }
}
"#;

/// The CG benchmark.
pub struct Cg;

/// Number of CG iterations per run.
pub const ITERS: usize = 12;

fn grid_for(dataset: &str) -> usize {
    match dataset {
        "CLASS A" => 24,
        "CLASS B" => 34,
        "test" => 5,
        other => panic!("unknown CG dataset {other}"),
    }
}

impl Kernel for Cg {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "cg_iter"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["CLASS B", "CLASS A"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let a = gen::laplacian_3d(grid_for(dataset));
        let n = a.rows;
        let p: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + (i % 17) as f64)).collect();
        let z0 = vec![0.0; n];
        Box::new(CgInstance {
            q: vec![0.0; n],
            z: z0.clone(),
            z0,
            a,
            p,
        })
    }
}

struct CgInstance {
    a: Csr,
    p: Vec<f64>,
    q: Vec<f64>,
    z: Vec<f64>,
    z0: Vec<f64>,
}

const COST_PER_NNZ: f64 = 6.0;
const COST_PER_ROW: f64 = 12.0;

impl CgInstance {
    #[inline]
    fn row(&self, i: usize) -> f64 {
        let mut sum = 0.0;
        for k in self.a.row_ptr[i]..self.a.row_ptr[i + 1] {
            sum += self.a.values[k] * self.p[self.a.col_idx[k]];
        }
        sum
    }
}

impl KernelInstance for CgInstance {
    fn run_serial(&mut self) {
        for _ in 0..ITERS {
            for i in 0..self.a.rows {
                self.q[i] = self.row(i);
            }
            for i in 0..self.a.rows {
                self.z[i] += 0.3 * self.p[i] + 1e-3 * self.q[i];
            }
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        let n = self.a.rows;
        for _ in 0..ITERS {
            {
                let q = SendPtr::new(self.q.as_mut_ptr());
                let this: &CgInstance = self;
                pool.parallel_for(n, sched, |i| {
                    debug_assert!(i < this.q.len(), "row index {i} out of q bounds");
                    unsafe {
                        *q.get().add(i) = this.row(i);
                    }
                });
            }
            {
                let z = SendPtr::new(self.z.as_mut_ptr());
                let this: &CgInstance = self;
                pool.parallel_for(n, sched, |i| {
                    debug_assert!(i < this.z.len(), "row index {i} out of z bounds");
                    unsafe {
                        *z.get().add(i) += 0.3 * this.p[i] + 1e-3 * this.q[i];
                    }
                });
            }
        }
    }

    fn run_inner(&mut self, pool: &ThreadPool, sched: Schedule) {
        // Classical analysis already gets the outer row loop; the inner
        // strategy is identical.
        self.run_outer(pool, sched);
    }

    fn outer_costs(&self) -> Vec<f64> {
        // Per CG iteration the parallel region covers all rows; flatten to
        // one cost entry per row per iteration.
        let mut out = Vec::with_capacity(self.a.rows * ITERS);
        for _ in 0..ITERS {
            for i in 0..self.a.rows {
                out.push(COST_PER_ROW + COST_PER_NNZ * self.a.row_nnz(i) as f64);
            }
        }
        out
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        // One region per CG iteration (fork-join amortized over n rows).
        (0..ITERS)
            .map(|_| InnerGroup {
                serial: 0.0,
                inner: (0..self.a.rows)
                    .map(|i| COST_PER_ROW + COST_PER_NNZ * self.a.row_nnz(i) as f64)
                    .collect(),
            })
            .collect()
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.8 // SpMV-dominated
    }

    fn checksum(&self) -> f64 {
        self.z.iter().sum::<f64>() + self.q.iter().sum::<f64>()
    }

    fn reset(&mut self) {
        self.z.copy_from_slice(&self.z0);
        self.q.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;

    #[test]
    fn variants_agree() {
        let pool = ThreadPool::new(3);
        let mut inst = Cg.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();

        inst.reset();
        inst.run_outer(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));
    }
}
