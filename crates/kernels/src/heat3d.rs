//! heat-3d (PolyBench 4.2): 3-D heat-equation stencil with a serial time
//! loop and classically parallel spatial sweeps. The parallel loop sits at
//! depth 1 (inside the time loop) but covers a whole `n²`-deep plane per
//! iteration, so fork-join is amortized — classical parallelization wins
//! here and the subscript-array analysis adds nothing (Figure 17).

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};

/// heat-3d source: time loop with two Jacobi sweeps.
pub const SOURCE: &str = r#"
void heat3d(int tsteps, int n, double A[120][120][120], double B[120][120][120]) {
    int t; int i; int j; int k;
    for (t = 0; t < tsteps; t++) {
        for (i = 1; i < n - 1; i++) {
            for (j = 1; j < n - 1; j++) {
                for (k = 1; k < n - 1; k++) {
                    B[i][j][k] = 0.125 * (A[i+1][j][k] - 2.0 * A[i][j][k] + A[i-1][j][k])
                               + 0.125 * (A[i][j+1][k] - 2.0 * A[i][j][k] + A[i][j-1][k])
                               + 0.125 * (A[i][j][k+1] - 2.0 * A[i][j][k] + A[i][j][k-1])
                               + A[i][j][k];
                }
            }
        }
        for (i = 1; i < n - 1; i++) {
            for (j = 1; j < n - 1; j++) {
                for (k = 1; k < n - 1; k++) {
                    A[i][j][k] = 0.125 * (B[i+1][j][k] - 2.0 * B[i][j][k] + B[i-1][j][k])
                               + 0.125 * (B[i][j+1][k] - 2.0 * B[i][j][k] + B[i][j-1][k])
                               + 0.125 * (B[i][j][k+1] - 2.0 * B[i][j][k] + B[i][j][k-1])
                               + B[i][j][k];
                }
            }
        }
    }
}
"#;

/// The heat-3d benchmark.
pub struct Heat3d;

fn size_for(dataset: &str) -> (usize, usize) {
    // (n, tsteps)
    match dataset {
        "LARGE" => (72, 20),
        "EXTRALARGE" => (96, 20),
        "test" => (10, 3),
        other => panic!("unknown heat-3d dataset {other}"),
    }
}

impl Kernel for Heat3d {
    fn name(&self) -> &'static str {
        "heat-3d"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "heat3d"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["EXTRALARGE", "LARGE"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let (n, tsteps) = size_for(dataset);
        let a0: Vec<f64> = (0..n * n * n)
            .map(|i| (i % 13) as f64 * 0.1 + ((i / 7) % 5) as f64 * 0.02)
            .collect();
        Box::new(Heat3dInstance {
            n,
            tsteps,
            a: a0.clone(),
            b: vec![0.0; n * n * n],
            a0,
        })
    }
}

struct Heat3dInstance {
    n: usize,
    tsteps: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    a0: Vec<f64>,
}

impl Heat3dInstance {
    #[inline]
    fn sweep_plane(src: &[f64], dst: *mut f64, n: usize, i: usize) {
        let at = |x: usize, y: usize, z: usize| (x * n + y) * n + z;
        for j in 1..n - 1 {
            for k in 1..n - 1 {
                let c = src[at(i, j, k)];
                let v = 0.125 * (src[at(i + 1, j, k)] - 2.0 * c + src[at(i - 1, j, k)])
                    + 0.125 * (src[at(i, j + 1, k)] - 2.0 * c + src[at(i, j - 1, k)])
                    + 0.125 * (src[at(i, j, k + 1)] - 2.0 * c + src[at(i, j, k - 1)])
                    + c;
                // SAFETY: plane i is written only by iteration i.
                unsafe {
                    *dst.add(at(i, j, k)) = v;
                }
            }
        }
    }
}

impl KernelInstance for Heat3dInstance {
    fn run_serial(&mut self) {
        let n = self.n;
        for _ in 0..self.tsteps {
            for i in 1..n - 1 {
                Heat3dInstance::sweep_plane(&self.a, self.b.as_mut_ptr(), n, i);
            }
            for i in 1..n - 1 {
                Heat3dInstance::sweep_plane(&self.b, self.a.as_mut_ptr(), n, i);
            }
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        // There is no outer (time-loop) parallelism; delegate to the
        // spatial strategy.
        self.run_inner(pool, sched);
    }

    fn run_inner(&mut self, pool: &ThreadPool, sched: Schedule) {
        let n = self.n;
        for _ in 0..self.tsteps {
            {
                let b = SendPtr::new(self.b.as_mut_ptr());
                let a = &self.a;
                pool.parallel_for(n - 2, sched, |ii| {
                    Heat3dInstance::sweep_plane(a, b.get(), n, ii + 1);
                });
            }
            {
                let a = SendPtr::new(self.a.as_mut_ptr());
                let b = &self.b;
                pool.parallel_for(n - 2, sched, |ii| {
                    Heat3dInstance::sweep_plane(b, a.get(), n, ii + 1);
                });
            }
        }
    }

    fn outer_costs(&self) -> Vec<f64> {
        // No outer strategy: one entry per plane per sweep (same as inner).
        self.inner_groups()
            .into_iter()
            .flat_map(|g| g.inner)
            .collect()
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        let plane_cost = ((self.n - 2) * (self.n - 2)) as f64 * 13.0;
        (0..self.tsteps * 2)
            .map(|_| InnerGroup {
                serial: 0.0,
                inner: vec![plane_cost; self.n - 2],
            })
            .collect()
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.5 // 7-point stencil, moderate reuse
    }

    fn checksum(&self) -> f64 {
        self.a.iter().sum::<f64>() + self.b.iter().sum::<f64>()
    }

    fn reset(&mut self) {
        self.a.copy_from_slice(&self.a0);
        self.b.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;

    #[test]
    fn parallel_matches_serial() {
        let pool = ThreadPool::new(4);
        let mut inst = Heat3d.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();

        inst.reset();
        inst.run_inner(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));
    }

    #[test]
    fn stencil_diffuses() {
        let mut inst = Heat3d.prepare("test");
        let before = inst.checksum();
        inst.run_serial();
        assert!(inst.checksum() != before);
    }
}
