//! Registry of the evaluation benchmarks: the paper's twelve (Table 1)
//! plus the four pattern-language extensions (two-level indirection,
//! strided recurrence, guarded recurrence, block-periodic keys).

use crate::common::Kernel;

/// All benchmarks: the paper's Figure-17 order, then the extensions.
pub fn all_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(crate::amgmk::Amgmk),
        Box::new(crate::cholmod::Cholmod),
        Box::new(crate::sddmm::Sddmm),
        Box::new(crate::ua::UaTransf),
        Box::new(crate::cg::Cg),
        Box::new(crate::heat3d::Heat3d),
        Box::new(crate::fdtd2d::Fdtd2d),
        Box::new(crate::gramschmidt::Gramschmidt),
        Box::new(crate::syrk::Syrk),
        Box::new(crate::mg::Mg),
        Box::new(crate::is::Is),
        Box::new(crate::icholesky::ICholesky),
        Box::new(crate::csrocsr::CsrOfCsr),
        Box::new(crate::sscatter::StridedScatter),
        Box::new(crate::gprefix::GuardedPrefix),
        Box::new(crate::blockhist::BlockHist),
    ]
}

/// Finds a benchmark by its Table-1 name.
pub fn kernel_by_name(name: &str) -> Option<Box<dyn Kernel>> {
    all_kernels().into_iter().find(|k| k.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_kernels_registered() {
        assert_eq!(all_kernels().len(), 16);
    }

    #[test]
    fn lookup_by_name() {
        assert!(kernel_by_name("AMGmk").is_some());
        assert!(kernel_by_name("UA(transf)").is_some());
        assert!(kernel_by_name("CSRoCSR").is_some());
        assert!(kernel_by_name("BlockHist").is_some());
        assert!(kernel_by_name("nope").is_none());
    }

    #[test]
    fn every_kernel_has_source_and_datasets() {
        for k in all_kernels() {
            assert!(!k.source().is_empty(), "{}", k.name());
            assert!(!k.datasets().is_empty(), "{}", k.name());
            assert!(k.source().contains(k.func_name()), "{}", k.name());
        }
    }

    /// Every kernel's test instance runs serially and produces a finite
    /// checksum.
    #[test]
    fn every_kernel_smoke_runs() {
        for k in all_kernels() {
            let mut inst = k.prepare("test");
            inst.run_serial();
            assert!(inst.checksum().is_finite(), "{}", k.name());
            assert!(!inst.outer_costs().is_empty(), "{}", k.name());
            assert!(!inst.inner_groups().is_empty(), "{}", k.name());
        }
    }
}
