//! The evaluation benchmarks — the paper's twelve (Table 1) plus four
//! pattern-language extensions — each with:
//!
//! * a **C-subset source** (inline-expanded, as the paper's methodology
//!   requires) that the `subsub-core` analysis pipeline consumes to make
//!   the parallelization decision,
//! * a **serial** Rust implementation (the baseline of Figures 14 and 17),
//! * an **outer-parallel** implementation (the strategy enabled by the
//!   paper's analysis, where applicable),
//! * an **inner-parallel** implementation (what classical parallelization
//!   settles for, where applicable),
//! * a **work model** feeding the `omprt::sim` scheduling simulator.
//!
//! | Benchmark | Paper source | Parallelizable by |
//! |---|---|---|
//! | AMGmk | CORAL | NewAlgo (intermittent SMA, LEMMA 1) |
//! | CHOLMOD-Supernodal | SuiteSparse | BaseAlgo (continuous SRA) |
//! | SDDMM | Nisa et al. | NewAlgo (intermittent SMA, segments) |
//! | UA (transf) | NPB 3.3 | NewAlgo (multi-dim SMA, LEMMA 2) |
//! | CG | NPB 3.3 | classical |
//! | heat-3d | PolyBench | classical (spatial loops) |
//! | fdtd-2d | PolyBench | classical (spatial loops) |
//! | gramschmidt | PolyBench | classical (inner loops) |
//! | syrk | PolyBench | classical |
//! | MG | NPB 3.3 | classical |
//! | IS | NPB 3.3 | none (pattern too complex) |
//! | Incomplete Cholesky | SparseLib++ | none (input-dependent) |
//! | CSRoCSR | synthetic (arXiv 1911.05839) | NewAlgo (two-level composed SMA) |
//! | StridedScatter | synthetic (arXiv 1911.05839) | BaseAlgo (strided SRA, `#SMA+2`) |
//! | GuardedPrefix | synthetic (arXiv 2511.06052) | NewAlgo (guarded recurrence) |
//! | BlockHist | synthetic (arXiv 2511.06052) | none at compile time (block-monotone, runtime-licensed) |

pub mod amgmk;
pub mod blockhist;
pub mod cg;
pub mod cholmod;
pub mod common;
pub mod csrocsr;
pub mod fdtd2d;
pub mod gprefix;
pub mod gramschmidt;
pub mod heat3d;
pub mod icholesky;
pub mod is;
pub mod mg;
pub mod registry;
pub mod sddmm;
pub mod sscatter;
pub mod syrk;
pub mod ua;

pub use common::{InnerGroup, Kernel, KernelInstance, Variant};
pub use registry::{all_kernels, kernel_by_name};
