//! AMGmk (CORAL suite): sparse matrix–vector multiply over the rows with
//! nonzeros, addressed through the `A_rownnz` subscript array
//! (paper Figures 8 and 9, Section 3.1).
//!
//! `A_rownnz` is filled by an intermittent recurrence (LEMMA 1): only the
//! new algorithm proves it strictly monotonic and parallelizes the outer
//! SpMV loop; classical analysis parallelizes the per-row reduction loop,
//! paying one fork-join per matrix row (the Figure-13 anomaly).

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};
use subsub_rtcheck::{Bindings, IndexArrayView, MonotoneReq, Provenance, ValidatedIndexArray};
use subsub_sparse::{gen, Csr};

/// Inline-expanded AMGmk kernel source (fill + use loop), as analyzed by
/// the compiler pipeline.
pub const SOURCE: &str = r#"
void amgmk(int num_rows, int num_rownnz, int *A_i, int *A_j,
           double *A_data, double *x_data, double *y_data, int *A_rownnz) {
    int i; int adiag; int irownnz; int jj; int m; double tempx;
    irownnz = 0;
    for (i = 0; i < num_rows; i++) {
        adiag = A_i[i+1] - A_i[i];
        if (adiag > 0)
            A_rownnz[irownnz++] = i;
    }
    for (i = 0; i < num_rownnz; i++) {
        m = A_rownnz[i];
        tempx = y_data[m];
        for (jj = A_i[m]; jj < A_i[m+1]; jj++)
            tempx += A_data[jj] * x_data[A_j[jj]];
        y_data[m] = tempx;
    }
}
"#;

/// The AMGmk benchmark.
pub struct Amgmk;

/// Grid edge lengths for the five CORAL matrices (MATRIX1–5 scale up).
fn grid_for(dataset: &str) -> usize {
    match dataset {
        "MATRIX1" => 20,
        "MATRIX2" => 25,
        "MATRIX3" => 32,
        "MATRIX4" => 40,
        "MATRIX5" => 48,
        "test" => 5,
        other => panic!("unknown AMGmk dataset {other}"),
    }
}

impl Kernel for Amgmk {
    fn name(&self) -> &'static str {
        "AMGmk"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "amgmk"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["MATRIX2", "MATRIX1", "MATRIX3", "MATRIX4", "MATRIX5"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let n = grid_for(dataset);
        let mut a = gen::laplacian_3d(n);
        // AMG operators have empty rows after coarsening; clear every 4th
        // row so A_rownnz is a proper (intermittent) subset.
        clear_rows(&mut a, |r| r % 4 == 3);
        // Ingestion trust boundary: every A_rownnz entry must index a
        // real row of A before any verdict licenses `unsafe` scatter.
        let rownnz = ValidatedIndexArray::ingest(
            "A_rownnz",
            a.rownnz(),
            a.rows,
            Provenance::Dataset {
                name: dataset.to_string(),
            },
        )
        .expect("generated A_rownnz entries are row indices of A");
        let dim = a.rows;
        let x: Vec<f64> = (0..dim).map(|i| 1.0 + (i % 7) as f64 * 0.25).collect();
        let y0: Vec<f64> = (0..dim).map(|i| (i % 5) as f64 * 0.5).collect();
        Box::new(AmgmkInstance {
            y: y0.clone(),
            a,
            rownnz,
            x,
            y0,
        })
    }
}

fn clear_rows(a: &mut Csr, pred: impl Fn(usize) -> bool) {
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(a.rows);
    for r in 0..a.rows {
        if pred(r) {
            rows.push(Vec::new());
        } else {
            rows.push(
                (a.row_ptr[r]..a.row_ptr[r + 1])
                    .map(|k| (a.col_idx[k], a.values[k]))
                    .collect(),
            );
        }
    }
    *a = Csr::from_rows(a.rows, a.cols, rows);
}

struct AmgmkInstance {
    a: Csr,
    /// The subscript array behind the ingestion trust boundary: entries
    /// validated against `a.rows`, mutations tracked by version (for the
    /// inspector cache) and checksum (for the out-of-band-writer gate).
    rownnz: ValidatedIndexArray,
    x: Vec<f64>,
    y: Vec<f64>,
    y0: Vec<f64>,
}

impl AmgmkInstance {
    #[inline]
    fn row_update(&self, m: usize) -> f64 {
        let mut tempx = self.y[m];
        for k in self.a.row_ptr[m]..self.a.row_ptr[m + 1] {
            tempx += self.a.values[k] * self.x[self.a.col_idx[k]];
        }
        tempx
    }
}

/// Abstract per-nonzero and per-row costs of the work model (arbitrary
/// units; the harness calibrates them against a serial run).
const COST_PER_NNZ: f64 = 6.0;
const COST_PER_ROW: f64 = 20.0;

impl KernelInstance for AmgmkInstance {
    fn run_serial(&mut self) {
        for idx in 0..self.rownnz.len() {
            let m = self.rownnz.data()[idx];
            self.y[m] = self.row_update(m);
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        let y = SendPtr::new(self.y.as_mut_ptr());
        let y_len = self.y.len();
        let this: &AmgmkInstance = self;
        pool.parallel_for(this.rownnz.len(), sched, |idx| {
            let m = this.rownnz.data()[idx];
            let v = this.row_update(m);
            // SAFETY: ingestion validated m < a.rows == y.len(), and
            // A_rownnz is strictly monotonic (the property the analysis
            // proves), so distinct iterations write distinct rows.
            debug_assert!(m < y_len, "A_rownnz[{idx}] = {m} out of y[0, {y_len})");
            unsafe {
                *y.get().add(m) = v;
            }
        });
    }

    fn run_inner(&mut self, pool: &ThreadPool, sched: Schedule) {
        // Classical strategy: serial outer loop, fork a reduction team for
        // every row's dot product.
        for idx in 0..self.rownnz.len() {
            let m = self.rownnz.data()[idx];
            let lo = self.a.row_ptr[m];
            let n = self.a.row_ptr[m + 1] - lo;
            let a = &self.a;
            let x = &self.x;
            let sum = pool.parallel_for_reduce(
                n,
                sched,
                0.0f64,
                |acc, k| acc + a.values[lo + k] * x[a.col_idx[lo + k]],
                |p, q| p + q,
            );
            self.y[m] += sum;
        }
    }

    fn outer_costs(&self) -> Vec<f64> {
        self.rownnz
            .data()
            .iter()
            .map(|&m| COST_PER_ROW + COST_PER_NNZ * self.a.row_nnz(m) as f64)
            .collect()
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        self.rownnz
            .data()
            .iter()
            .map(|&m| InnerGroup {
                serial: COST_PER_ROW,
                inner: vec![COST_PER_NNZ; self.a.row_nnz(m)],
            })
            .collect()
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.95 // SpMV: streaming A + gathered x, bandwidth-bound
    }

    fn runtime_bindings(&self) -> Bindings {
        // The fill loop leaves irownnz == |rownnz|; the use loop runs to
        // num_rownnz, which the harness sets to the same count.
        let mut b = Bindings::new();
        b.set_var("num_rownnz", self.rownnz.len() as i64)
            .set_post_max("irownnz", self.rownnz.len() as i64);
        b
    }

    fn index_arrays(&self) -> Vec<IndexArrayView<'_>> {
        // Distinct iterations must write distinct rows: injectivity,
        // i.e. strict monotonicity.
        vec![self.rownnz.view(MonotoneReq::Strict)]
    }

    fn tamper_index_arrays(&mut self) -> bool {
        if self.rownnz.len() < 2 {
            return false;
        }
        // Duplicate an entry: still sorted and in-domain, no longer
        // injective. Going through `mutate_range` keeps the array
        // validated and bumps the version (so cached verdicts
        // invalidate) at O(Δ) instead of a whole-array snapshot. The
        // serial variant just updates that row twice, deterministically.
        self.rownnz
            .mutate_range(0..2, |w| w[1] = w[0])
            .expect("duplicating an in-domain entry stays in domain");
        true
    }

    fn checksum(&self) -> f64 {
        self.y.iter().sum()
    }

    fn reset(&mut self) {
        self.y.copy_from_slice(&self.y0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;

    #[test]
    fn variants_agree() {
        let pool = ThreadPool::new(3);
        let mut inst = Amgmk.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();
        assert!(reference.is_finite() && reference != 0.0);

        inst.reset();
        inst.run_outer(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));

        inst.reset();
        inst.run_inner(&pool, Schedule::dynamic_default());
        assert!(close(inst.checksum(), reference));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut inst = Amgmk.prepare("test");
        let before = inst.checksum();
        inst.run_serial();
        assert!(!close(inst.checksum(), before));
        inst.reset();
        assert!(close(inst.checksum(), before));
    }

    #[test]
    fn work_models_are_consistent() {
        let inst = Amgmk.prepare("test");
        let outer: f64 = inst.outer_costs().iter().sum();
        let inner: f64 = crate::common::serial_cost(&inst.inner_groups());
        assert!((outer - inner).abs() < 1e-9);
    }

    #[test]
    fn rownnz_is_proper_subset() {
        let inst = Amgmk.prepare("test");
        // Downcast-free check via the cost model: number of outer
        // iterations equals the rownnz count, less than the matrix rows.
        assert!(inst.outer_costs().len() < 125);
        assert!(!inst.outer_costs().is_empty());
    }
}
