//! MG (NAS Parallel Benchmarks / SPEC OMP2012): multigrid V-cycle on a 3-D
//! grid — smoothing, restriction and prolongation sweeps. All subscripts
//! are affine; classical parallelization handles the spatial loops
//! (Figure 17 credits plain Cetus).

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};

/// MG smoother source (representative sweep; the full V-cycle repeats it
/// at each level).
pub const SOURCE: &str = r#"
void mg_relax(int cycles, int n, double u[260][260][260],
              double v[260][260][260], double r[260][260][260]) {
    int it; int i; int j; int k;
    for (it = 0; it < cycles; it++) {
        for (i = 1; i < n - 1; i++) {
            for (j = 1; j < n - 1; j++) {
                for (k = 1; k < n - 1; k++) {
                    u[i][j][k] = v[i][j][k] + 0.166 * (r[i-1][j][k] + r[i+1][j][k]
                               + r[i][j-1][k] + r[i][j+1][k] + r[i][j][k-1] + r[i][j][k+1]);
                }
            }
        }
    }
}
"#;

/// The MG benchmark.
pub struct Mg;

fn size_for(dataset: &str) -> (usize, usize) {
    // (finest n, v-cycles)
    match dataset {
        "CLASS A" => (64, 4),
        "CLASS B" => (96, 4),
        "test" => (12, 2),
        other => panic!("unknown MG dataset {other}"),
    }
}

impl Kernel for Mg {
    fn name(&self) -> &'static str {
        "MG"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "mg_relax"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["CLASS B", "CLASS A"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let (n, cycles) = size_for(dataset);
        // Levels: n, n/2, n/4 (≥ 8).
        let mut levels = Vec::new();
        let mut s = n;
        while s >= 8 {
            levels.push(s);
            s /= 2;
        }
        let grids: Vec<Grid> = levels.iter().map(|&s| Grid::new(s)).collect();
        Box::new(MgInstance { cycles, grids })
    }
}

struct Grid {
    n: usize,
    u: Vec<f64>,
    v: Vec<f64>,
    r: Vec<f64>,
}

impl Grid {
    fn new(n: usize) -> Grid {
        let size = n * n * n;
        Grid {
            n,
            u: vec![0.0; size],
            v: (0..size).map(|i| (i % 11) as f64 * 0.1).collect(),
            r: (0..size).map(|i| ((i + 3) % 7) as f64 * 0.1).collect(),
        }
    }

    #[inline]
    fn relax_plane(&self, i: usize, u: *mut f64) {
        let n = self.n;
        let at = |x: usize, y: usize, z: usize| (x * n + y) * n + z;
        for j in 1..n - 1 {
            for k in 1..n - 1 {
                let val = self.v[at(i, j, k)]
                    + 0.166
                        * (self.r[at(i - 1, j, k)]
                            + self.r[at(i + 1, j, k)]
                            + self.r[at(i, j - 1, k)]
                            + self.r[at(i, j + 1, k)]
                            + self.r[at(i, j, k - 1)]
                            + self.r[at(i, j, k + 1)]);
                // SAFETY: plane i written only by iteration i.
                unsafe {
                    *u.add(at(i, j, k)) = val;
                }
            }
        }
    }
}

struct MgInstance {
    cycles: usize,
    grids: Vec<Grid>,
}

impl KernelInstance for MgInstance {
    fn run_serial(&mut self) {
        for _ in 0..self.cycles {
            for g in &mut self.grids {
                let u = g.u.as_mut_ptr();
                for i in 1..g.n - 1 {
                    g.relax_plane(i, u);
                }
            }
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        self.run_inner(pool, sched);
    }

    fn run_inner(&mut self, pool: &ThreadPool, sched: Schedule) {
        for _ in 0..self.cycles {
            for g in &mut self.grids {
                let u = SendPtr::new(g.u.as_mut_ptr());
                let gg: &Grid = g;
                pool.parallel_for(gg.n - 2, sched, |ii| {
                    gg.relax_plane(ii + 1, u.get());
                });
            }
        }
    }

    fn outer_costs(&self) -> Vec<f64> {
        self.inner_groups()
            .into_iter()
            .flat_map(|g| g.inner)
            .collect()
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        let mut out = Vec::new();
        for _ in 0..self.cycles {
            for g in &self.grids {
                let plane = ((g.n - 2) * (g.n - 2)) as f64 * 9.0;
                out.push(InnerGroup {
                    serial: 0.0,
                    inner: vec![plane; g.n - 2],
                });
            }
        }
        out
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.5 // stencil sweeps across levels
    }

    fn checksum(&self) -> f64 {
        self.grids.iter().map(|g| g.u.iter().sum::<f64>()).sum()
    }

    fn reset(&mut self) {
        for g in &mut self.grids {
            g.u.fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;

    #[test]
    fn parallel_matches_serial() {
        let pool = ThreadPool::new(4);
        let mut inst = Mg.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();
        inst.reset();
        inst.run_inner(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));
    }

    #[test]
    fn has_multiple_levels() {
        let inst = Mg.prepare("test");
        assert!(inst.inner_groups().len() >= 2);
    }
}
