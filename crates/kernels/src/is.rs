//! IS (NAS Parallel Benchmarks): integer bucket sort. The key-ranking
//! histogram writes `count[key[i]]++` through a subscript array whose
//! values come from the input keys — "too complex to be analyzed at
//! compile time" (paper, Section 4.3). No configuration parallelizes it;
//! Figure 17 shows no improvement.

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, ThreadPool};

/// IS ranking source: histogram + prefix + rank scatter, all through
/// data-dependent subscripts.
pub const SOURCE: &str = r#"
void is_rank(int n, int nbuckets, int *key, int *count, int *rank_out) {
    int i;
    for (i = 0; i < nbuckets; i++) {
        count[i] = 0;
    }
    for (i = 0; i < n; i++) {
        count[key[i]] = count[key[i]] + 1;
    }
    for (i = 1; i < nbuckets; i++) {
        count[i] = count[i] + count[i-1];
    }
    for (i = 0; i < n; i++) {
        count[key[i]] = count[key[i]] - 1;
        rank_out[count[key[i]]] = i;
    }
}
"#;

/// The IS benchmark.
pub struct Is;

fn size_for(dataset: &str) -> (usize, usize) {
    // (keys, buckets)
    match dataset {
        "CLASS B" => (4_000_000, 1 << 12),
        "CLASS C" => (16_000_000, 1 << 12),
        "test" => (500, 16),
        other => panic!("unknown IS dataset {other}"),
    }
}

impl Kernel for Is {
    fn name(&self) -> &'static str {
        "IS"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "is_rank"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["CLASS C", "CLASS B"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let (n, buckets) = size_for(dataset);
        // Deterministic pseudo-random keys (Gaussian-ish like NPB).
        let keys: Vec<usize> = (0..n)
            .map(|i| {
                let a = (i.wrapping_mul(2654435761)) % buckets;
                let b = (i.wrapping_mul(40503).wrapping_add(17)) % buckets;
                (a + b) / 2
            })
            .collect();
        Box::new(IsInstance {
            keys,
            buckets,
            count: vec![0; buckets],
            rank_out: vec![0; n],
        })
    }
}

struct IsInstance {
    keys: Vec<usize>,
    buckets: usize,
    count: Vec<i64>,
    rank_out: Vec<usize>,
}

impl KernelInstance for IsInstance {
    fn run_serial(&mut self) {
        self.count.fill(0);
        for &k in &self.keys {
            self.count[k] += 1;
        }
        for i in 1..self.buckets {
            self.count[i] += self.count[i - 1];
        }
        for (i, &k) in self.keys.iter().enumerate() {
            self.count[k] -= 1;
            self.rank_out[self.count[k] as usize] = i;
        }
    }

    fn run_outer(&mut self, _pool: &ThreadPool, _sched: Schedule) {
        // No parallel decision exists at any level: serial fallback.
        self.run_serial();
    }

    fn run_inner(&mut self, _pool: &ThreadPool, _sched: Schedule) {
        self.run_serial();
    }

    fn outer_costs(&self) -> Vec<f64> {
        vec![self.keys.len() as f64 * 8.0]
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        vec![InnerGroup {
            serial: self.keys.len() as f64 * 8.0,
            inner: vec![],
        }]
    }

    fn checksum(&self) -> f64 {
        self.rank_out.iter().map(|&x| x as f64).sum::<f64>()
            + self.count.iter().map(|&x| x as f64).sum::<f64>()
    }

    fn reset(&mut self) {
        self.count.fill(0);
        self.rank_out.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_is_a_permutation() {
        let mut inst = Is.prepare("test");
        inst.run_serial();
        // Access internals through checksum: a permutation of 0..n sums to
        // n(n-1)/2, but count holds residual offsets; verify via re-run.
        let mut seen = vec![false; 500];
        // Re-derive by running the same algorithm independently.
        let (n, buckets) = (500usize, 16usize);
        let keys: Vec<usize> = (0..n)
            .map(|i| {
                let a = (i.wrapping_mul(2654435761)) % buckets;
                let b = (i.wrapping_mul(40503).wrapping_add(17)) % buckets;
                (a + b) / 2
            })
            .collect();
        let mut count = vec![0i64; buckets];
        let mut rank_out = vec![0usize; n];
        for &k in &keys {
            count[k] += 1;
        }
        for i in 1..buckets {
            count[i] += count[i - 1];
        }
        for (i, &k) in keys.iter().enumerate() {
            count[k] -= 1;
            rank_out[count[k] as usize] = i;
        }
        for &r in &rank_out {
            assert!(!seen[r]);
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Sorted keys come out non-decreasing.
        let sorted: Vec<usize> = rank_out.iter().map(|&i| keys[i]).collect();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }
}
