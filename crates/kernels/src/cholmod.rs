//! CHOLMOD-Supernodal (SuiteSparse): panel-wise column scaling of the
//! supernodal factor.
//!
//! The supernodal layout uses a column-pointer array built by an
//! *unconditional* prefix-sum recurrence — the continuous SRA pattern of
//! the paper's Figure 2(b) that the **base** algorithm (ICS'21) already
//! handles. This is the one benchmark Figure 17 attributes to
//! Cetus+BaseAlgo. Our synthetic supernodal factor uses a uniform panel
//! width, making the prefix-sum increment a compile-time constant (the
//! analyzable form; see DESIGN.md).

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};
use subsub_rtcheck::{IndexArrayView, MonotoneReq, Provenance, ValidatedIndexArray};

/// Panel (supernode) width of the synthetic factor.
pub const PANEL: usize = 192;

/// Inline-expanded source: prefix-sum `colptr` fill + panel scaling loop.
pub const SOURCE: &str = r#"
void cholmod_sn(int n_super, int *colptr, double *L_x, double *diag) {
    int j; int p;
    colptr[0] = 0;
    for (j = 0; j < n_super; j++) {
        colptr[j+1] = colptr[j] + 192;
    }
    for (j = 0; j < n_super; j++) {
        for (p = colptr[j]; p < colptr[j+1]; p++) {
            L_x[p] = L_x[p] * diag[j];
        }
    }
}
"#;

/// The CHOLMOD-Supernodal benchmark.
pub struct Cholmod;

fn supernodes_for(dataset: &str) -> usize {
    match dataset {
        "spal_004" => 40000,
        "test" => 20,
        other => panic!("unknown CHOLMOD dataset {other}"),
    }
}

impl Kernel for Cholmod {
    fn name(&self) -> &'static str {
        "CHOLMOD-Supernodal"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "cholmod_sn"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["spal_004"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let n_super = supernodes_for(dataset);
        let l0: Vec<f64> = (0..n_super * PANEL)
            .map(|i| 1.0 + (i % 9) as f64 * 0.1)
            .collect();
        // Defense in depth: even though the prefix-sum fill is
        // compile-time analyzable, the panel boundaries still pass the
        // ingestion trust boundary (domain = |L_x| + 1, since the last
        // boundary equals the element count).
        let colptr = ValidatedIndexArray::ingest(
            "colptr",
            (0..=n_super).map(|j| j * PANEL).collect(),
            l0.len() + 1,
            Provenance::Dataset {
                name: dataset.to_string(),
            },
        )
        .expect("prefix-sum panel boundaries are bounded by the factor size");
        let diag: Vec<f64> = (0..n_super).map(|j| 0.5 + (j % 3) as f64 * 0.25).collect();
        Box::new(CholmodInstance {
            l: l0.clone(),
            colptr,
            l0,
            diag,
        })
    }
}

struct CholmodInstance {
    /// Panel boundaries behind the ingestion trust boundary (validated
    /// against the factor length).
    colptr: ValidatedIndexArray,
    l: Vec<f64>,
    l0: Vec<f64>,
    diag: Vec<f64>,
}

const COST_PER_ELEM: f64 = 2.0;
const COST_PER_PANEL: f64 = 15.0;

impl KernelInstance for CholmodInstance {
    fn run_serial(&mut self) {
        for j in 0..self.diag.len() {
            let d = self.diag[j];
            for p in self.colptr.data()[j]..self.colptr.data()[j + 1] {
                self.l[p] *= d;
            }
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        let l = SendPtr::new(self.l.as_mut_ptr());
        let l_len = self.l.len();
        let this: &CholmodInstance = self;
        pool.parallel_for(this.diag.len(), sched, |j| {
            let d = this.diag[j];
            for p in this.colptr.data()[j]..this.colptr.data()[j + 1] {
                // SAFETY: ingestion validated the boundaries against the
                // factor length, and colptr is strictly monotone (prefix
                // sum of a positive constant), so panels are disjoint.
                debug_assert!(p < l_len, "panel element {p} out of L_x[0, {l_len})");
                unsafe {
                    *l.get().add(p) *= d;
                }
            }
        });
    }

    fn run_inner(&mut self, pool: &ThreadPool, sched: Schedule) {
        let l = SendPtr::new(self.l.as_mut_ptr());
        let l_len = self.l.len();
        for j in 0..self.diag.len() {
            let d = self.diag[j];
            let lo = self.colptr.data()[j];
            let len = self.colptr.data()[j + 1].saturating_sub(lo);
            pool.parallel_for(len, sched, |i| {
                debug_assert!(lo + i < l_len, "panel element out of L_x bounds");
                unsafe {
                    *l.get().add(lo + i) *= d;
                }
            });
        }
    }

    fn outer_costs(&self) -> Vec<f64> {
        (0..self.diag.len())
            .map(|_| COST_PER_PANEL + COST_PER_ELEM * PANEL as f64)
            .collect()
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        (0..self.diag.len())
            .map(|_| InnerGroup {
                serial: COST_PER_PANEL,
                inner: vec![COST_PER_ELEM; PANEL],
            })
            .collect()
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.55 // panel scaling is a streaming update
    }

    fn index_arrays(&self) -> Vec<IndexArrayView<'_>> {
        // Strict monotonicity makes panels disjoint; the compile-time
        // analysis already proves this for the constant prefix sum, so the
        // runtime view is defense in depth rather than a licensing
        // requirement.
        vec![self.colptr.view(MonotoneReq::Strict)]
    }

    fn checksum(&self) -> f64 {
        self.l.iter().sum()
    }

    fn reset(&mut self) {
        self.l.copy_from_slice(&self.l0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;

    #[test]
    fn variants_agree() {
        let pool = ThreadPool::new(2);
        let mut inst = Cholmod.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();

        inst.reset();
        inst.run_outer(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));

        inst.reset();
        inst.run_inner(&pool, Schedule::dynamic_default());
        assert!(close(inst.checksum(), reference));
    }

    #[test]
    fn panels_are_uniform() {
        let inst = Cholmod.prepare("test");
        let costs = inst.outer_costs();
        assert!(costs.windows(2).all(|w| w[0] == w[1]));
    }
}
