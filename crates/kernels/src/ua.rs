//! UA `transf` kernel (NAS Parallel Benchmarks 3.3, Unstructured
//! Adaptive): per-element gather/scatter between the mortar-point vector
//! and element-local storage, addressed through the four-dimensional
//! `idel` subscript array (paper Figure 12, Section 3.3).
//!
//! `idel` is range-monotonic w.r.t. its first dimension (LEMMA 2): element
//! `iel`'s entries all fall in `[125·iel : 125·iel + 124]`, so slices of
//! distinct elements are disjoint and the new algorithm parallelizes the
//! outer element loop. Classical analysis only parallelizes the tiny 5-wide
//! gather loops inside each element — the fork-join-dominated strategy of
//! Figure 13.

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};

/// Faces per element (the six `idel` facets).
pub const FACES: usize = 6;
/// Points per face edge.
pub const Q: usize = 5;
/// Mortar points per element (`125·iel` stride).
pub const PTS: usize = 125;

/// Inline-expanded source: the idel fill nest plus a gather/scatter use
/// nest (tmp is indexed by the element to keep the source in the
/// analyzable subset; Cetus would privatize a per-element temporary).
pub const SOURCE: &str = r#"
void transf(int LELT, int idel[4096][6][5][5], double *tx, double *tmort,
            double tmp[4096][5][5], double *w) {
    int iel; int j; int i; int f; int ntemp; int il1; int il2;
    for (iel = 0; iel < LELT; iel++) {
        ntemp = 125 * iel;
        for (j = 0; j < 5; j++) {
            for (i = 0; i < 5; i++) {
                idel[iel][0][j][i] = ntemp + i*5 + j*25 + 4;
                idel[iel][1][j][i] = ntemp + i*5 + j*25;
                idel[iel][2][j][i] = ntemp + i + j*25 + 20;
                idel[iel][3][j][i] = ntemp + i + j*25;
                idel[iel][4][j][i] = ntemp + i + j*5 + 100;
                idel[iel][5][j][i] = ntemp + i + j*5;
            }
        }
    }
    for (iel = 0; iel < LELT; iel++) {
        for (j = 0; j < 5; j++) {
            for (i = 0; i < 5; i++) {
                il1 = idel[iel][1][j][i];
                tmp[iel][j][i] = tmort[il1] * w[i];
            }
        }
        for (f = 0; f < 6; f++) {
            for (j = 0; j < 5; j++) {
                for (i = 0; i < 5; i++) {
                    il2 = idel[iel][f][j][i];
                    tx[il2] = tx[il2] + tmp[iel][j][i] * w[j];
                }
            }
        }
    }
}
"#;

/// The UA(transf) benchmark.
pub struct UaTransf;

fn elements_for(dataset: &str) -> usize {
    match dataset {
        "CLASS A" => 4_000,
        "CLASS B" => 16_000,
        "CLASS C" => 48_000,
        "CLASS D" => 160_000,
        "test" => 12,
        other => panic!("unknown UA dataset {other}"),
    }
}

impl Kernel for UaTransf {
    fn name(&self) -> &'static str {
        "UA(transf)"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "transf"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["CLASS A", "CLASS B", "CLASS C", "CLASS D"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let lelt = elements_for(dataset);
        // idel fill mirrors the Figure-12 loop.
        let mut idel = vec![0usize; lelt * FACES * Q * Q];
        for iel in 0..lelt {
            let ntemp = PTS * iel;
            for j in 0..Q {
                for i in 0..Q {
                    let at = |f: usize| ((iel * FACES + f) * Q + j) * Q + i;
                    idel[at(0)] = ntemp + i * 5 + j * 25 + 4;
                    idel[at(1)] = ntemp + i * 5 + j * 25;
                    idel[at(2)] = ntemp + i + j * 25 + 20;
                    idel[at(3)] = ntemp + i + j * 25;
                    idel[at(4)] = ntemp + i + j * 5 + 100;
                    idel[at(5)] = ntemp + i + j * 5;
                }
            }
        }
        let tx0: Vec<f64> = (0..lelt * PTS).map(|i| (i % 7) as f64 * 0.1).collect();
        let tmort: Vec<f64> = (0..lelt * PTS)
            .map(|i| 1.0 + (i % 5) as f64 * 0.2)
            .collect();
        let w = [0.2, 0.4, 0.6, 0.4, 0.2];
        Box::new(UaInstance {
            lelt,
            idel,
            tx: tx0.clone(),
            tx0,
            tmort,
            tmp: vec![0.0; lelt * Q * Q],
            w,
        })
    }
}

struct UaInstance {
    lelt: usize,
    idel: Vec<usize>,
    tx: Vec<f64>,
    tx0: Vec<f64>,
    tmort: Vec<f64>,
    tmp: Vec<f64>,
    w: [f64; Q],
}

impl UaInstance {
    #[inline]
    fn element(&self, iel: usize, tx: *mut f64, tmp: *mut f64) {
        // Gather stage.
        for j in 0..Q {
            for i in 0..Q {
                let il1 = self.idel[((iel * FACES + 1) * Q + j) * Q + i];
                let t = (iel * Q + j) * Q + i;
                // SAFETY: tmp slices are indexed by iel — disjoint.
                debug_assert!(t < self.tmp.len(), "tmp index {t} out of bounds");
                unsafe {
                    *tmp.add(t) = self.tmort[il1] * self.w[i];
                }
            }
        }
        // Scatter stage over all six faces.
        for f in 0..FACES {
            for j in 0..Q {
                for i in 0..Q {
                    let il2 = self.idel[((iel * FACES + f) * Q + j) * Q + i];
                    let ti = (iel * Q + j) * Q + i;
                    // SAFETY: idel is range-monotonic w.r.t. dimension 0
                    // (LEMMA 2): all il2 for this iel lie in
                    // [125·iel, 125·iel+124], disjoint across elements.
                    debug_assert!(
                        il2 < self.tx.len() && ti < self.tmp.len(),
                        "idel scatter target {il2} out of tx[0, {})",
                        self.tx.len()
                    );
                    unsafe {
                        let t = *tmp.add(ti);
                        *tx.add(il2) += t * self.w[j];
                    }
                }
            }
        }
    }
}

const COST_GATHER_PER_J: f64 = 5.0 * 4.0; // Q muls+adds per j row
const COST_SCATTER_PER_ELEM: f64 = (FACES * Q * Q) as f64 * 4.0;

impl KernelInstance for UaInstance {
    fn run_serial(&mut self) {
        let tx = self.tx.as_mut_ptr();
        let tmp = self.tmp.as_mut_ptr();
        for iel in 0..self.lelt {
            self.element(iel, tx, tmp);
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        let tx = SendPtr::new(self.tx.as_mut_ptr());
        let tmp = SendPtr::new(self.tmp.as_mut_ptr());
        let this: &UaInstance = self;
        pool.parallel_for(this.lelt, sched, |iel| {
            this.element(iel, tx.get(), tmp.get());
        });
    }

    fn run_inner(&mut self, pool: &ThreadPool, sched: Schedule) {
        // Classical strategy: only the 5-iteration gather loops fork; the
        // scatter stays serial.
        let tmp = SendPtr::new(self.tmp.as_mut_ptr());
        for iel in 0..self.lelt {
            let this: &UaInstance = self;
            pool.parallel_for(Q, sched, |j| {
                for i in 0..Q {
                    let il1 = this.idel[((iel * FACES + 1) * Q + j) * Q + i];
                    let t = (iel * Q + j) * Q + i;
                    debug_assert!(t < this.tmp.len(), "tmp index {t} out of bounds");
                    unsafe {
                        *tmp.get().add(t) = this.tmort[il1] * this.w[i];
                    }
                }
            });
            for f in 0..FACES {
                for j in 0..Q {
                    for i in 0..Q {
                        let il2 = self.idel[((iel * FACES + f) * Q + j) * Q + i];
                        self.tx[il2] += self.tmp[(iel * Q + j) * Q + i] * self.w[j];
                    }
                }
            }
        }
    }

    fn outer_costs(&self) -> Vec<f64> {
        (0..self.lelt)
            .map(|_| Q as f64 * COST_GATHER_PER_J + COST_SCATTER_PER_ELEM)
            .collect()
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        (0..self.lelt)
            .map(|_| InnerGroup {
                serial: COST_SCATTER_PER_ELEM,
                inner: vec![COST_GATHER_PER_J; Q],
            })
            .collect()
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.25 // gather/scatter with per-point arithmetic
    }

    fn checksum(&self) -> f64 {
        self.tx.iter().sum()
    }

    fn reset(&mut self) {
        self.tx.copy_from_slice(&self.tx0);
        self.tmp.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;

    #[test]
    fn idel_slices_are_disjoint_per_element() {
        let inst = UaTransf.prepare("test");
        // Verify through the checksum invariants: run twice must differ
        // deterministically (accumulation), but the construction invariant
        // is directly checkable on idel.
        drop(inst);
        let lelt = 4;
        let k = UaTransf.prepare("test");
        drop(k);
        // Direct check of the fill formula bounds.
        for iel in 0..lelt {
            let ntemp = PTS * iel;
            for j in 0..Q {
                for i in 0..Q {
                    for v in [
                        ntemp + i * 5 + j * 25 + 4,
                        ntemp + i * 5 + j * 25,
                        ntemp + i + j * 25 + 20,
                        ntemp + i + j * 25,
                        ntemp + i + j * 5 + 100,
                        ntemp + i + j * 5,
                    ] {
                        assert!(v >= PTS * iel && v < PTS * (iel + 1));
                    }
                }
            }
        }
    }

    #[test]
    fn variants_agree() {
        let pool = ThreadPool::new(3);
        let mut inst = UaTransf.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();

        inst.reset();
        inst.run_outer(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));

        inst.reset();
        inst.run_inner(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));
    }

    #[test]
    fn inner_strategy_forks_tiny_loops() {
        let inst = UaTransf.prepare("test");
        let groups = inst.inner_groups();
        assert!(groups.iter().all(|g| g.inner.len() == Q));
        assert!(groups.iter().all(|g| g.serial > 0.0));
    }
}
