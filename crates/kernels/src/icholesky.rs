//! Incomplete Cholesky, C version (SparseLib++): IC(0) factorization on
//! the fixed sparsity pattern of the input matrix. The subscript arrays
//! (`row_ptr`, `col_idx`) hold *input data*, so their properties "depend on
//! the program input" (paper, Section 4.3) — no compile-time configuration
//! parallelizes the factorization; Figure 17 shows no improvement.

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, ThreadPool};
use subsub_sparse::{gen, Csr};

/// IC(0) source: the column elimination loop with input-defined pattern
/// arrays (note the pattern arrays are parameters, never filled here —
/// there is nothing for the analysis to prove).
pub const SOURCE: &str = r#"
void icholesky(int n, int *row_ptr, int *col_idx, double *val, double *diag) {
    int j; int k; int p; double djj;
    for (j = 0; j < n; j++) {
        djj = diag[j];
        for (p = row_ptr[j]; p < row_ptr[j+1]; p++) {
            k = col_idx[p];
            diag[k] = diag[k] - val[p] * val[p] / djj;
            val[p] = val[p] / djj;
        }
    }
}
"#;

/// The Incomplete Cholesky benchmark.
pub struct ICholesky;

fn size_for(dataset: &str) -> usize {
    match dataset {
        "crankseg_1" => 6000,
        "test" => 24,
        other => panic!("unknown icholesky dataset {other}"),
    }
}

impl Kernel for ICholesky {
    fn name(&self) -> &'static str {
        "Incomplete-Cholesky"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "icholesky"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["crankseg_1"]
    }

    #[allow(clippy::needless_range_loop)]
    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let n = size_for(dataset);
        // A banded SPD-ish matrix; only the strictly-upper part is kept
        // (the pattern the elimination touches).
        let a = gen::banded(n, 10);
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for r in 0..n {
            for k in a.row_ptr[r]..a.row_ptr[r + 1] {
                let c = a.col_idx[k];
                if c > r {
                    rows[r].push((c, 0.1));
                }
            }
        }
        let upper = Csr::from_rows(n, n, rows);
        let diag0: Vec<f64> = (0..n).map(|i| 25.0 + (i % 3) as f64).collect();
        let val0 = upper.values.clone();
        Box::new(IcInstance {
            diag: diag0.clone(),
            val: val0.clone(),
            upper,
            diag0,
            val0,
        })
    }
}

struct IcInstance {
    upper: Csr,
    diag: Vec<f64>,
    val: Vec<f64>,
    diag0: Vec<f64>,
    val0: Vec<f64>,
}

impl KernelInstance for IcInstance {
    fn run_serial(&mut self) {
        // Repeat the elimination a few times so the kernel has measurable
        // weight (the paper times the full solver setup).
        for _ in 0..8 {
            for j in 0..self.upper.rows {
                let djj = self.diag[j].max(1e-9);
                for p in self.upper.row_ptr[j]..self.upper.row_ptr[j + 1] {
                    let k = self.upper.col_idx[p];
                    self.diag[k] -= self.val[p] * self.val[p] / djj;
                    self.val[p] /= djj;
                }
            }
        }
    }

    fn run_outer(&mut self, _pool: &ThreadPool, _sched: Schedule) {
        self.run_serial();
    }

    fn run_inner(&mut self, _pool: &ThreadPool, _sched: Schedule) {
        self.run_serial();
    }

    fn outer_costs(&self) -> Vec<f64> {
        vec![self.upper.nnz() as f64 * 6.0 * 8.0]
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        vec![InnerGroup {
            serial: self.upper.nnz() as f64 * 6.0 * 8.0,
            inner: vec![],
        }]
    }

    fn checksum(&self) -> f64 {
        self.diag.iter().sum::<f64>() + self.val.iter().sum::<f64>()
    }

    fn reset(&mut self) {
        self.diag.copy_from_slice(&self.diag0);
        self.val.copy_from_slice(&self.val0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_changes_state_and_resets() {
        let mut inst = ICholesky.prepare("test");
        let before = inst.checksum();
        inst.run_serial();
        let after = inst.checksum();
        assert!(after != before);
        inst.reset();
        assert_eq!(inst.checksum(), before);
    }

    #[test]
    fn diag_stays_finite() {
        let mut inst = ICholesky.prepare("test");
        inst.run_serial();
        assert!(inst.checksum().is_finite());
    }
}
