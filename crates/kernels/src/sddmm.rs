//! SDDMM (Nisa et al.): sampled dense–dense matrix multiplication over the
//! nonzeros of a sparse matrix in CSC layout (paper Figures 10 and 11,
//! Section 3.2).
//!
//! The `col_ptr` array is filled intermittently (LEMMA 1); non-strict
//! monotonicity makes per-column nonzero segments disjoint, so the new
//! algorithm parallelizes the outer column loop. Column work follows the
//! nonzero distribution — the dataset with skewed columns is also the
//! subject of the paper's dynamic-vs-static scheduling study (Figure 16).

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};
use subsub_rtcheck::{Bindings, IndexArrayView, MonotoneReq, Provenance, ValidatedIndexArray};
use subsub_sparse::{Csc, MatrixSpec};

/// Inline-expanded SDDMM source (CSC build loop + compute loop).
pub const SOURCE: &str = r#"
void sddmm(int n_cols, int nonzeros, int k, int *col_val, int *col_ptr,
           int *row_ind, double *W, double *H, double *nnz_val, double *p) {
    int i; int holder; int r; int ind; int t; double sm;
    holder = 1; col_ptr[0] = 0; r = col_val[0];
    for (i = 0; i < nonzeros; i++) {
        if (col_val[i] != r) {
            col_ptr[holder++] = i;
            r = col_val[i];
        }
    }
    for (r = 0; r < n_cols; r++) {
        for (ind = col_ptr[r]; ind < col_ptr[r+1]; ind++) {
            sm = 0.0;
            for (t = 0; t < k; t++) {
                sm += W[r*k + t] * H[row_ind[ind]*k + t];
            }
            p[ind] = sm * nnz_val[ind];
        }
    }
}
"#;

/// Dense-factor rank (the paper uses machine-learning factor matrices).
pub const RANK: usize = 16;

/// The SDDMM benchmark.
pub struct Sddmm;

/// Matrix recipes standing in for the four SuiteSparse inputs. The key
/// preserved characteristic is the column-degree distribution: `af_shell1`
/// is balanced (static scheduling competitive), the others are skewed.
pub fn spec_for(dataset: &str) -> MatrixSpec {
    match dataset {
        "gsm_106857" => MatrixSpec::PowerLaw {
            n: 3200,
            avg_deg: 24,
            alpha: 1.2,
            seed: 11,
        },
        "dielFilterV2clx" => MatrixSpec::PowerLaw {
            n: 3600,
            avg_deg: 20,
            alpha: 0.9,
            seed: 12,
        },
        "af_shell1" => MatrixSpec::Banded {
            n: 4000,
            half_bw: 11,
        },
        "inline_1" => MatrixSpec::PowerLaw {
            n: 3400,
            avg_deg: 22,
            alpha: 1.0,
            seed: 13,
        },
        "test" => MatrixSpec::PowerLaw {
            n: 60,
            avg_deg: 4,
            alpha: 1.0,
            seed: 1,
        },
        other => panic!("unknown SDDMM dataset {other}"),
    }
}

impl Kernel for Sddmm {
    fn name(&self) -> &'static str {
        "SDDMM"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "sddmm"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["dielFilterV2clx", "gsm_106857", "af_shell1", "inline_1"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let a = spec_for(dataset).build();
        let m = Csc::from_csr(&a);
        let n = m.cols;
        let w: Vec<f64> = (0..n * RANK)
            .map(|i| ((i % 13) as f64 - 6.0) * 0.1)
            .collect();
        let h: Vec<f64> = (0..m.rows * RANK)
            .map(|i| ((i % 11) as f64 - 5.0) * 0.1)
            .collect();
        let p = vec![0.0; m.nnz()];
        // Ingestion trust boundary: every column boundary must stay within
        // [0, nnz] — segment iteration `col_ptr[r]..col_ptr[r+1]` then
        // never produces a nonzero index past the p/values arrays.
        let col_ptr = ValidatedIndexArray::ingest(
            "col_ptr",
            m.col_ptr.clone(),
            m.nnz() + 1,
            Provenance::Dataset {
                name: dataset.to_string(),
            },
        )
        .expect("CSC column boundaries are bounded by nnz");
        Box::new(SddmmInstance {
            m,
            col_ptr,
            w,
            h,
            p,
        })
    }
}

struct SddmmInstance {
    m: Csc,
    /// The column-boundary subscript array behind the ingestion trust
    /// boundary (validated against nnz+1); all loops read this copy, not
    /// `m.col_ptr`, so dispatch only ever sees validated boundaries.
    col_ptr: ValidatedIndexArray,
    w: Vec<f64>,
    h: Vec<f64>,
    p: Vec<f64>,
}

impl SddmmInstance {
    #[inline]
    fn column(&self, r: usize, p: *mut f64) {
        for ind in self.col_ptr.data()[r]..self.col_ptr.data()[r + 1] {
            let row = self.m.row_ind[ind];
            let mut sm = 0.0;
            for t in 0..RANK {
                sm += self.w[r * RANK + t] * self.h[row * RANK + t];
            }
            // SAFETY (in parallel contexts): ingestion validated the
            // boundaries against nnz (so ind < nnz), and col_ptr is
            // monotone, so the segments [col_ptr[r], col_ptr[r+1]) of
            // distinct columns are disjoint — the property the analysis
            // proves.
            debug_assert!(ind < self.m.values.len(), "nnz index {ind} out of bounds");
            unsafe {
                *p.add(ind) = sm * self.m.values[ind];
            }
        }
    }
}

const COST_PER_NNZ: f64 = 4.0 * RANK as f64;
const COST_PER_COL: f64 = 30.0;

impl KernelInstance for SddmmInstance {
    fn run_serial(&mut self) {
        let p = self.p.as_mut_ptr();
        for r in 0..self.m.cols {
            self.column(r, p);
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        let p = SendPtr::new(self.p.as_mut_ptr());
        let this: &SddmmInstance = self;
        pool.parallel_for(this.m.cols, sched, |r| {
            this.column(r, p.get());
        });
    }

    fn run_inner(&mut self, pool: &ThreadPool, sched: Schedule) {
        // Classical strategy: serial column loop, fork over each column's
        // nonzero segment.
        let p = SendPtr::new(self.p.as_mut_ptr());
        for r in 0..self.m.cols {
            let lo = self.col_ptr.data()[r];
            let hi = self.col_ptr.data()[r + 1];
            let len = hi.saturating_sub(lo);
            let this: &SddmmInstance = self;
            pool.parallel_for(len, sched, |i| {
                let ind = lo + i;
                let row = this.m.row_ind[ind];
                let mut sm = 0.0;
                for t in 0..RANK {
                    sm += this.w[r * RANK + t] * this.h[row * RANK + t];
                }
                debug_assert!(ind < this.m.values.len(), "nnz index {ind} out of bounds");
                unsafe {
                    *p.get().add(ind) = sm * this.m.values[ind];
                }
            });
        }
    }

    fn outer_costs(&self) -> Vec<f64> {
        (0..self.m.cols)
            .map(|c| COST_PER_COL + COST_PER_NNZ * self.m.col_nnz(c) as f64)
            .collect()
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        (0..self.m.cols)
            .map(|c| InnerGroup {
                serial: COST_PER_COL,
                inner: vec![COST_PER_NNZ; self.m.col_nnz(c)],
            })
            .collect()
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.25 // rank-16 dot products add compute per nonzero
    }

    fn runtime_bindings(&self) -> Bindings {
        // The CSC build loop leaves holder == n_cols (every column
        // boundary written), which is what admits the outer loop.
        let mut b = Bindings::new();
        b.set_var("n_cols", self.m.cols as i64)
            .set_post_max("holder", self.m.cols as i64);
        b
    }

    fn index_arrays(&self) -> Vec<IndexArrayView<'_>> {
        // Segments [col_ptr[r], col_ptr[r+1]) need only be disjoint:
        // non-strict monotonicity (empty columns allowed).
        vec![self.col_ptr.view(MonotoneReq::NonStrict)]
    }

    fn tamper_index_arrays(&mut self) -> bool {
        // Swap the first unequal adjacent boundary pair: the larger value
        // now precedes the smaller, breaking (non-strict) monotonicity
        // while keeping every entry bounded by nnz — all segment accesses
        // stay in bounds and the serial variant stays deterministic
        // (the inverted segment is just an empty Rust range).
        // `mutate_range` keeps the array validated and bumps the
        // version, snapshotting only the two touched entries.
        let ptr = self.col_ptr.data();
        let Some(r) = (1..ptr.len()).find(|&r| ptr[r] > ptr[r - 1]) else {
            return false;
        };
        self.col_ptr
            .mutate_range(r - 1..r + 1, |w| w.swap(0, 1))
            .expect("swapping in-domain entries stays in domain");
        true
    }

    fn checksum(&self) -> f64 {
        self.p.iter().sum()
    }

    fn reset(&mut self) {
        self.p.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;
    use subsub_sparse::DegreeStats;

    #[test]
    fn variants_agree() {
        let pool = ThreadPool::new(4);
        let mut inst = Sddmm.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();
        assert!(reference.is_finite());

        inst.reset();
        inst.run_outer(&pool, Schedule::dynamic_default());
        assert!(close(inst.checksum(), reference));

        inst.reset();
        inst.run_inner(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));
    }

    #[test]
    fn af_shell_is_balanced_others_skewed() {
        let bal = Csc::from_csr(&spec_for("af_shell1").build());
        let skew = Csc::from_csr(&spec_for("gsm_106857").build());
        assert!(DegreeStats::of_cols(&bal).imbalance() < 1.2);
        assert!(DegreeStats::of_cols(&skew).imbalance() > 2.0);
    }

    #[test]
    fn cost_models_consistent() {
        let inst = Sddmm.prepare("test");
        let outer: f64 = inst.outer_costs().iter().sum();
        let inner = crate::common::serial_cost(&inst.inner_groups());
        assert!((outer - inner).abs() < 1e-9);
    }
}
