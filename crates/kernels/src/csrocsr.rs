//! CSR-of-CSR two-level gather: a row-offset table addressed *through* an
//! active-row list — the multi-level indirection pattern `y[ind1[ind2[j]]]`
//! of the precursor paper (arXiv 1911.05839).
//!
//! Two subscript arrays chain: `row_start` is a strided prefix recurrence
//! (`p = p + 2`, strided-monotone SRA), `act` is an intermittent
//! compaction (LEMMA 1, strictly monotone). Injective ∘ injective is
//! injective, so distinct iterations of the use loop scatter to distinct
//! elements of `y` — but the inner level needs the intermittent concept,
//! so only the **new** algorithm proves the composition, with the runtime
//! check `num_act - 1 <= m_max` bounding the loop range inside the inner
//! array's proven domain.

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};
use subsub_rtcheck::{Bindings, IndexArrayView, MonotoneReq, Provenance, ValidatedIndexArray};

/// Offset stride of the `row_start` recurrence.
pub const STRIDE: usize = 2;

/// Inline-expanded source: strided `row_start` fill, intermittent `act`
/// compaction, then the composed-gather use loop.
pub const SOURCE: &str = r#"
void csrocsr(int num_rows, int num_act, int *row_start, int *act,
             double *y, double *g) {
    int i; int m; int p;
    p = 0;
    for (i = 0; i < num_rows; i++) {
        row_start[i] = p;
        p = p + 2;
    }
    m = 0;
    for (i = 0; i < num_rows; i++) {
        if (g[i] > 0.0) {
            act[m++] = i;
        }
    }
    for (i = 0; i < num_act; i++) {
        y[row_start[act[i]]] = y[row_start[act[i]]] + g[i];
    }
}
"#;

/// The CSR-of-CSR two-level gather benchmark.
pub struct CsrOfCsr;

fn rows_for(dataset: &str) -> usize {
    match dataset {
        "rows64k" => 65_536,
        "test" => 48,
        other => panic!("unknown CSRoCSR dataset {other}"),
    }
}

impl Kernel for CsrOfCsr {
    fn name(&self) -> &'static str {
        "CSRoCSR"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "csrocsr"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["rows64k"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let num_rows = rows_for(dataset);
        let y0: Vec<f64> = (0..num_rows * STRIDE)
            .map(|i| (i % 5) as f64 * 0.5)
            .collect();
        // g drives the compaction: every 3rd row is inactive.
        let g: Vec<f64> = (0..num_rows)
            .map(|i| {
                if i % 3 == 1 {
                    -0.5
                } else {
                    0.5 + (i % 7) as f64 * 0.25
                }
            })
            .collect();
        // Outer level: strided prefix offsets into y.
        let row_start = ValidatedIndexArray::ingest(
            "row_start",
            (0..num_rows).map(|i| i * STRIDE).collect(),
            y0.len(),
            Provenance::Dataset {
                name: dataset.to_string(),
            },
        )
        .expect("strided offsets are bounded by |y|");
        // Inner level: active rows, ingested against the *outer* array's
        // length — the chained-domain premise of the composed verdict.
        let act = ValidatedIndexArray::ingest(
            "act",
            (0..num_rows).filter(|i| g[*i] > 0.0).collect(),
            row_start.len(),
            Provenance::Dataset {
                name: dataset.to_string(),
            },
        )
        .expect("active rows are row indices");
        Box::new(CsrOfCsrInstance {
            y: y0.clone(),
            row_start,
            act,
            g,
            y0,
        })
    }
}

struct CsrOfCsrInstance {
    /// Outer level of the composition (strided-monotone offsets).
    row_start: ValidatedIndexArray,
    /// Inner level (intermittent active-row list), domain-chained to
    /// `row_start.len()`.
    act: ValidatedIndexArray,
    g: Vec<f64>,
    y: Vec<f64>,
    y0: Vec<f64>,
}

const COST_PER_GATHER: f64 = 9.0;

impl KernelInstance for CsrOfCsrInstance {
    fn run_serial(&mut self) {
        for j in 0..self.act.len() {
            let m = self.act.data()[j];
            let t = self.row_start.data()[m];
            self.y[t] += self.g[j];
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        let y = SendPtr::new(self.y.as_mut_ptr());
        let y_len = self.y.len();
        let this: &CsrOfCsrInstance = self;
        pool.parallel_for(this.act.len(), sched, |j| {
            let m = this.act.data()[j];
            let t = this.row_start.data()[m];
            // SAFETY: both levels passed the ingestion trust boundary
            // (act entries index row_start, row_start entries index y)
            // and both are strictly monotone, so the composed subscripts
            // are pairwise distinct — distinct iterations write distinct
            // elements.
            debug_assert!(t < y_len, "row_start[act[{j}]] = {t} out of y[0, {y_len})");
            unsafe {
                *y.get().add(t) += this.g[j];
            }
        });
    }

    fn run_inner(&mut self, _pool: &ThreadPool, _sched: Schedule) {
        // The use loop has no inner nest: classical fallback is serial.
        self.run_serial();
    }

    fn outer_costs(&self) -> Vec<f64> {
        vec![COST_PER_GATHER; self.act.len()]
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        (0..self.act.len())
            .map(|_| InnerGroup {
                serial: COST_PER_GATHER,
                inner: vec![],
            })
            .collect()
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.9 // two dependent gathers per element: latency/bandwidth bound
    }

    fn runtime_bindings(&self) -> Bindings {
        // The compaction leaves m == |act|; the use loop runs to num_act,
        // which the harness sets to the same count.
        let mut b = Bindings::new();
        b.set_var("num_act", self.act.len() as i64)
            .set_post_max("m", self.act.len() as i64);
        b
    }

    fn index_arrays(&self) -> Vec<IndexArrayView<'_>> {
        // Both levels must be injective for the composition to scatter
        // to pairwise-distinct targets.
        vec![
            self.row_start.view(MonotoneReq::Strict),
            self.act.view(MonotoneReq::Strict),
        ]
    }

    fn tamper_index_arrays(&mut self) -> bool {
        if self.act.len() < 2 {
            return false;
        }
        // Duplicate an inner-level entry: still sorted and in-domain, no
        // longer injective — the composed scatter would race, so the
        // guard must reject and rescue serially.
        self.act
            .mutate_range(0..2, |w| w[1] = w[0])
            .expect("duplicating an in-domain entry stays in domain");
        true
    }

    fn checksum(&self) -> f64 {
        self.y.iter().sum()
    }

    fn reset(&mut self) {
        self.y.copy_from_slice(&self.y0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;
    use subsub_rtcheck::composed_verdict;

    #[test]
    fn variants_agree() {
        let pool = ThreadPool::new(3);
        let mut inst = CsrOfCsr.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();
        assert!(reference.is_finite() && reference != 0.0);

        inst.reset();
        inst.run_outer(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));

        inst.reset();
        inst.run_inner(&pool, Schedule::dynamic_default());
        assert!(close(inst.checksum(), reference));
    }

    #[test]
    fn composition_is_strict_until_tampered() {
        let kernel = CsrOfCsr;
        let num_rows = 48;
        // Rebuild the same levels prepare() ingests and check the
        // composed verdict both ways.
        let g: Vec<f64> = (0..num_rows)
            .map(|i| if i % 3 == 1 { -0.5 } else { 1.0 })
            .collect();
        let row_start = ValidatedIndexArray::ingest(
            "row_start",
            (0..num_rows).map(|i| i * STRIDE).collect(),
            num_rows * STRIDE,
            Provenance::Dataset {
                name: "test".into(),
            },
        )
        .unwrap();
        let mut act = ValidatedIndexArray::ingest(
            "act",
            (0..num_rows).filter(|i| g[*i] > 0.0).collect(),
            row_start.len(),
            Provenance::Dataset {
                name: "test".into(),
            },
        )
        .unwrap();
        assert!(composed_verdict(&row_start, &act).strict);
        act.mutate_range(0..2, |w| w[1] = w[0]).unwrap();
        let c = composed_verdict(&row_start, &act);
        assert!(!c.strict && c.nonstrict);
        let _ = kernel;
    }

    #[test]
    fn tamper_breaks_injectivity_but_serial_stays_deterministic() {
        let mut inst = CsrOfCsr.prepare("test");
        assert!(inst.tamper_index_arrays());
        inst.run_serial();
        let a = inst.checksum();
        inst.reset();
        inst.run_serial();
        assert!(close(inst.checksum(), a));
    }
}
