//! fdtd-2d (PolyBench 4.2): 2-D finite-difference time-domain kernel.
//! Serial time loop, classically parallel field sweeps (Figure 17 credits
//! plain Cetus).

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};

/// fdtd-2d source: time loop updating ey, ex and hz.
pub const SOURCE: &str = r#"
void fdtd2d(int tmax, int nx, int ny, double ex[1000][1000],
            double ey[1000][1000], double hz[1000][1000], double *fict) {
    int t; int i; int j;
    for (t = 0; t < tmax; t++) {
        for (j = 0; j < ny; j++) {
            ey[0][j] = fict[t];
        }
        for (i = 1; i < nx; i++) {
            for (j = 0; j < ny; j++) {
                ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);
            }
        }
        for (i = 0; i < nx; i++) {
            for (j = 1; j < ny; j++) {
                ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);
            }
        }
        for (i = 0; i < nx - 1; i++) {
            for (j = 0; j < ny - 1; j++) {
                hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
            }
        }
    }
}
"#;

/// The fdtd-2d benchmark.
pub struct Fdtd2d;

fn size_for(dataset: &str) -> (usize, usize) {
    // (n, tmax)
    match dataset {
        "LARGE" => (700, 30),
        "EXTRALARGE" => (1000, 30),
        "test" => (16, 3),
        other => panic!("unknown fdtd-2d dataset {other}"),
    }
}

impl Kernel for Fdtd2d {
    fn name(&self) -> &'static str {
        "fdtd-2d"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "fdtd2d"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["EXTRALARGE", "LARGE"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let (n, tmax) = size_for(dataset);
        let init =
            |s: usize| -> Vec<f64> { (0..n * n).map(|i| ((i + s) % 9) as f64 * 0.05).collect() };
        Box::new(Fdtd2dInstance {
            n,
            tmax,
            ex: init(0),
            ey: init(3),
            hz: init(5),
            ex0: init(0),
            ey0: init(3),
            hz0: init(5),
        })
    }
}

struct Fdtd2dInstance {
    n: usize,
    tmax: usize,
    ex: Vec<f64>,
    ey: Vec<f64>,
    hz: Vec<f64>,
    ex0: Vec<f64>,
    ey0: Vec<f64>,
    hz0: Vec<f64>,
}

impl KernelInstance for Fdtd2dInstance {
    fn run_serial(&mut self) {
        let n = self.n;
        let at = |i: usize, j: usize| i * n + j;
        for t in 0..self.tmax {
            for j in 0..n {
                self.ey[at(0, j)] = t as f64 * 0.01;
            }
            for i in 1..n {
                for j in 0..n {
                    self.ey[at(i, j)] -= 0.5 * (self.hz[at(i, j)] - self.hz[at(i - 1, j)]);
                }
            }
            for i in 0..n {
                for j in 1..n {
                    self.ex[at(i, j)] -= 0.5 * (self.hz[at(i, j)] - self.hz[at(i, j - 1)]);
                }
            }
            for i in 0..n - 1 {
                for j in 0..n - 1 {
                    self.hz[at(i, j)] -= 0.7
                        * (self.ex[at(i, j + 1)] - self.ex[at(i, j)] + self.ey[at(i + 1, j)]
                            - self.ey[at(i, j)]);
                }
            }
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        self.run_inner(pool, sched);
    }

    fn run_inner(&mut self, pool: &ThreadPool, sched: Schedule) {
        let n = self.n;
        for t in 0..self.tmax {
            for j in 0..n {
                self.ey[j] = t as f64 * 0.01;
            }
            {
                let ey = SendPtr::new(self.ey.as_mut_ptr());
                let ey_len = self.ey.len();
                let hz = &self.hz;
                pool.parallel_for(n - 1, sched, |ii| {
                    let i = ii + 1;
                    for j in 0..n {
                        debug_assert!(i * n + j < ey_len, "ey index out of bounds");
                        unsafe {
                            *ey.get().add(i * n + j) -= 0.5 * (hz[i * n + j] - hz[(i - 1) * n + j]);
                        }
                    }
                });
            }
            {
                let ex = SendPtr::new(self.ex.as_mut_ptr());
                let ex_len = self.ex.len();
                let hz = &self.hz;
                pool.parallel_for(n, sched, |i| {
                    for j in 1..n {
                        debug_assert!(i * n + j < ex_len, "ex index out of bounds");
                        unsafe {
                            *ex.get().add(i * n + j) -= 0.5 * (hz[i * n + j] - hz[i * n + j - 1]);
                        }
                    }
                });
            }
            {
                let hz = SendPtr::new(self.hz.as_mut_ptr());
                let hz_len = self.hz.len();
                let ex = &self.ex;
                let ey = &self.ey;
                pool.parallel_for(n - 1, sched, |i| {
                    for j in 0..n - 1 {
                        debug_assert!(i * n + j < hz_len, "hz index out of bounds");
                        unsafe {
                            *hz.get().add(i * n + j) -= 0.7
                                * (ex[i * n + j + 1] - ex[i * n + j] + ey[(i + 1) * n + j]
                                    - ey[i * n + j]);
                        }
                    }
                });
            }
        }
    }

    fn outer_costs(&self) -> Vec<f64> {
        self.inner_groups()
            .into_iter()
            .flat_map(|g| g.inner)
            .collect()
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        let row_cost = self.n as f64 * 5.0;
        (0..self.tmax * 3)
            .map(|_| InnerGroup {
                serial: 0.0,
                inner: vec![row_cost; self.n - 1],
            })
            .collect()
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.6 // three streaming field sweeps
    }

    fn checksum(&self) -> f64 {
        self.ex.iter().sum::<f64>() + self.ey.iter().sum::<f64>() + self.hz.iter().sum::<f64>()
    }

    fn reset(&mut self) {
        self.ex.copy_from_slice(&self.ex0);
        self.ey.copy_from_slice(&self.ey0);
        self.hz.copy_from_slice(&self.hz0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;

    #[test]
    fn parallel_matches_serial() {
        let pool = ThreadPool::new(3);
        let mut inst = Fdtd2d.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();
        inst.reset();
        inst.run_inner(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));
    }
}
