//! Common kernel abstractions shared by the benchmark harnesses.

use subsub_omprt::{Schedule, ThreadPool};
use subsub_rtcheck::{Bindings, IndexArrayView};

/// Which implementation strategy a parallelizer's decision selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// No parallel loop found: run the serial implementation.
    Serial,
    /// Parallelism only at inner-loop level (classical decision on the
    /// subscripted-subscript benchmarks): fork a team per outer iteration.
    InnerParallel,
    /// The outermost loop is parallel (the paper's analysis, or classical
    /// analysis on regular benchmarks).
    OuterParallel,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::Serial => write!(f, "serial"),
            Variant::InnerParallel => write!(f, "inner-parallel"),
            Variant::OuterParallel => write!(f, "outer-parallel"),
        }
    }
}

/// The inner-parallel work structure of one outer iteration: a serial
/// prologue cost plus the per-iteration costs of the inner parallel loop.
#[derive(Debug, Clone)]
pub struct InnerGroup {
    /// Work outside the inner parallel loop (always serial).
    pub serial: f64,
    /// Per-iteration costs of the inner loop.
    pub inner: Vec<f64>,
}

/// A benchmark: metadata plus an instance factory.
pub trait Kernel: Sync {
    /// Benchmark name as in the paper's Table 1.
    fn name(&self) -> &'static str;

    /// The inline-expanded C-subset source the analysis pipeline consumes.
    fn source(&self) -> &'static str;

    /// The function within [`Kernel::source`] to analyze.
    fn func_name(&self) -> &'static str;

    /// Available dataset names (first is the Experiment-2 default).
    fn datasets(&self) -> Vec<&'static str>;

    /// Builds a concrete problem instance for a dataset. Panics on an
    /// unknown dataset name.
    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance>;
}

/// One materialized problem instance.
pub trait KernelInstance: Send {
    /// Runs the serial reference implementation.
    fn run_serial(&mut self);

    /// Runs the outer-parallel implementation. Implementations without
    /// outer parallelism fall back to serial.
    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule);

    /// Runs the inner-parallel implementation. Implementations without an
    /// inner strategy fall back to serial.
    fn run_inner(&mut self, pool: &ThreadPool, sched: Schedule);

    /// Work model for the outer-parallel strategy: one abstract cost per
    /// outer-loop iteration (units are calibrated by the harness against a
    /// serial run).
    fn outer_costs(&self) -> Vec<f64>;

    /// Work model for the inner-parallel strategy.
    fn inner_groups(&self) -> Vec<InnerGroup>;

    /// Fraction of the kernel's work bound by shared memory bandwidth
    /// (feeds the simulator's roofline; 0.0 = compute-bound). Defaults to
    /// a middle-of-the-road 0.5.
    fn mem_bound_fraction(&self) -> f64 {
        0.5
    }

    /// Scalar values for the symbols of the kernel's runtime check
    /// (loop bounds, post-loop counter values). Kernels whose decision
    /// carries no check return an empty environment.
    fn runtime_bindings(&self) -> Bindings {
        Bindings::new()
    }

    /// The runtime index arrays whose monotonicity the outer-parallel
    /// variant relies on, for inspection by a guarded executor. Empty for
    /// kernels without subscripted subscripts.
    fn index_arrays(&self) -> Vec<IndexArrayView<'_>> {
        Vec::new()
    }

    /// Corrupts one index array in a way that breaks its required
    /// monotonicity, bumping its version so cached verdicts invalidate.
    /// Returns `false` when the kernel has nothing to tamper with. The
    /// serial variant must stay deterministic on the tampered instance.
    fn tamper_index_arrays(&mut self) -> bool {
        false
    }

    /// A value derived from the output, for cross-variant validation.
    fn checksum(&self) -> f64;

    /// Restores the instance to its initial state so another variant can
    /// run on identical input.
    fn reset(&mut self);

    /// Runs the chosen variant.
    fn run(&mut self, variant: Variant, pool: &ThreadPool, sched: Schedule) {
        let label = match variant {
            Variant::Serial => "serial",
            Variant::InnerParallel => "inner-parallel",
            Variant::OuterParallel => "outer-parallel",
        };
        let _run_span = subsub_telemetry::span_labeled(subsub_telemetry::Phase::KernelRun, label);
        match variant {
            Variant::Serial => self.run_serial(),
            Variant::InnerParallel => self.run_inner(pool, sched),
            Variant::OuterParallel => self.run_outer(pool, sched),
        }
    }
}

/// Total work of the serial execution under the cost model.
pub fn serial_cost(groups: &[InnerGroup]) -> f64 {
    groups
        .iter()
        .map(|g| g.serial + g.inner.iter().sum::<f64>())
        .sum()
}

/// Relative checksum agreement for cross-variant validation (parallel
/// reductions reorder floating-point sums).
pub fn close(a: f64, b: f64) -> bool {
    let denom = a.abs().max(b.abs()).max(1e-12);
    ((a - b) / denom).abs() < 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_cost_sums_groups() {
        let gs = vec![
            InnerGroup {
                serial: 1.0,
                inner: vec![2.0, 3.0],
            },
            InnerGroup {
                serial: 0.5,
                inner: vec![],
            },
        ];
        assert!((serial_cost(&gs) - 6.5).abs() < 1e-12);
    }

    #[test]
    fn close_tolerates_reordering_noise() {
        assert!(close(1.0, 1.0 + 1e-9));
        assert!(!close(1.0, 1.1));
        assert!(close(0.0, 0.0));
    }
}
