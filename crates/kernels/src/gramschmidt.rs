//! gramschmidt (PolyBench 4.2): modified Gram–Schmidt QR factorization.
//! The `k`-loop is inherently sequential; the column-update `j`-loop is
//! classically parallel (Figure 17 credits plain Cetus, with modest
//! speedup because of the shrinking inner loop).

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};

/// gramschmidt source with 2-D arrays (the normalization uses sqrt, an
/// analyzable side-effect-free call).
pub const SOURCE: &str = r#"
void gramschmidt(int m, int n, double A[600][600], double R[600][600],
                 double Q[600][600]) {
    int i; int j; int k; double nrm;
    for (k = 0; k < n; k++) {
        nrm = 0.0;
        for (i = 0; i < m; i++) {
            nrm = nrm + A[i][k] * A[i][k];
        }
        R[k][k] = sqrt(nrm);
        for (i = 0; i < m; i++) {
            Q[i][k] = A[i][k] / R[k][k];
        }
        for (j = k + 1; j < n; j++) {
            R[k][j] = 0.0;
            for (i = 0; i < m; i++) {
                R[k][j] = R[k][j] + Q[i][k] * A[i][j];
            }
            for (i = 0; i < m; i++) {
                A[i][j] = A[i][j] - Q[i][k] * R[k][j];
            }
        }
    }
}
"#;

/// The gramschmidt benchmark.
pub struct Gramschmidt;

fn size_for(dataset: &str) -> usize {
    match dataset {
        "LARGE" => 300,
        "EXTRALARGE" => 420,
        "test" => 14,
        other => panic!("unknown gramschmidt dataset {other}"),
    }
}

impl Kernel for Gramschmidt {
    fn name(&self) -> &'static str {
        "gramschmidt"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "gramschmidt"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["EXTRALARGE", "LARGE"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let n = size_for(dataset);
        let a0: Vec<f64> = (0..n * n)
            .map(|i| ((i % 23) as f64 - 11.0) * 0.07 + if i % (n + 1) == 0 { 4.0 } else { 0.0 })
            .collect();
        Box::new(GsInstance {
            n,
            a: a0.clone(),
            q: vec![0.0; n * n],
            r: vec![0.0; n * n],
            a0,
        })
    }
}

struct GsInstance {
    n: usize,
    a: Vec<f64>,
    q: Vec<f64>,
    r: Vec<f64>,
    a0: Vec<f64>,
}

impl GsInstance {
    /// One column update: `R[k][j] = Q[:,k]·A[:,j]; A[:,j] -= Q[:,k]·R[k][j]`.
    #[inline]
    fn update(&self, k: usize, j: usize, a: *mut f64, r: *mut f64) {
        let n = self.n;
        // k and j in range bound every pointer offset below by n*n, the
        // length of the a/q/r buffers.
        debug_assert!(k < n && j < n, "column pair ({k}, {j}) out of [0, {n})");
        let mut dot = 0.0;
        for i in 0..n {
            // SAFETY: column j is written only by iteration j of the
            // parallel loop; reads of column k are shared and immutable
            // within the region.
            unsafe {
                dot += self.q[i * n + k] * *a.add(i * n + j);
            }
        }
        unsafe {
            *r.add(k * n + j) = dot;
            for i in 0..n {
                *a.add(i * n + j) -= self.q[i * n + k] * dot;
            }
        }
    }

    fn head(&mut self, k: usize) {
        let n = self.n;
        let mut nrm = 0.0;
        for i in 0..n {
            nrm += self.a[i * n + k] * self.a[i * n + k];
        }
        let d = nrm.sqrt().max(1e-12);
        self.r[k * n + k] = d;
        for i in 0..n {
            self.q[i * n + k] = self.a[i * n + k] / d;
        }
    }
}

impl KernelInstance for GsInstance {
    fn run_serial(&mut self) {
        for k in 0..self.n {
            self.head(k);
            let a = self.a.as_mut_ptr();
            let r = self.r.as_mut_ptr();
            for j in k + 1..self.n {
                self.update(k, j, a, r);
            }
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        self.run_inner(pool, sched);
    }

    fn run_inner(&mut self, pool: &ThreadPool, sched: Schedule) {
        for k in 0..self.n {
            self.head(k);
            let a = SendPtr::new(self.a.as_mut_ptr());
            let r = SendPtr::new(self.r.as_mut_ptr());
            let this: &GsInstance = self;
            let len = this.n - k - 1;
            pool.parallel_for(len, sched, |jj| {
                this.update(k, k + 1 + jj, a.get(), r.get());
            });
        }
    }

    fn outer_costs(&self) -> Vec<f64> {
        self.inner_groups()
            .into_iter()
            .flat_map(|g| g.inner)
            .collect()
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        let col = self.n as f64 * 4.0;
        (0..self.n)
            .map(|k| InnerGroup {
                serial: self.n as f64 * 3.0,
                inner: vec![col; self.n - k - 1],
            })
            .collect()
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.3 // repeated column passes
    }

    fn checksum(&self) -> f64 {
        self.q.iter().sum::<f64>() + self.r.iter().sum::<f64>()
    }

    fn reset(&mut self) {
        self.a.copy_from_slice(&self.a0);
        self.q.fill(0.0);
        self.r.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;

    #[test]
    fn parallel_matches_serial() {
        let pool = ThreadPool::new(3);
        let mut inst = Gramschmidt.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();
        inst.reset();
        inst.run_inner(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));
    }

    #[test]
    fn q_columns_are_orthonormal_ish() {
        let mut inst = GsInstance {
            n: 8,
            a: (0..64)
                .map(|i| ((i % 9) as f64 - 4.0) + if i % 9 == 0 { 8.0 } else { 0.0 })
                .collect(),
            q: vec![0.0; 64],
            r: vec![0.0; 64],
            a0: vec![0.0; 64],
        };
        inst.a0 = inst.a.clone();
        inst.run_serial();
        let n = 8;
        for k in 0..n {
            let norm: f64 = (0..n).map(|i| inst.q[i * n + k] * inst.q[i * n + k]).sum();
            assert!((norm - 1.0).abs() < 1e-6, "column {k} norm {norm}");
        }
    }
}
