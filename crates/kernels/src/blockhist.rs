//! Block-periodic histogram: keys restart a strictly increasing ramp at
//! every block of `B` elements — the block-monotone/periodic index-array
//! pattern of *Inductive Loop Analysis* (arXiv 2511.06052).
//!
//! Globally the key array is *not* monotone (the ramp restarts), so — as
//! with IS — no compile-time configuration parallelizes the flat loop and
//! the analysis verdict is serial at every level. The parallelism here is
//! *block-structured* and self-guarded at the kernel layer: within each
//! block the keys are strictly increasing (pairwise-distinct scatter
//! targets), which `BlockSummaries::block_verdict` proves in O(blocks)
//! from the maintained summaries. The block-parallel path runs blocks
//! serially and iterations within a block in parallel, and demotes itself
//! to the serial reference whenever the block-monotone verdict fails.

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};
use subsub_rtcheck::{
    inspect_block_monotone, IndexArrayView, Provenance, ValidatedIndexArray, BLOCK_LEN,
};

/// The block (period) length. Equal to the summary block length so the
/// block-monotone verdict recombines from summaries in O(blocks) rather
/// than rescanning O(n) elements.
pub const B: usize = BLOCK_LEN;

/// Flat histogram source — data-dependent subscripts, serial at every
/// analysis level (the block structure is a runtime property).
pub const SOURCE: &str = r#"
void bhist(int n, int *key, double *y, double *g) {
    int i;
    for (i = 0; i < n; i++) {
        y[key[i]] = y[key[i]] + g[i];
    }
}
"#;

/// The block-periodic histogram benchmark.
pub struct BlockHist;

fn blocks_for(dataset: &str) -> usize {
    match dataset {
        "blk64" => 64,
        "test" => 2,
        other => panic!("unknown BlockHist dataset {other}"),
    }
}

impl Kernel for BlockHist {
    fn name(&self) -> &'static str {
        "BlockHist"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "bhist"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["blk64"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let nblocks = blocks_for(dataset);
        let n = nblocks * B;
        let domain = 2 * B;
        // key[i] = 2*(i mod B) + parity(block): strictly increasing
        // within every block, restarting (hence globally non-monotone)
        // at each block boundary. Adjacent blocks interleave on odd/even
        // targets, so the serial cross-block order matters — exactly the
        // hazard the block-serial dispatch preserves.
        let keys: Vec<usize> = (0..n).map(|i| 2 * (i % B) + (i / B) % 2).collect();
        let key = ValidatedIndexArray::ingest(
            "key",
            keys,
            domain,
            Provenance::Dataset {
                name: dataset.to_string(),
            },
        )
        .expect("periodic keys are bounded by the bucket count");
        let y0: Vec<f64> = (0..domain).map(|i| (i % 3) as f64 * 0.25).collect();
        let g: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.5).collect();
        Box::new(BlockHistInstance {
            y: y0.clone(),
            key,
            g,
            y0,
        })
    }
}

struct BlockHistInstance {
    /// Periodic keys behind the ingestion trust boundary.
    key: ValidatedIndexArray,
    g: Vec<f64>,
    y: Vec<f64>,
    y0: Vec<f64>,
}

const COST_PER_KEY: f64 = 4.0;

impl BlockHistInstance {
    /// The block-monotone license: strict-within-blocks, recombined from
    /// summaries when `B` aligns, ground-truth scanned otherwise.
    fn block_strict(&self) -> bool {
        match self.key.summaries().block_verdict(B) {
            Some(v) => v.strict,
            None => inspect_block_monotone(self.key.data(), B).strict,
        }
    }
}

impl KernelInstance for BlockHistInstance {
    fn run_serial(&mut self) {
        for i in 0..self.key.len() {
            let t = self.key.data()[i];
            self.y[t] += self.g[i];
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        // Self-guarded block-parallel dispatch: blocks run serially (two
        // blocks may share targets), iterations within a block run in
        // parallel (within-block strictness makes targets distinct).
        if !self.block_strict() {
            self.run_serial();
            return;
        }
        let y = SendPtr::new(self.y.as_mut_ptr());
        let y_len = self.y.len();
        let this: &BlockHistInstance = self;
        for (k, block) in this.key.data().chunks(B).enumerate() {
            let base = k * B;
            pool.parallel_for(block.len(), sched, |i| {
                let t = block[i];
                // SAFETY: ingestion validated t < y.len(), and the
                // block-monotone verdict proved within-block strictness,
                // so iterations of this block write distinct elements.
                debug_assert!(t < y_len, "key[{base} + {i}] = {t} out of y[0, {y_len})");
                unsafe {
                    *y.get().add(t) += this.g[base + i];
                }
            });
        }
    }

    fn run_inner(&mut self, pool: &ThreadPool, sched: Schedule) {
        // The block-parallel strategy *is* the inner strategy (serial
        // over blocks, parallel within).
        self.run_outer(pool, sched);
    }

    fn outer_costs(&self) -> Vec<f64> {
        self.key
            .data()
            .chunks(B)
            .map(|b| COST_PER_KEY * b.len() as f64)
            .collect()
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        self.key
            .data()
            .chunks(B)
            .map(|b| InnerGroup {
                serial: 0.0,
                inner: vec![COST_PER_KEY; b.len()],
            })
            .collect()
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.85 // scattered read-modify-write over a small bucket set
    }

    fn index_arrays(&self) -> Vec<IndexArrayView<'_>> {
        // Deliberately empty: the whole-array monotone requirement the
        // guard would impose is false by construction (the ramp
        // restarts). The block-monotone license is checked by the
        // kernel's own dispatch above.
        Vec::new()
    }

    fn tamper_index_arrays(&mut self) -> bool {
        if self.key.len() < 2 {
            return false;
        }
        // Duplicate a key *within* the first block: still in-domain, but
        // within-block strictness breaks, so the block-parallel path
        // must demote itself to serial.
        self.key
            .mutate_range(0..2, |w| w[1] = w[0])
            .expect("duplicating an in-domain key stays in domain");
        true
    }

    fn checksum(&self) -> f64 {
        self.y.iter().sum()
    }

    fn reset(&mut self) {
        self.y.copy_from_slice(&self.y0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;

    #[test]
    fn variants_agree() {
        let pool = ThreadPool::new(3);
        let mut inst = BlockHist.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();
        assert!(reference.is_finite() && reference != 0.0);

        inst.reset();
        inst.run_outer(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));

        inst.reset();
        inst.run_inner(&pool, Schedule::dynamic_default());
        assert!(close(inst.checksum(), reference));
    }

    #[test]
    fn keys_are_block_monotone_but_not_globally() {
        let inst = BlockHist.prepare("test");
        // Reconstruct the periodic keys the instance ingested.
        let n = 2 * B;
        let keys: Vec<usize> = (0..n).map(|i| 2 * (i % B) + (i / B) % 2).collect();
        assert!(inspect_block_monotone(&keys, B).strict);
        assert!(!subsub_rtcheck::inspect_serial(&keys).nonstrict);
        let _ = inst;
    }

    #[test]
    fn tampered_keys_demote_to_the_serial_path() {
        let pool = ThreadPool::new(2);
        // Golden: serial on the tampered instance.
        let mut golden = BlockHist.prepare("test");
        assert!(golden.tamper_index_arrays());
        golden.run_serial();
        let reference = golden.checksum();
        // The block-parallel path must detect the broken license and
        // produce the identical (serial) result.
        let mut inst = BlockHist.prepare("test");
        assert!(inst.tamper_index_arrays());
        inst.run_outer(&pool, Schedule::static_default());
        assert_eq!(inst.checksum(), reference, "demotion must be bit-identical");
    }
}
