//! Strided scatter: a gather/scatter whose subscript array is a
//! non-unit-stride prefix recurrence (`p = p + 2`) — the strided-monotone
//! SRA pattern of the precursor paper (arXiv 1911.05839).
//!
//! The constant step ≥ 2 proves `off` strided-monotone (`#SMA+2`):
//! strictly monotone, hence injective, with every pair of written indices
//! at least the gap apart. SRA is a **base**-algorithm concept, so both
//! Cetus+BaseAlgo and Cetus+NewAlgo parallelize the scatter loop — with
//! no runtime check, since the property's symbolic bounds are resolved at
//! compile time.

use crate::common::{InnerGroup, Kernel, KernelInstance};
use subsub_omprt::{Schedule, SendPtr, ThreadPool};
use subsub_rtcheck::{IndexArrayView, MonotoneReq, Provenance, ValidatedIndexArray};

/// The recurrence step (and hence the guaranteed index gap).
pub const GAP: usize = 2;

/// Inline-expanded source: strided fill + scatter-update use loop.
pub const SOURCE: &str = r#"
void sscatter(int n, int *off, double *y, double *g) {
    int i; int p;
    p = 0;
    for (i = 0; i < n; i++) {
        off[i] = p;
        p = p + 2;
    }
    for (i = 0; i < n; i++) {
        y[off[i]] = y[off[i]] + g[i];
    }
}
"#;

/// The strided-scatter benchmark.
pub struct StridedScatter;

fn size_for(dataset: &str) -> usize {
    match dataset {
        "n256k" => 262_144,
        "test" => 300,
        other => panic!("unknown StridedScatter dataset {other}"),
    }
}

impl Kernel for StridedScatter {
    fn name(&self) -> &'static str {
        "StridedScatter"
    }

    fn source(&self) -> &'static str {
        SOURCE
    }

    fn func_name(&self) -> &'static str {
        "sscatter"
    }

    fn datasets(&self) -> Vec<&'static str> {
        vec!["n256k"]
    }

    fn prepare(&self, dataset: &str) -> Box<dyn KernelInstance> {
        let n = size_for(dataset);
        let y0: Vec<f64> = (0..n * GAP).map(|i| (i % 9) as f64 * 0.125).collect();
        let g: Vec<f64> = (0..n).map(|i| 1.0 + (i % 11) as f64 * 0.5).collect();
        let off = ValidatedIndexArray::ingest(
            "off",
            (0..n).map(|i| i * GAP).collect(),
            y0.len(),
            Provenance::Dataset {
                name: dataset.to_string(),
            },
        )
        .expect("strided offsets are bounded by |y|");
        Box::new(StridedScatterInstance {
            y: y0.clone(),
            off,
            g,
            y0,
        })
    }
}

struct StridedScatterInstance {
    /// Strided-monotone offsets behind the ingestion trust boundary.
    off: ValidatedIndexArray,
    g: Vec<f64>,
    y: Vec<f64>,
    y0: Vec<f64>,
}

const COST_PER_SCATTER: f64 = 5.0;

impl KernelInstance for StridedScatterInstance {
    fn run_serial(&mut self) {
        for i in 0..self.off.len() {
            let t = self.off.data()[i];
            self.y[t] += self.g[i];
        }
    }

    fn run_outer(&mut self, pool: &ThreadPool, sched: Schedule) {
        let y = SendPtr::new(self.y.as_mut_ptr());
        let y_len = self.y.len();
        let this: &StridedScatterInstance = self;
        pool.parallel_for(this.off.len(), sched, |i| {
            let t = this.off.data()[i];
            // SAFETY: ingestion validated t < y.len(), and off is
            // strictly (strided) monotone, so distinct iterations write
            // distinct elements.
            debug_assert!(t < y_len, "off[{i}] = {t} out of y[0, {y_len})");
            unsafe {
                *y.get().add(t) += this.g[i];
            }
        });
    }

    fn run_inner(&mut self, _pool: &ThreadPool, _sched: Schedule) {
        // No inner nest: classical fallback is serial.
        self.run_serial();
    }

    fn outer_costs(&self) -> Vec<f64> {
        vec![COST_PER_SCATTER; self.off.len()]
    }

    fn inner_groups(&self) -> Vec<InnerGroup> {
        (0..self.off.len())
            .map(|_| InnerGroup {
                serial: COST_PER_SCATTER,
                inner: vec![],
            })
            .collect()
    }

    fn mem_bound_fraction(&self) -> f64 {
        0.95 // pure strided read-modify-write stream
    }

    fn index_arrays(&self) -> Vec<IndexArrayView<'_>> {
        vec![self.off.view(MonotoneReq::Strict)]
    }

    fn tamper_index_arrays(&mut self) -> bool {
        if self.off.len() < 2 {
            return false;
        }
        // Collapse the first gap: in-domain and still sorted, but no
        // longer strict — the scatter would race on the shared target.
        self.off
            .mutate_range(0..2, |w| w[1] = w[0])
            .expect("duplicating an in-domain entry stays in domain");
        true
    }

    fn checksum(&self) -> f64 {
        self.y.iter().sum()
    }

    fn reset(&mut self) {
        self.y.copy_from_slice(&self.y0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::close;

    #[test]
    fn variants_agree() {
        let pool = ThreadPool::new(2);
        let mut inst = StridedScatter.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();
        assert!(reference.is_finite() && reference != 0.0);

        inst.reset();
        inst.run_outer(&pool, Schedule::static_default());
        assert!(close(inst.checksum(), reference));

        inst.reset();
        inst.run_inner(&pool, Schedule::dynamic_default());
        assert!(close(inst.checksum(), reference));
    }

    #[test]
    fn offsets_keep_the_advertised_gap() {
        let inst = StridedScatter.prepare("test");
        let views = inst.index_arrays();
        let off = &views[0];
        assert!(off.data.windows(2).all(|w| w[1] - w[0] == GAP));
    }
}
