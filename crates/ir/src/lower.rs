//! Lowering and normalization: C AST → normalized IR.
//!
//! Implements the Cetus normalizations the paper relies on (Section 2.2 and
//! Figure 4): side effects embedded in expressions are split into `_temp_N`
//! sequences, compound assignments are expanded, loops are normalized to
//! 0-based stride-1 iteration spaces, and unsupported constructs degrade to
//! [`IrStmt::Opaque`] (rendering enclosing loops ineligible rather than
//! failing the whole function).

use crate::cond::{CmpOp, Cond, CondKind, CondTable};
use crate::stmt::{ArrayRead, Assign, IrStmt, LValue, LoopId, LoopIr, Rhs};
use crate::types::{TypeEnv, VarInfo};
use std::fmt;
use subsub_cfront::{
    AssignOp, BinOp, Block, CExpr, Decl, ForInit, Function, PostOp, Stmt, Type, UnOp,
};
use subsub_symbolic::{Expr, Symbol};

/// C standard library functions Cetus considers side-effect free
/// (paper, Section 2.2; Plauger's standard C library).
pub const PURE_FUNCTIONS: &[&str] = &[
    "exp", "log", "log2", "log10", "sqrt", "fabs", "abs", "labs", "pow", "sin", "cos", "tan",
    "asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh", "floor", "ceil", "fmod", "fmax",
    "fmin", "hypot",
];

/// A lowering failure (only produced for malformed functions; most
/// unsupported constructs lower to [`IrStmt::Opaque`] instead).
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for LowerError {}

/// Result of lowering one function.
#[derive(Debug, Clone)]
pub struct LoweredFunction {
    /// Function name.
    pub name: String,
    /// Normalized body.
    pub body: Vec<IrStmt>,
    /// All lowered `if` conditions, indexed by `CondId`.
    pub conds: CondTable,
    /// Variable shapes and types.
    pub types: TypeEnv,
    /// Number of loops in the function (ids are `0..n_loops`).
    pub n_loops: u32,
}

impl LoweredFunction {
    /// All loops in the function in pre-order.
    pub fn loops(&self) -> Vec<&LoopIr> {
        let mut out = Vec::new();
        collect_loops(&self.body, &mut out);
        out
    }

    /// Finds a loop by id.
    pub fn loop_by_id(&self, id: LoopId) -> Option<&LoopIr> {
        self.loops().into_iter().find(|l| l.id == id)
    }
}

fn collect_loops<'a>(body: &'a [IrStmt], out: &mut Vec<&'a LoopIr>) {
    for s in body {
        match s {
            IrStmt::Loop(l) => {
                out.push(l);
                collect_loops(&l.body, out);
            }
            IrStmt::If { then_s, else_s, .. } => {
                collect_loops(then_s, out);
                collect_loops(else_s, out);
            }
            _ => {}
        }
    }
}

/// Lowers one function (with visible globals) into normalized IR.
pub fn lower_function(func: &Function, globals: &[Decl]) -> Result<LoweredFunction, LowerError> {
    let mut lw = Lowerer::new();
    for g in globals {
        lw.types.insert(
            &g.name,
            VarInfo {
                ty: g.ty.clone(),
                pointer: g.pointer,
                array_dims: g.dims.len(),
                local: false,
            },
        );
    }
    for p in &func.params {
        lw.types.insert(
            &p.name,
            VarInfo {
                ty: p.ty.clone(),
                pointer: p.pointer,
                array_dims: p.dims.len(),
                local: false,
            },
        );
    }
    lw.scan_decls(&func.body);
    let body = lw.lower_block(&func.body);
    Ok(LoweredFunction {
        name: func.name.clone(),
        body,
        conds: lw.conds,
        types: lw.types,
        n_loops: lw.loop_counter,
    })
}

struct Lowerer {
    conds: CondTable,
    types: TypeEnv,
    temp_counter: u32,
    loop_counter: u32,
}

impl Lowerer {
    fn new() -> Lowerer {
        Lowerer {
            conds: CondTable::new(),
            types: TypeEnv::new(),
            temp_counter: 0,
            loop_counter: 0,
        }
    }

    /// Pre-scans all declarations (any nesting) so types are known during
    /// lowering regardless of declaration position.
    fn scan_decls(&mut self, block: &Block) {
        for s in &block.stmts {
            self.scan_decl_stmt(s);
        }
    }

    fn scan_decl_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(d) => self.types.insert(
                &d.name,
                VarInfo {
                    ty: d.ty.clone(),
                    pointer: d.pointer,
                    array_dims: d.dims.len(),
                    local: true,
                },
            ),
            Stmt::Block(b) => self.scan_decls(b),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                self.scan_decl_stmt(then_branch);
                if let Some(e) = else_branch {
                    self.scan_decl_stmt(e);
                }
            }
            Stmt::For { init, body, .. } => {
                if let ForInit::Decl(d) = init {
                    self.types.insert(
                        &d.name,
                        VarInfo {
                            ty: d.ty.clone(),
                            pointer: 0,
                            array_dims: 0,
                            local: true,
                        },
                    );
                }
                self.scan_decl_stmt(body);
            }
            Stmt::While { body, .. } => self.scan_decl_stmt(body),
            _ => {}
        }
    }

    fn fresh_temp(&mut self) -> String {
        let n = self.temp_counter;
        self.temp_counter += 1;
        let name = format!("_temp_{n}");
        self.types.insert(
            &name,
            VarInfo {
                ty: Type::Int,
                pointer: 0,
                array_dims: 0,
                local: true,
            },
        );
        name
    }

    fn lower_block(&mut self, b: &Block) -> Vec<IrStmt> {
        self.lower_stmts(&b.stmts)
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Vec<IrStmt> {
        let mut out = Vec::new();
        let mut pragmas: Vec<String> = Vec::new();
        for s in stmts {
            if let Stmt::Pragma(t) = s {
                pragmas.push(t.clone());
                continue;
            }
            let pending = std::mem::take(&mut pragmas);
            self.lower_stmt(s, pending, &mut out);
        }
        out
    }

    fn lower_stmt(&mut self, s: &Stmt, pragmas: Vec<String>, out: &mut Vec<IrStmt>) {
        match s {
            Stmt::Decl(d) => {
                if let Some(init) = &d.init {
                    let assign = CExpr::Assign {
                        op: AssignOp::Assign,
                        lhs: Box::new(CExpr::Ident(d.name.clone())),
                        rhs: Box::new(init.clone()),
                    };
                    self.lower_expr_stmt(&assign, out);
                }
            }
            Stmt::Expr(e) => self.lower_expr_stmt(e, out),
            Stmt::Block(b) => out.extend(self.lower_block(b)),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if cond.has_side_effects() {
                    out.push(IrStmt::Opaque("if-condition with side effects".into()));
                    return;
                }
                let cid = self.lower_cond(cond);
                let then_s = self.lower_stmts(std::slice::from_ref(then_branch.as_ref()));
                let else_s = match else_branch {
                    Some(e) => self.lower_stmts(std::slice::from_ref(e.as_ref())),
                    None => Vec::new(),
                };
                out.push(IrStmt::If {
                    cond: cid,
                    then_s,
                    else_s,
                });
            }
            Stmt::For { .. } => self.lower_for(s, pragmas, out),
            Stmt::While { .. } => out.push(IrStmt::Opaque("while loop (not normalizable)".into())),
            Stmt::Return(_) => out.push(IrStmt::Opaque("return".into())),
            Stmt::Break => out.push(IrStmt::Opaque("break".into())),
            Stmt::Continue => out.push(IrStmt::Opaque("continue".into())),
            Stmt::Pragma(_) | Stmt::Empty => {}
        }
    }

    /// Lowers an expression statement: assignments, `m++`, bare calls.
    fn lower_expr_stmt(&mut self, e: &CExpr, out: &mut Vec<IrStmt>) {
        match e {
            CExpr::Assign { op, lhs, rhs } => {
                // Expand compound assignment: `l op= r`  =>  `l = l op r`.
                let rhs_full = match op.binop() {
                    Some(b) => CExpr::bin(b, (**lhs).clone(), (**rhs).clone()),
                    None => (**rhs).clone(),
                };
                // Reduction shape: `l op= e` or `l = l op e`.
                let compound_op = op.binop().or_else(|| detect_compound(lhs, &rhs_full));
                // Subscript side effects first (Figure 4(b) ordering).
                let lv = self.lower_lvalue(lhs, out);
                let Some(lv) = lv else {
                    out.push(IrStmt::Opaque(format!(
                        "unsupported assignment target: {}",
                        subsub_cfront::printer::print_expr(lhs)
                    )));
                    return;
                };
                // Then RHS side effects.
                let value = self.lower_value(&rhs_full, out);
                let mut reads = Vec::new();
                collect_reads(&rhs_full, &mut reads);
                // Subscript reads of the target also count as reads of the
                // subscript arrays (e.g. `ind` in `y[ind[j]] = …`).
                if let LValue::Array { .. } = &lv {
                    collect_subscript_reads(lhs, &mut reads);
                }
                let mut rhs_idents = idents_of(&rhs_full);
                if let Some((_, subs)) = lhs.as_index_chain() {
                    for sx in subs {
                        rhs_idents.extend(idents_of(sx));
                    }
                    rhs_idents.sort();
                    rhs_idents.dedup();
                }
                let integer = self.types.is_integer(lv.name());
                out.push(IrStmt::Assign(Assign {
                    lhs: lv,
                    rhs: value,
                    integer,
                    reads,
                    compound_op,
                    rhs_idents,
                }));
            }
            CExpr::Postfix { op, operand } => {
                // `m++;` as a statement: pure increment.
                let delta = if *op == PostOp::PostInc { 1 } else { -1 };
                self.lower_increment(operand, delta, out);
            }
            CExpr::Unary {
                op: UnOp::PreInc,
                operand,
            } => {
                self.lower_increment(operand, 1, out);
            }
            CExpr::Unary {
                op: UnOp::PreDec,
                operand,
            } => {
                self.lower_increment(operand, -1, out);
            }
            CExpr::Call { name, .. } => {
                if PURE_FUNCTIONS.contains(&name.as_str()) {
                    // A pure call whose result is discarded: no effect.
                } else {
                    out.push(IrStmt::Opaque(format!("call to {name}")));
                }
            }
            other => {
                // An expression statement without effects is a no-op; keep
                // lowering conservative about embedded effects.
                if other.has_side_effects() {
                    let mut tmp = Vec::new();
                    let _ = self.lower_value(other, &mut tmp);
                    out.extend(tmp);
                }
            }
        }
    }

    /// Lowers a standalone `x++`/`--x` statement into `x = x ± 1`.
    fn lower_increment(&mut self, operand: &CExpr, delta: i64, out: &mut Vec<IrStmt>) {
        let target = operand.clone();
        let rhs = CExpr::bin(BinOp::Add, target.clone(), CExpr::IntLit(delta));
        let assign = CExpr::Assign {
            op: AssignOp::Assign,
            lhs: Box::new(target),
            rhs: Box::new(rhs),
        };
        self.lower_expr_stmt(&assign, out);
    }

    /// Lowers an assignment target, emitting temp statements for embedded
    /// side effects in subscripts (`a[m++] = …`).
    fn lower_lvalue(&mut self, e: &CExpr, out: &mut Vec<IrStmt>) -> Option<LValue> {
        match e {
            CExpr::Ident(n) => Some(LValue::Scalar(n.clone())),
            CExpr::Index { .. } => {
                let (name, subs) = e.as_index_chain()?;
                let mut lowered = Vec::with_capacity(subs.len());
                for s in subs {
                    let v = self.lower_value(s, out);
                    match v {
                        Rhs::Expr(x) => lowered.push(x),
                        Rhs::Opaque(_) => return None,
                    }
                }
                Some(LValue::Array {
                    name: name.to_string(),
                    subs: lowered,
                })
            }
            _ => None,
        }
    }

    /// Lowers an expression to a value, splitting out side effects as
    /// preceding statements. Returns `Rhs::Opaque` for values the analysis
    /// cannot interpret (floats, division, calls, logical operators).
    fn lower_value(&mut self, e: &CExpr, out: &mut Vec<IrStmt>) -> Rhs {
        match e {
            CExpr::IntLit(v) => Rhs::Expr(Expr::int(*v)),
            CExpr::FloatLit(_) => Rhs::Opaque("float literal".into()),
            CExpr::Ident(n) => Rhs::Expr(Expr::var(n)),
            CExpr::Index { .. } => match self.lower_read(e, out) {
                Some(x) => Rhs::Expr(x),
                None => Rhs::Opaque("unlowerable subscript".into()),
            },
            CExpr::Postfix { op, operand } => {
                // `a[m++]`-style: temp holds the pre-value, then increment.
                let CExpr::Ident(name) = operand.as_ref() else {
                    return Rhs::Opaque("postfix on non-scalar".into());
                };
                let tmp = self.fresh_temp();
                out.push(IrStmt::Assign(Assign {
                    lhs: LValue::Scalar(tmp.clone()),
                    rhs: Rhs::Expr(Expr::var(name)),
                    integer: true,
                    reads: vec![],
                    compound_op: None,
                    rhs_idents: vec![name.clone()],
                }));
                let delta = if *op == PostOp::PostInc { 1 } else { -1 };
                out.push(IrStmt::Assign(Assign {
                    lhs: LValue::Scalar(name.clone()),
                    rhs: Rhs::Expr(Expr::var(name) + Expr::int(delta)),
                    integer: true,
                    reads: vec![],
                    compound_op: Some(BinOp::Add),
                    rhs_idents: vec![name.clone()],
                }));
                Rhs::Expr(Expr::var(&tmp))
            }
            CExpr::Unary {
                op: UnOp::PreInc | UnOp::PreDec,
                operand,
            } => {
                let CExpr::Ident(name) = operand.as_ref() else {
                    return Rhs::Opaque("prefix inc on non-scalar".into());
                };
                let delta = if matches!(
                    e,
                    CExpr::Unary {
                        op: UnOp::PreInc,
                        ..
                    }
                ) {
                    1
                } else {
                    -1
                };
                out.push(IrStmt::Assign(Assign {
                    lhs: LValue::Scalar(name.clone()),
                    rhs: Rhs::Expr(Expr::var(name) + Expr::int(delta)),
                    integer: true,
                    reads: vec![],
                    compound_op: Some(BinOp::Add),
                    rhs_idents: vec![name.clone()],
                }));
                Rhs::Expr(Expr::var(name))
            }
            CExpr::Unary {
                op: UnOp::Neg,
                operand,
            } => match self.lower_value(operand, out) {
                Rhs::Expr(x) => Rhs::Expr(-x),
                o => o,
            },
            CExpr::Unary { op: UnOp::Not, .. } => Rhs::Opaque("logical not".into()),
            CExpr::Binary { op, lhs, rhs } => {
                let l = self.lower_value(lhs, out);
                let r = self.lower_value(rhs, out);
                match (op, l, r) {
                    (BinOp::Add, Rhs::Expr(a), Rhs::Expr(b)) => Rhs::Expr(a + b),
                    (BinOp::Sub, Rhs::Expr(a), Rhs::Expr(b)) => Rhs::Expr(a - b),
                    (BinOp::Mul, Rhs::Expr(a), Rhs::Expr(b)) => Rhs::Expr(a * b),
                    (op, _, _) => Rhs::Opaque(format!("operator {}", op.symbol())),
                }
            }
            CExpr::Assign { .. } => {
                // Chained assignment as a value: lower as a statement, the
                // value is the target.
                let mut stmts = Vec::new();
                self.lower_expr_stmt(e, &mut stmts);
                let value = match stmts.last() {
                    Some(IrStmt::Assign(a)) => match &a.lhs {
                        LValue::Scalar(n) => Some(Expr::var(n)),
                        LValue::Array { .. } => None,
                    },
                    _ => None,
                };
                out.extend(stmts);
                match value {
                    Some(v) => Rhs::Expr(v),
                    None => Rhs::Opaque("assignment value".into()),
                }
            }
            CExpr::Ternary { .. } => Rhs::Opaque("ternary".into()),
            CExpr::Call { name, .. } => Rhs::Opaque(format!("call {name}")),
            CExpr::Cast { ty, expr } => {
                if ty.is_integer() {
                    self.lower_value(expr, out)
                } else {
                    Rhs::Opaque(format!("cast to {ty}"))
                }
            }
        }
    }

    /// Lowers a pure array read chain into an uninterpreted `Read` atom.
    fn lower_read(&mut self, e: &CExpr, out: &mut Vec<IrStmt>) -> Option<Expr> {
        let (name, subs) = e.as_index_chain()?;
        let mut lowered = Vec::with_capacity(subs.len());
        for s in subs {
            match self.lower_value(s, out) {
                Rhs::Expr(x) => lowered.push(x),
                Rhs::Opaque(_) => return None,
            }
        }
        Some(Expr::read(name, lowered))
    }

    /// Lowers an `if` condition to a [`Cond`], registering it in the table.
    fn lower_cond(&mut self, e: &CExpr) -> crate::cond::CondId {
        let text = subsub_cfront::printer::print_expr(e);
        let kind = self.try_lower_cmp(e).unwrap_or_else(|| CondKind::Opaque {
            text: text.clone(),
            refs: idents_of(e),
        });
        self.conds.push(Cond { kind, text })
    }

    fn try_lower_cmp(&mut self, e: &CExpr) -> Option<CondKind> {
        let CExpr::Binary { op, lhs, rhs } = e else {
            return None;
        };
        let cmp = match op {
            BinOp::Lt => CmpOp::Lt,
            BinOp::Le => CmpOp::Le,
            BinOp::Gt => CmpOp::Gt,
            BinOp::Ge => CmpOp::Ge,
            BinOp::Eq => CmpOp::Eq,
            BinOp::Ne => CmpOp::Ne,
            _ => return None,
        };
        let mut scratch = Vec::new();
        let l = self.lower_value(lhs, &mut scratch);
        let r = self.lower_value(rhs, &mut scratch);
        if !scratch.is_empty() {
            return None; // side effects in conditions are not supported
        }
        match (l, r) {
            (Rhs::Expr(a), Rhs::Expr(b)) => Some(CondKind::Cmp {
                op: cmp,
                lhs: a,
                rhs: b,
            }),
            _ => None,
        }
    }

    /// Lowers a `for` statement into a normalized [`LoopIr`], or an
    /// [`IrStmt::Opaque`] when the loop shape is not normalizable.
    fn lower_for(&mut self, s: &Stmt, pragmas: Vec<String>, out: &mut Vec<IrStmt>) {
        let Stmt::For {
            init,
            cond,
            step,
            body,
        } = s
        else {
            unreachable!()
        };
        let id = LoopId(self.loop_counter);
        self.loop_counter += 1;

        let Some((var, lo)) = parse_for_init(init) else {
            out.push(IrStmt::Opaque("non-normalizable for-init".into()));
            return;
        };
        let Some((upper, inclusive)) = parse_for_cond(cond.as_ref(), &var) else {
            out.push(IrStmt::Opaque("non-normalizable for-cond".into()));
            return;
        };
        let Some(stride) = parse_for_step(step.as_ref(), &var) else {
            out.push(IrStmt::Opaque("non-normalizable for-step".into()));
            return;
        };

        let mut scratch = Vec::new();
        let lo_v = self.lower_value(&lo, &mut scratch);
        let up_v = self.lower_value(&upper, &mut scratch);
        if !scratch.is_empty() {
            out.push(IrStmt::Opaque("side effects in loop bounds".into()));
            return;
        }
        let (Rhs::Expr(lo_e), Rhs::Expr(up_e)) = (lo_v, up_v) else {
            out.push(IrStmt::Opaque("unlowerable loop bounds".into()));
            return;
        };

        // Iteration count.
        let span = up_e.clone() - lo_e.clone() + Expr::int(if inclusive { 1 } else { 0 });
        let n_iters = if stride == 1 {
            span
        } else if let Some(c) = span.as_int() {
            Expr::int((c + stride - 1) / stride)
        } else {
            out.push(IrStmt::Opaque("symbolic bounds with stride > 1".into()));
            return;
        };

        // Normalize the body: substitute `var := lo + stride*var` when the
        // source loop was not already 0-based stride-1.
        let body_ast: Block = match body.as_ref() {
            Stmt::Block(b) => b.clone(),
            other => Block {
                stmts: vec![other.clone()],
            },
        };
        let needs_subst = !(lo_e.is_zero() && stride == 1);
        let body_ast = if needs_subst {
            let replacement = CExpr::bin(
                BinOp::Add,
                lo.clone(),
                CExpr::bin(BinOp::Mul, CExpr::IntLit(stride), CExpr::ident(&var)),
            );
            subst_ident_block(&body_ast, &var, &replacement)
        } else {
            body_ast
        };

        let line = 0; // source line tracking for loops is a future extension
        let lowered = self.lower_block(&body_ast);

        // A loop that assigns its own index is not a normalized loop.
        if assigns_var(&lowered, &var) {
            out.push(IrStmt::Opaque(format!("loop index {var} assigned in body")));
            return;
        }

        self.types.insert(
            &var,
            VarInfo {
                ty: Type::Int,
                pointer: 0,
                array_dims: 0,
                local: true,
            },
        );
        out.push(IrStmt::Loop(Box::new(LoopIr {
            id,
            index: Symbol::var(&var),
            n_iters,
            original_index: var,
            body: lowered,
            pragmas,
            line,
        })));
    }
}

/// Detects `l = l op e` (commutative ops also match `l = e op l`).
fn detect_compound(lhs: &CExpr, rhs_full: &CExpr) -> Option<BinOp> {
    let CExpr::Binary { op, lhs: a, rhs: b } = rhs_full else {
        return None;
    };
    match op {
        BinOp::Add | BinOp::Mul => {
            if a.as_ref() == lhs || b.as_ref() == lhs {
                Some(*op)
            } else {
                None
            }
        }
        BinOp::Sub | BinOp::Div => (a.as_ref() == lhs).then_some(*op),
        _ => None,
    }
}

fn assigns_var(body: &[IrStmt], var: &str) -> bool {
    body.iter().any(|s| match s {
        IrStmt::Assign(a) => a.lhs.name() == var,
        IrStmt::If { then_s, else_s, .. } => assigns_var(then_s, var) || assigns_var(else_s, var),
        IrStmt::Loop(l) => assigns_var(&l.body, var),
        IrStmt::Opaque(_) => false,
    })
}

/// `i = lo` or `int i = lo` → `(i, lo)`.
fn parse_for_init(init: &ForInit) -> Option<(String, CExpr)> {
    match init {
        ForInit::Decl(d) => Some((d.name.clone(), d.init.clone()?)),
        ForInit::Expr(CExpr::Assign {
            op: AssignOp::Assign,
            lhs,
            rhs,
        }) => match lhs.as_ref() {
            CExpr::Ident(n) => Some((n.clone(), (**rhs).clone())),
            _ => None,
        },
        _ => None,
    }
}

/// `i < U` / `i <= U` → `(U, inclusive)`.
fn parse_for_cond(cond: Option<&CExpr>, var: &str) -> Option<(CExpr, bool)> {
    match cond? {
        CExpr::Binary { op, lhs, rhs } => match (op, lhs.as_ref()) {
            (BinOp::Lt, CExpr::Ident(n)) if n == var => Some(((**rhs).clone(), false)),
            (BinOp::Le, CExpr::Ident(n)) if n == var => Some(((**rhs).clone(), true)),
            _ => None,
        },
        _ => None,
    }
}

/// `i++`, `++i`, `i += c`, `i = i + c` → positive stride `c`.
fn parse_for_step(step: Option<&CExpr>, var: &str) -> Option<i64> {
    let is_var = |e: &CExpr| matches!(e, CExpr::Ident(n) if n == var);
    match step? {
        CExpr::Postfix {
            op: PostOp::PostInc,
            operand,
        } if is_var(operand) => Some(1),
        CExpr::Unary {
            op: UnOp::PreInc,
            operand,
        } if is_var(operand) => Some(1),
        CExpr::Assign {
            op: AssignOp::AddAssign,
            lhs,
            rhs,
        } if is_var(lhs) => match rhs.as_ref() {
            CExpr::IntLit(c) if *c > 0 => Some(*c),
            _ => None,
        },
        CExpr::Assign {
            op: AssignOp::Assign,
            lhs,
            rhs,
        } if is_var(lhs) => match rhs.as_ref() {
            CExpr::Binary {
                op: BinOp::Add,
                lhs: a,
                rhs: b,
            } => match (a.as_ref(), b.as_ref()) {
                (x, CExpr::IntLit(c)) if is_var(x) && *c > 0 => Some(*c),
                (CExpr::IntLit(c), x) if is_var(x) && *c > 0 => Some(*c),
                _ => None,
            },
            _ => None,
        },
        _ => None,
    }
}

/// Substitutes `Ident(var)` with `replacement` in a whole block (AST level;
/// used by loop normalization).
fn subst_ident_block(b: &Block, var: &str, replacement: &CExpr) -> Block {
    Block {
        stmts: b
            .stmts
            .iter()
            .map(|s| subst_ident_stmt(s, var, replacement))
            .collect(),
    }
}

fn subst_ident_stmt(s: &Stmt, var: &str, r: &CExpr) -> Stmt {
    match s {
        Stmt::Decl(d) => Stmt::Decl(Decl {
            init: d.init.as_ref().map(|e| subst_ident_expr(e, var, r)),
            ..d.clone()
        }),
        Stmt::Expr(e) => Stmt::Expr(subst_ident_expr(e, var, r)),
        Stmt::Block(b) => Stmt::Block(subst_ident_block(b, var, r)),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: subst_ident_expr(cond, var, r),
            then_branch: Box::new(subst_ident_stmt(then_branch, var, r)),
            else_branch: else_branch
                .as_ref()
                .map(|e| Box::new(subst_ident_stmt(e, var, r))),
        },
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            // Inner loops shadowing `var` are not substituted further.
            let shadows = match init {
                ForInit::Decl(d) => d.name == var,
                ForInit::Expr(CExpr::Assign { lhs, .. }) => {
                    matches!(lhs.as_ref(), CExpr::Ident(n) if n == var)
                }
                _ => false,
            };
            if shadows {
                s.clone()
            } else {
                Stmt::For {
                    init: match init {
                        ForInit::Empty => ForInit::Empty,
                        ForInit::Decl(d) => ForInit::Decl(Decl {
                            init: d.init.as_ref().map(|e| subst_ident_expr(e, var, r)),
                            ..d.clone()
                        }),
                        ForInit::Expr(e) => ForInit::Expr(subst_ident_expr(e, var, r)),
                    },
                    cond: cond.as_ref().map(|e| subst_ident_expr(e, var, r)),
                    step: step.as_ref().map(|e| subst_ident_expr(e, var, r)),
                    body: Box::new(subst_ident_stmt(body, var, r)),
                }
            }
        }
        Stmt::While { cond, body } => Stmt::While {
            cond: subst_ident_expr(cond, var, r),
            body: Box::new(subst_ident_stmt(body, var, r)),
        },
        Stmt::Return(e) => Stmt::Return(e.as_ref().map(|e| subst_ident_expr(e, var, r))),
        other => other.clone(),
    }
}

fn subst_ident_expr(e: &CExpr, var: &str, r: &CExpr) -> CExpr {
    match e {
        CExpr::Ident(n) if n == var => r.clone(),
        CExpr::IntLit(_) | CExpr::FloatLit(_) | CExpr::Ident(_) => e.clone(),
        CExpr::Index { base, index } => CExpr::Index {
            base: Box::new(subst_ident_expr(base, var, r)),
            index: Box::new(subst_ident_expr(index, var, r)),
        },
        CExpr::Call { name, args } => CExpr::Call {
            name: name.clone(),
            args: args.iter().map(|a| subst_ident_expr(a, var, r)).collect(),
        },
        CExpr::Unary { op, operand } => CExpr::Unary {
            op: *op,
            operand: Box::new(subst_ident_expr(operand, var, r)),
        },
        CExpr::Postfix { op, operand } => CExpr::Postfix {
            op: *op,
            operand: Box::new(subst_ident_expr(operand, var, r)),
        },
        CExpr::Binary { op, lhs, rhs } => CExpr::bin(
            *op,
            subst_ident_expr(lhs, var, r),
            subst_ident_expr(rhs, var, r),
        ),
        CExpr::Assign { op, lhs, rhs } => CExpr::Assign {
            op: *op,
            lhs: Box::new(subst_ident_expr(lhs, var, r)),
            rhs: Box::new(subst_ident_expr(rhs, var, r)),
        },
        CExpr::Ternary {
            cond,
            then_e,
            else_e,
        } => CExpr::Ternary {
            cond: Box::new(subst_ident_expr(cond, var, r)),
            then_e: Box::new(subst_ident_expr(then_e, var, r)),
            else_e: Box::new(subst_ident_expr(else_e, var, r)),
        },
        CExpr::Cast { ty, expr } => CExpr::Cast {
            ty: ty.clone(),
            expr: Box::new(subst_ident_expr(expr, var, r)),
        },
    }
}

/// Collects array reads from a source expression (for dependence testing).
fn collect_reads(e: &CExpr, out: &mut Vec<ArrayRead>) {
    if let Some((name, subs)) = e.as_index_chain() {
        let mut lowered = Vec::new();
        let mut exact = true;
        for s in &subs {
            match pure_int_lower(s) {
                Some(x) => lowered.push(x),
                None => {
                    exact = false;
                    break;
                }
            }
        }
        out.push(ArrayRead {
            array: name.to_string(),
            subs: if exact { lowered } else { Vec::new() },
            exact,
        });
        for s in subs {
            collect_reads(s, out);
        }
        return;
    }
    match e {
        CExpr::IntLit(_) | CExpr::FloatLit(_) | CExpr::Ident(_) => {}
        CExpr::Index { base, index } => {
            collect_reads(base, out);
            collect_reads(index, out);
        }
        CExpr::Call { args, .. } => args.iter().for_each(|a| collect_reads(a, out)),
        CExpr::Unary { operand, .. } | CExpr::Postfix { operand, .. } => {
            collect_reads(operand, out)
        }
        CExpr::Binary { lhs, rhs, .. } => {
            collect_reads(lhs, out);
            collect_reads(rhs, out);
        }
        CExpr::Assign { lhs, rhs, .. } => {
            collect_reads(lhs, out);
            collect_reads(rhs, out);
        }
        CExpr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            collect_reads(cond, out);
            collect_reads(then_e, out);
            collect_reads(else_e, out);
        }
        CExpr::Cast { expr, .. } => collect_reads(expr, out),
    }
}

/// Reads performed by the *subscripts* of an assignment target.
fn collect_subscript_reads(lhs: &CExpr, out: &mut Vec<ArrayRead>) {
    if let Some((_, subs)) = lhs.as_index_chain() {
        for s in subs {
            collect_reads(s, out);
        }
    }
}

/// Side-effect-free integer lowering (no temp generation); `None` when the
/// expression is not a pure integer expression.
fn pure_int_lower(e: &CExpr) -> Option<Expr> {
    match e {
        CExpr::IntLit(v) => Some(Expr::int(*v)),
        CExpr::Ident(n) => Some(Expr::var(n)),
        CExpr::Unary {
            op: UnOp::Neg,
            operand,
        } => Some(-pure_int_lower(operand)?),
        CExpr::Binary { op, lhs, rhs } => {
            let a = pure_int_lower(lhs)?;
            let b = pure_int_lower(rhs)?;
            match op {
                BinOp::Add => Some(a + b),
                BinOp::Sub => Some(a - b),
                BinOp::Mul => Some(a * b),
                _ => None,
            }
        }
        CExpr::Index { .. } => {
            let (name, subs) = e.as_index_chain()?;
            let lowered: Option<Vec<Expr>> = subs.iter().map(|s| pure_int_lower(s)).collect();
            Some(Expr::read(name, lowered?))
        }
        _ => None,
    }
}

fn idents_of(e: &CExpr) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(e: &CExpr, out: &mut Vec<String>) {
        match e {
            CExpr::Ident(n) => out.push(n.clone()),
            CExpr::IntLit(_) | CExpr::FloatLit(_) => {}
            CExpr::Index { base, index } => {
                walk(base, out);
                walk(index, out);
            }
            CExpr::Call { args, .. } => args.iter().for_each(|a| walk(a, out)),
            CExpr::Unary { operand, .. } | CExpr::Postfix { operand, .. } => walk(operand, out),
            CExpr::Binary { lhs, rhs, .. } => {
                walk(lhs, out);
                walk(rhs, out);
            }
            CExpr::Assign { lhs, rhs, .. } => {
                walk(lhs, out);
                walk(rhs, out);
            }
            CExpr::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                walk(cond, out);
                walk(then_e, out);
                walk(else_e, out);
            }
            CExpr::Cast { expr, .. } => walk(expr, out),
        }
    }
    walk(e, &mut out);
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsub_cfront::parse_program;

    fn lower_src(src: &str) -> LoweredFunction {
        let p = parse_program(src).unwrap();
        lower_function(&p.funcs[0], &p.globals).unwrap()
    }

    /// The paper's Figure 4: `ind[m++] = j` must normalize into
    /// `_temp_0 = m; m = m + 1; ind[_temp_0] = j;`.
    #[test]
    fn figure4_normalization() {
        let f = lower_src(
            r#"
            void f(int npts, double *xdos, int *ind, double t, double width) {
                int m; int j;
                m = 0;
                for (j = 0; j < npts; j++) {
                    if ((xdos[j] - t) < width)
                        ind[m++] = j;
                }
            }
            "#,
        );
        let loops = f.loops();
        assert_eq!(loops.len(), 1);
        let l = loops[0];
        // Body: one If containing the three split statements.
        let IrStmt::If { then_s, .. } = &l.body[0] else {
            panic!("expected if")
        };
        assert_eq!(then_s.len(), 3);
        let IrStmt::Assign(a0) = &then_s[0] else {
            panic!()
        };
        assert_eq!(a0.lhs.name(), "_temp_0");
        assert_eq!(a0.rhs.as_expr().unwrap(), &Expr::var("m"));
        let IrStmt::Assign(a1) = &then_s[1] else {
            panic!()
        };
        assert_eq!(a1.lhs.name(), "m");
        assert_eq!(a1.rhs.as_expr().unwrap(), &(Expr::var("m") + Expr::int(1)));
        let IrStmt::Assign(a2) = &then_s[2] else {
            panic!()
        };
        assert_eq!(a2.lhs.to_string(), "ind[_temp_0]");
        assert_eq!(a2.rhs.as_expr().unwrap(), &Expr::var("j"));
    }

    #[test]
    fn compound_assignment_expands() {
        let f = lower_src("void f(int n, int *a) { int i; for (i=0;i<n;i++) a[i] += 2; }");
        let l = &f.loops()[0];
        let IrStmt::Assign(a) = &l.body[0] else {
            panic!()
        };
        assert_eq!(
            a.rhs.as_expr().unwrap(),
            &(Expr::read("a", vec![Expr::var("i")]) + Expr::int(2))
        );
    }

    #[test]
    fn loop_normalization_nonzero_base() {
        // for (i = 2; i <= n; i += 1)  =>  N = n - 1, body uses 2 + i
        let f = lower_src("void f(int n, int *a) { int i; for (i=2;i<=n;i++) a[i] = i; }");
        let l = &f.loops()[0];
        assert_eq!(l.n_iters, Expr::var("n") - Expr::int(1));
        let IrStmt::Assign(a) = &l.body[0] else {
            panic!()
        };
        let LValue::Array { subs, .. } = &a.lhs else {
            panic!()
        };
        assert_eq!(subs[0], Expr::int(2) + Expr::var("i"));
    }

    #[test]
    fn loop_with_constant_stride() {
        let f = lower_src("void f(int *a) { int i; for (i=0;i<10;i+=2) a[i] = i; }");
        let l = &f.loops()[0];
        assert_eq!(l.n_iters.as_int(), Some(5));
        let IrStmt::Assign(a) = &l.body[0] else {
            panic!()
        };
        let LValue::Array { subs, .. } = &a.lhs else {
            panic!()
        };
        assert_eq!(subs[0], Expr::int(2) * Expr::var("i"));
    }

    #[test]
    fn while_is_opaque() {
        let f = lower_src("void f(int n) { int k; k = 0; while (k < n) k = k + 1; }");
        assert!(f.body.iter().any(|s| matches!(s, IrStmt::Opaque(_))));
    }

    #[test]
    fn break_becomes_opaque_in_loop() {
        let f = lower_src(
            "void f(int n, int *a) { int i; for (i=0;i<n;i++) { if (a[i] > 0) break; } }",
        );
        let l = &f.loops()[0];
        let IrStmt::If { then_s, .. } = &l.body[0] else {
            panic!()
        };
        assert!(matches!(then_s[0], IrStmt::Opaque(_)));
    }

    #[test]
    fn pure_call_value_is_opaque_but_not_statement() {
        let f = lower_src("void f(int n, double *y) { int i; for (i=0;i<n;i++) y[i] = exp(0.5); }");
        let l = &f.loops()[0];
        let IrStmt::Assign(a) = &l.body[0] else {
            panic!()
        };
        assert!(matches!(a.rhs, Rhs::Opaque(_)));
        assert!(!a.integer);
    }

    #[test]
    fn reads_collected_for_subscripted_subscript() {
        let f = lower_src(
            r#"
            void f(int n, double *y, int *ind, double *g) {
                int j;
                for (j = 0; j < n; j++)
                    y[ind[j]] = y[ind[j]] + g[j];
            }
            "#,
        );
        let l = &f.loops()[0];
        let IrStmt::Assign(a) = &l.body[0] else {
            panic!()
        };
        let arrays: Vec<&str> = a.reads.iter().map(|r| r.array.as_str()).collect();
        assert!(arrays.contains(&"y"));
        assert!(arrays.contains(&"ind"));
        assert!(arrays.contains(&"g"));
        // The y read subscript is exact: read(ind,[j]).
        let yread = a.reads.iter().find(|r| r.array == "y").unwrap();
        assert!(yread.exact);
        assert_eq!(yread.subs[0], Expr::read("ind", vec![Expr::var("j")]));
    }

    #[test]
    fn pragmas_attach_to_loop() {
        let f = lower_src(
            "void f(int n, double *x) { int i;\n#pragma omp parallel for\nfor (i=0;i<n;i++) x[i] = 0.0; }",
        );
        let l = &f.loops()[0];
        assert_eq!(l.pragmas, vec!["omp parallel for".to_string()]);
    }

    #[test]
    fn nested_loop_ids_preorder() {
        let f = lower_src(
            r#"
            void f(int n, int m, int *a) {
                int i; int j;
                for (i=0;i<n;i++) {
                    for (j=0;j<m;j++) { a[j] = j; }
                }
                for (i=0;i<n;i++) { a[i] = i; }
            }
            "#,
        );
        let ids: Vec<u32> = f.loops().iter().map(|l| l.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn decl_with_init_becomes_assignment() {
        let f = lower_src("void f() { int p = 5; }");
        let IrStmt::Assign(a) = &f.body[0] else {
            panic!()
        };
        assert_eq!(a.lhs.name(), "p");
        assert_eq!(a.rhs.as_expr().unwrap().as_int(), Some(5));
    }

    #[test]
    fn sddmm_fill_loop_lowered() {
        let f = lower_src(
            r#"
            void fill(int nonzeros, int *col_val, int *col_ptr) {
                int i; int holder; int r;
                holder = 1; col_ptr[0] = 0; r = col_val[0];
                for (i = 0; i < nonzeros; i++) {
                    if (col_val[i] != r) {
                        col_ptr[holder++] = i;
                        r = col_val[i];
                    }
                }
            }
            "#,
        );
        let l = &f.loops()[0];
        let IrStmt::If { cond, then_s, .. } = &l.body[0] else {
            panic!()
        };
        assert_eq!(then_s.len(), 4); // temp, holder++, col_ptr[..]=i, r=col_val[i]
        let c = f.conds.get(*cond);
        assert!(matches!(&c.kind, CondKind::Cmp { op: CmpOp::Ne, .. }));
    }
}
