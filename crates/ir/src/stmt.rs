//! IR statements: normalized assignments, structured control flow, loops.

use crate::cond::CondId;
use std::fmt;
use subsub_symbolic::{Expr, Symbol};

/// Identifier of a loop within one lowered function (pre-order numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Scalar(String),
    /// An array element; `subs` are the lowered subscript expressions,
    /// outermost dimension first. Subscripted subscripts appear as
    /// uninterpreted reads inside the subscript expression.
    Array {
        /// Array name.
        name: String,
        /// Subscript expressions.
        subs: Vec<Expr>,
    },
}

impl LValue {
    /// The assigned variable's name.
    pub fn name(&self) -> &str {
        match self {
            LValue::Scalar(n) => n,
            LValue::Array { name, .. } => name,
        }
    }

    /// True for array targets.
    pub fn is_array(&self) -> bool {
        matches!(self, LValue::Array { .. })
    }
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LValue::Scalar(n) => write!(f, "{n}"),
            LValue::Array { name, subs } => {
                write!(f, "{name}")?;
                for s in subs {
                    write!(f, "[{s}]")?;
                }
                Ok(())
            }
        }
    }
}

/// A lowered right-hand side.
#[derive(Debug, Clone, PartialEq)]
pub enum Rhs {
    /// An integer expression the analysis can interpret.
    Expr(Expr),
    /// A value the analysis treats as unknown (floating point, division,
    /// calls, …). The variable still counts as *assigned* (loop-variant);
    /// its value is ⊥.
    Opaque(String),
}

impl Rhs {
    /// The interpretable expression, if any.
    pub fn as_expr(&self) -> Option<&Expr> {
        match self {
            Rhs::Expr(e) => Some(e),
            Rhs::Opaque(_) => None,
        }
    }
}

impl fmt::Display for Rhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rhs::Expr(e) => write!(f, "{e}"),
            Rhs::Opaque(t) => write!(f, "⊥({t})"),
        }
    }
}

/// An array read occurrence, collected during lowering for dependence
/// testing (reads survive even when the value lowering is opaque, e.g. the
/// read of `y[ind[j]]` inside a floating-point update).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRead {
    /// Array name.
    pub array: String,
    /// Subscript expressions, outermost first. Empty when `exact` is false.
    pub subs: Vec<Expr>,
    /// False when a subscript could not be lowered; the access must then be
    /// treated as touching the whole array.
    pub exact: bool,
}

/// A single (normalized) assignment statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// Target.
    pub lhs: LValue,
    /// Lowered right-hand side.
    pub rhs: Rhs,
    /// True if the target has an integer type (the class of variables the
    /// analysis tracks; floating-point assignments are recorded only for
    /// dependence testing).
    pub integer: bool,
    /// Array reads performed by the right-hand side (and by the original
    /// source expression when the value lowering is opaque).
    pub reads: Vec<ArrayRead>,
    /// Set when the source statement was a compound update of the target
    /// (`s += e`, `s -= e`, `s = s + e`, `s = s * e`, …): the underlying
    /// operator. Drives reduction recognition even when the value lowering
    /// is opaque (floating-point accumulators).
    pub compound_op: Option<subsub_cfront::BinOp>,
    /// All identifiers read by the original right-hand side (and target
    /// subscripts), for scalar dependence analysis.
    pub rhs_idents: Vec<String>,
}

impl fmt::Display for Assign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.lhs, self.rhs)
    }
}

/// A statement of the normalized IR.
#[derive(Debug, Clone, PartialEq)]
pub enum IrStmt {
    /// A single assignment.
    Assign(Assign),
    /// Structured branch. `else_s` is empty for plain `if`.
    If {
        /// Condition id into the function's [`crate::CondTable`].
        cond: CondId,
        /// Then branch.
        then_s: Vec<IrStmt>,
        /// Else branch.
        else_s: Vec<IrStmt>,
    },
    /// A nested normalized loop.
    Loop(Box<LoopIr>),
    /// A statement the analysis cannot interpret (e.g. a call with
    /// side effects). Renders the enclosing loop ineligible.
    Opaque(String),
}

/// A normalized loop: `for (idx = 0; idx < n_iters; idx++) body`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopIr {
    /// Pre-order loop id within the function.
    pub id: LoopId,
    /// The normalized iteration variable (0-based, stride 1).
    pub index: Symbol,
    /// Symbolic iteration count `N`.
    pub n_iters: Expr,
    /// Name of the original loop variable (may equal `index`'s name when
    /// the source loop was already normalized).
    pub original_index: String,
    /// Loop body.
    pub body: Vec<IrStmt>,
    /// `#pragma` lines immediately preceding the loop in the source.
    pub pragmas: Vec<String>,
    /// 1-based source line of the `for`, for diagnostics.
    pub line: u32,
}

impl LoopIr {
    /// All variable names assigned anywhere in the loop body (scalars and
    /// arrays), including by inner loops — the *loop-variant* set.
    pub fn assigned_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        collect_assigned(&self.body, &mut out);
        // Inner loop indices are assigned too.
        collect_indices(&self.body, &mut out);
        out.sort();
        out.dedup();
        out
    }

    /// Direct inner loops of this loop (not transitive).
    pub fn inner_loops(&self) -> Vec<&LoopIr> {
        let mut out = Vec::new();
        collect_direct_loops(&self.body, &mut out);
        out
    }
}

fn collect_assigned(body: &[IrStmt], out: &mut Vec<String>) {
    for s in body {
        match s {
            IrStmt::Assign(a) => out.push(a.lhs.name().to_string()),
            IrStmt::If { then_s, else_s, .. } => {
                collect_assigned(then_s, out);
                collect_assigned(else_s, out);
            }
            IrStmt::Loop(l) => collect_assigned(&l.body, out),
            IrStmt::Opaque(_) => {}
        }
    }
}

fn collect_indices(body: &[IrStmt], out: &mut Vec<String>) {
    for s in body {
        match s {
            IrStmt::If { then_s, else_s, .. } => {
                collect_indices(then_s, out);
                collect_indices(else_s, out);
            }
            IrStmt::Loop(l) => {
                out.push(l.index.name.to_string());
                collect_indices(&l.body, out);
            }
            _ => {}
        }
    }
}

fn collect_direct_loops<'a>(body: &'a [IrStmt], out: &mut Vec<&'a LoopIr>) {
    for s in body {
        match s {
            IrStmt::Loop(l) => out.push(l),
            IrStmt::If { then_s, else_s, .. } => {
                collect_direct_loops(then_s, out);
                collect_direct_loops(else_s, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_assign(name: &str) -> IrStmt {
        IrStmt::Assign(Assign {
            lhs: LValue::Scalar(name.into()),
            rhs: Rhs::Expr(Expr::int(0)),
            integer: true,
            reads: vec![],
            compound_op: None,
            rhs_idents: vec![],
        })
    }

    #[test]
    fn assigned_vars_transitive() {
        let inner = LoopIr {
            id: LoopId(1),
            index: Symbol::var("j"),
            n_iters: Expr::var("m"),
            original_index: "j".into(),
            body: vec![scalar_assign("p")],
            pragmas: vec![],
            line: 2,
        };
        let outer = LoopIr {
            id: LoopId(0),
            index: Symbol::var("i"),
            n_iters: Expr::var("n"),
            original_index: "i".into(),
            body: vec![scalar_assign("a"), IrStmt::Loop(Box::new(inner))],
            pragmas: vec![],
            line: 1,
        };
        let vars = outer.assigned_vars();
        assert!(vars.contains(&"a".to_string()));
        assert!(vars.contains(&"p".to_string()));
        assert!(
            vars.contains(&"j".to_string()),
            "inner index is loop-variant"
        );
        assert_eq!(outer.inner_loops().len(), 1);
    }

    #[test]
    fn lvalue_display() {
        let lv = LValue::Array {
            name: "ind".into(),
            subs: vec![Expr::var("_temp_0")],
        };
        assert_eq!(lv.to_string(), "ind[_temp_0]");
    }
}
