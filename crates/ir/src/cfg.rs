//! Control-flow graph of a loop body.
//!
//! The Phase-1 algorithm (paper, Section 2.3) operates on the CFG of the
//! loop body, "which is a Directed Acyclic Graph": each node represents a
//! statement, inner loops are represented by a single collapsed node, and
//! the analysis performs a forward dataflow traversal in topological order.
//! Control-flow diverge points tag values with the relevant if-condition;
//! merge points take the conservative union of predecessors.
//!
//! Nodes are created in topological order by construction, so
//! [`LoopCfg::topo_order`] is simply the identity order; edges always point
//! from lower to higher ids (asserted in tests).

use crate::cond::CondId;
use crate::stmt::{Assign, IrStmt, LoopId, LoopIr};
use std::fmt;

/// Identifier of a CFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CfgNodeId(pub usize);

impl fmt::Display for CfgNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a CFG node represents.
#[derive(Debug, Clone, PartialEq)]
pub enum CfgPayload {
    /// Loop entry (the loop-condition node, e.g. `j < npts` in Figure 5).
    Entry,
    /// One normalized assignment.
    Assign(Assign),
    /// A collapsed inner loop; Phase-2 substitutes its aggregated effect.
    InnerLoop(LoopId),
    /// A control-flow diverge point carrying the branch condition.
    Branch(CondId),
    /// A control-flow merge point.
    Join,
    /// A statement the analysis cannot interpret.
    Opaque(String),
    /// Loop exit (the increment node, e.g. `j = j + 1` in Figure 5).
    Exit,
}

/// A CFG node with its edges and guard set.
#[derive(Debug, Clone)]
pub struct CfgNode {
    /// This node's id.
    pub id: CfgNodeId,
    /// Payload.
    pub payload: CfgPayload,
    /// Predecessors.
    pub preds: Vec<CfgNodeId>,
    /// Successors.
    pub succs: Vec<CfgNodeId>,
    /// The `(condition, polarity)` pairs under which this node executes —
    /// the paper's "tag with the relevant if-condition" information.
    pub guards: Vec<(CondId, bool)>,
}

/// The CFG of one loop body.
#[derive(Debug, Clone)]
pub struct LoopCfg {
    /// Which loop this CFG belongs to.
    pub loop_id: LoopId,
    /// Nodes in topological order.
    pub nodes: Vec<CfgNode>,
    /// Entry node id.
    pub entry: CfgNodeId,
    /// Exit node id.
    pub exit: CfgNodeId,
}

impl LoopCfg {
    /// Builds the CFG of `l`'s body. Inner loops become single
    /// [`CfgPayload::InnerLoop`] nodes.
    pub fn build(l: &LoopIr) -> LoopCfg {
        let mut b = Builder { nodes: Vec::new() };
        let entry = b.add(CfgPayload::Entry, &[], &[]);
        let last = b.chain(&l.body, entry, &[]);
        let exit = b.add(CfgPayload::Exit, &[last], &[]);
        LoopCfg {
            loop_id: l.id,
            nodes: b.nodes,
            entry,
            exit,
        }
    }

    /// Node lookup.
    pub fn node(&self, id: CfgNodeId) -> &CfgNode {
        &self.nodes[id.0]
    }

    /// Topological order of node ids (identity by construction).
    pub fn topo_order(&self) -> impl Iterator<Item = CfgNodeId> + '_ {
        (0..self.nodes.len()).map(CfgNodeId)
    }

    /// True if every edge goes from a lower to a higher id (DAG check).
    pub fn is_dag(&self) -> bool {
        self.nodes
            .iter()
            .all(|n| n.succs.iter().all(|s| s.0 > n.id.0) && n.preds.iter().all(|p| p.0 < n.id.0))
    }

    /// Renders the CFG for diagnostics (one line per node).
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for n in &self.nodes {
            let payload = match &n.payload {
                CfgPayload::Entry => "entry".to_string(),
                CfgPayload::Assign(a) => a.to_string(),
                CfgPayload::InnerLoop(id) => format!("inner {id}"),
                CfgPayload::Branch(c) => format!("branch {c}"),
                CfgPayload::Join => "join".to_string(),
                CfgPayload::Opaque(t) => format!("opaque({t})"),
                CfgPayload::Exit => "exit".to_string(),
            };
            let succs: Vec<String> = n.succs.iter().map(|s| s.to_string()).collect();
            let _ = writeln!(out, "{}: {payload} -> [{}]", n.id, succs.join(", "));
        }
        out
    }
}

struct Builder {
    nodes: Vec<CfgNode>,
}

impl Builder {
    fn add(
        &mut self,
        payload: CfgPayload,
        preds: &[CfgNodeId],
        guards: &[(CondId, bool)],
    ) -> CfgNodeId {
        let id = CfgNodeId(self.nodes.len());
        for p in preds {
            self.nodes[p.0].succs.push(id);
        }
        self.nodes.push(CfgNode {
            id,
            payload,
            preds: preds.to_vec(),
            succs: Vec::new(),
            guards: guards.to_vec(),
        });
        id
    }

    /// Lowers a statement list into a chain starting after `pred`,
    /// returning the last node of the chain.
    fn chain(&mut self, stmts: &[IrStmt], pred: CfgNodeId, guards: &[(CondId, bool)]) -> CfgNodeId {
        let mut cur = pred;
        for s in stmts {
            cur = match s {
                IrStmt::Assign(a) => self.add(CfgPayload::Assign(a.clone()), &[cur], guards),
                IrStmt::Loop(l) => self.add(CfgPayload::InnerLoop(l.id), &[cur], guards),
                IrStmt::Opaque(t) => self.add(CfgPayload::Opaque(t.clone()), &[cur], guards),
                IrStmt::If {
                    cond,
                    then_s,
                    else_s,
                } => {
                    let branch = self.add(CfgPayload::Branch(*cond), &[cur], guards);
                    let mut tg = guards.to_vec();
                    tg.push((*cond, true));
                    let then_last = self.chain(then_s, branch, &tg);
                    let mut eg = guards.to_vec();
                    eg.push((*cond, false));
                    let else_last = if else_s.is_empty() {
                        branch
                    } else {
                        self.chain(else_s, branch, &eg)
                    };
                    let preds = if then_last == else_last {
                        vec![then_last]
                    } else {
                        vec![then_last, else_last]
                    };
                    self.add(CfgPayload::Join, &preds, guards)
                }
            };
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_function;
    use subsub_cfront::parse_program;

    fn cfg_of(src: &str) -> (LoopCfg, crate::lower::LoweredFunction) {
        let p = parse_program(src).unwrap();
        let f = lower_function(&p.funcs[0], &p.globals).unwrap();
        let loops = f.loops();
        let cfg = LoopCfg::build(loops[0]);
        (cfg, f)
    }

    /// Figure 5 of the paper: the CFG of the normalized Figure 4 loop.
    #[test]
    fn figure5_shape() {
        let (cfg, _) = cfg_of(
            r#"
            void f(int npts, double *xdos, int *ind, double t, double width) {
                int m; int j;
                m = 0;
                for (j = 0; j < npts; j++) {
                    if ((xdos[j] - t) < width)
                        ind[m++] = j;
                }
            }
            "#,
        );
        assert!(cfg.is_dag());
        // entry, branch, 3 assigns, join, exit = 7 nodes
        assert_eq!(cfg.nodes.len(), 7);
        let kinds: Vec<&CfgPayload> = cfg.nodes.iter().map(|n| &n.payload).collect();
        assert!(matches!(kinds[0], CfgPayload::Entry));
        assert!(matches!(kinds[1], CfgPayload::Branch(_)));
        assert!(matches!(kinds[2], CfgPayload::Assign(_)));
        assert!(matches!(kinds[5], CfgPayload::Join));
        assert!(matches!(kinds[6], CfgPayload::Exit));
        // Join has two predecessors: the last then-stmt and the branch.
        let join = &cfg.nodes[5];
        assert_eq!(join.preds.len(), 2);
        // Guarded nodes carry the tag.
        let a0 = &cfg.nodes[2];
        assert_eq!(a0.guards.len(), 1);
        assert!(a0.guards[0].1);
    }

    #[test]
    fn if_else_both_guarded() {
        let (cfg, _) = cfg_of(
            r#"
            void f(int n, int *a) {
                int i;
                for (i = 0; i < n; i++) {
                    if (a[i] > 0) a[i] = 1; else a[i] = 2;
                }
            }
            "#,
        );
        assert!(cfg.is_dag());
        let guards: Vec<Vec<(crate::cond::CondId, bool)>> = cfg
            .nodes
            .iter()
            .filter(|n| matches!(n.payload, CfgPayload::Assign(_)))
            .map(|n| n.guards.clone())
            .collect();
        assert_eq!(guards.len(), 2);
        assert!(guards[0][0].1);
        assert!(!guards[1][0].1);
    }

    #[test]
    fn inner_loop_collapsed() {
        let (cfg, _) = cfg_of(
            r#"
            void f(int n, int m, int *a) {
                int i; int j; int p;
                p = 0;
                for (i = 0; i < n; i++) {
                    a[i] = p;
                    for (j = 0; j < m; j++) {
                        p = p + 1;
                    }
                }
            }
            "#,
        );
        assert!(cfg.is_dag());
        assert!(cfg
            .nodes
            .iter()
            .any(|n| matches!(n.payload, CfgPayload::InnerLoop(_))));
    }

    #[test]
    fn straightline_chain() {
        let (cfg, _) = cfg_of(
            "void f(int n, int *a, int *b) { int i; for (i=0;i<n;i++) { a[i] = i; b[i] = i; } }",
        );
        assert!(cfg.is_dag());
        assert_eq!(cfg.nodes.len(), 4); // entry, 2 assigns, exit
        for w in cfg.nodes.windows(2) {
            assert!(w[0].succs.contains(&w[1].id));
        }
    }

    #[test]
    fn nested_ifs_guard_stack() {
        let (cfg, _) = cfg_of(
            r#"
            void f(int n, int *a, int *b) {
                int i;
                for (i = 0; i < n; i++) {
                    if (a[i] > 0) {
                        if (b[i] > 0) {
                            a[i] = 0;
                        }
                    }
                }
            }
            "#,
        );
        let deep = cfg
            .nodes
            .iter()
            .find(|n| matches!(n.payload, CfgPayload::Assign(_)))
            .unwrap();
        assert_eq!(deep.guards.len(), 2);
        assert!(deep.guards.iter().all(|(_, pol)| *pol));
    }
}
