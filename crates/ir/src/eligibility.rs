//! Loop eligibility for the subscript-array analysis.
//!
//! Per the paper (Section 2.2): "Loops containing function calls with side
//! effects … and break statements are considered ineligible for analysis."
//! In this IR all such constructs have already been lowered to
//! [`IrStmt::Opaque`] nodes, so eligibility is a transitive scan for opaque
//! statements.

use crate::stmt::{IrStmt, LoopIr};
use std::fmt;

/// Why a loop is ineligible for Phase-1/Phase-2 analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum Ineligibility {
    /// The loop (or a nested loop) contains an unanalyzable construct.
    OpaqueConstruct(String),
}

impl fmt::Display for Ineligibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ineligibility::OpaqueConstruct(t) => write!(f, "contains {t}"),
        }
    }
}

/// Checks whether `l` is eligible for analysis.
///
/// A loop is eligible when neither it nor any nested loop contains an
/// opaque construct (`break`, `while`, calls with side effects, …).
/// Opaque *values* (`Rhs::Opaque`) do not affect eligibility — they just
/// yield ⊥ for the assigned variable.
pub fn check_loop_eligibility(l: &LoopIr) -> Result<(), Ineligibility> {
    scan(&l.body)
}

fn scan(body: &[IrStmt]) -> Result<(), Ineligibility> {
    for s in body {
        match s {
            IrStmt::Opaque(t) => return Err(Ineligibility::OpaqueConstruct(t.clone())),
            IrStmt::If { then_s, else_s, .. } => {
                scan(then_s)?;
                scan(else_s)?;
            }
            IrStmt::Loop(l) => scan(&l.body)?,
            IrStmt::Assign(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_function;
    use subsub_cfront::parse_program;

    fn first_loop_eligibility(src: &str) -> Result<(), Ineligibility> {
        let p = parse_program(src).unwrap();
        let f = lower_function(&p.funcs[0], &p.globals).unwrap();
        let loops = f.loops();
        check_loop_eligibility(loops[0])
    }

    #[test]
    fn clean_loop_is_eligible() {
        assert!(first_loop_eligibility(
            "void f(int n, int *a) { int i; for (i=0;i<n;i++) a[i] = i; }"
        )
        .is_ok());
    }

    #[test]
    fn break_makes_ineligible() {
        let r = first_loop_eligibility(
            "void f(int n, int *a) { int i; for (i=0;i<n;i++) { if (a[i] > 9) break; a[i] = i; } }",
        );
        assert!(matches!(r, Err(Ineligibility::OpaqueConstruct(t)) if t.contains("break")));
    }

    #[test]
    fn side_effect_call_makes_ineligible() {
        let r = first_loop_eligibility(
            "void f(int n, int *a) { int i; for (i=0;i<n;i++) { update(a, i); } }",
        );
        assert!(matches!(r, Err(Ineligibility::OpaqueConstruct(t)) if t.contains("update")));
    }

    #[test]
    fn pure_math_call_is_fine() {
        // exp() is whitelisted — an opaque VALUE, not an opaque statement.
        assert!(first_loop_eligibility(
            "void f(int n, double *y) { int i; for (i=0;i<n;i++) y[i] = exp(1.0); }"
        )
        .is_ok());
    }

    #[test]
    fn nested_break_propagates() {
        let r = first_loop_eligibility(
            r#"
            void f(int n, int m, int *a) {
                int i; int j;
                for (i=0;i<n;i++) {
                    for (j=0;j<m;j++) {
                        if (a[j] < 0) break;
                    }
                }
            }
            "#,
        );
        assert!(r.is_err());
    }
}
