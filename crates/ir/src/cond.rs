//! Lowered branch conditions and the per-loop condition table.
//!
//! Phase-1 tags values assigned under an `if` with *the relevant
//! if-condition* (paper, Section 2.3); Phase-2 then asks whether two tags
//! are **equal** and **loop variant** (Algorithm 2, lines 13–15). Each
//! syntactic `if` in a loop body receives a unique [`CondId`]; equality of
//! tags is identity of ids or structural equality of the lowered
//! conditions.

use std::fmt;
use subsub_symbolic::Expr;

/// Comparison operators appearing in lowered conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// The semantic payload of a condition.
#[derive(Debug, Clone, PartialEq)]
pub enum CondKind {
    /// An integer comparison `lhs op rhs` over lowered expressions.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Expr,
        /// Right operand.
        rhs: Expr,
    },
    /// Anything else (floating-point comparisons, `&&` chains, calls).
    /// Still usable as a *tag* — the analysis only needs identity and
    /// loop-variance, not the predicate's meaning.
    Opaque {
        /// Pretty-printed source form, for diagnostics and tag display.
        text: String,
        /// Variables referenced by the condition (for variance analysis).
        refs: Vec<String>,
    },
}

/// A lowered `if` condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Cond {
    /// Payload.
    pub kind: CondKind,
    /// Source form for diagnostics.
    pub text: String,
}

impl Cond {
    /// Variables referenced anywhere in the condition (including inside
    /// array-read subscripts) — the inputs to loop-variance analysis.
    pub fn referenced_vars(&self) -> Vec<String> {
        match &self.kind {
            CondKind::Cmp { lhs, rhs, .. } => {
                let mut out: Vec<String> = Vec::new();
                for e in [lhs, rhs] {
                    for s in e.free_syms() {
                        out.push(s.name.to_string());
                    }
                    collect_read_arrays(e, &mut out);
                }
                out.sort();
                out.dedup();
                out
            }
            CondKind::Opaque { refs, .. } => refs.clone(),
        }
    }
}

fn collect_read_arrays(e: &Expr, out: &mut Vec<String>) {
    for t in e.terms() {
        for a in &t.atoms {
            if let subsub_symbolic::Atom::Read { array, indices } = a {
                out.push(array.to_string());
                for ix in indices {
                    collect_read_arrays(ix, out);
                    for s in ix.free_syms() {
                        out.push(s.name.to_string());
                    }
                }
            }
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Identifier of a condition within one lowered function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CondId(pub u32);

impl fmt::Display for CondId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Table of all conditions of a lowered function, indexed by [`CondId`].
#[derive(Debug, Clone, Default)]
pub struct CondTable {
    conds: Vec<Cond>,
}

impl CondTable {
    /// An empty table.
    pub fn new() -> CondTable {
        CondTable::default()
    }

    /// Inserts a condition, returning its id.
    pub fn push(&mut self, c: Cond) -> CondId {
        let id = CondId(self.conds.len() as u32);
        self.conds.push(c);
        id
    }

    /// Looks up a condition.
    pub fn get(&self, id: CondId) -> &Cond {
        &self.conds[id.0 as usize]
    }

    /// Number of conditions.
    pub fn len(&self) -> usize {
        self.conds.len()
    }

    /// True if no conditions were recorded.
    pub fn is_empty(&self) -> bool {
        self.conds.is_empty()
    }

    /// True if two tags denote the same predicate: identical ids, or
    /// structurally equal condition payloads.
    pub fn tags_equal(&self, a: CondId, b: CondId) -> bool {
        a == b || self.get(a).kind == self.get(b).kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_vars_of_cmp() {
        let c = Cond {
            kind: CondKind::Cmp {
                op: CmpOp::Gt,
                lhs: Expr::var("adiag"),
                rhs: Expr::int(0),
            },
            text: "adiag > 0".into(),
        };
        assert_eq!(c.referenced_vars(), vec!["adiag".to_string()]);
    }

    #[test]
    fn referenced_vars_include_read_arrays() {
        // xdos[j] - t < width
        let c = Cond {
            kind: CondKind::Cmp {
                op: CmpOp::Lt,
                lhs: Expr::read("xdos", vec![Expr::var("j")]) - Expr::var("t"),
                rhs: Expr::var("width"),
            },
            text: "(xdos[j] - t) < width".into(),
        };
        let vars = c.referenced_vars();
        assert!(vars.contains(&"xdos".to_string()));
        assert!(vars.contains(&"j".to_string()));
        assert!(vars.contains(&"t".to_string()));
        assert!(vars.contains(&"width".to_string()));
    }

    #[test]
    fn tags_equal_by_id_and_structure() {
        let mut t = CondTable::new();
        let mk = || Cond {
            kind: CondKind::Cmp {
                op: CmpOp::Gt,
                lhs: Expr::var("x"),
                rhs: Expr::int(0),
            },
            text: "x > 0".into(),
        };
        let a = t.push(mk());
        let b = t.push(mk());
        let c = t.push(Cond {
            kind: CondKind::Cmp {
                op: CmpOp::Lt,
                lhs: Expr::var("x"),
                rhs: Expr::int(0),
            },
            text: "x < 0".into(),
        });
        assert!(t.tags_equal(a, a));
        assert!(t.tags_equal(a, b)); // structurally equal
        assert!(!t.tags_equal(a, c));
    }
}
