//! Normalized loop IR — the analysis-facing program representation.
//!
//! This crate implements the program normalizations the paper attributes to
//! Cetus (Section 2.2):
//!
//! * each statement makes **at most one assignment** — compound assignments
//!   (`+=`) are expanded and embedded side effects (`a[m++] = j`) are split
//!   out through compiler temporaries `_temp_N`, exactly as in Figure 4(b)
//!   of the paper;
//! * loop iteration spaces are normalized to **start at 0 with stride 1**,
//!   the loop variable representing the iteration number;
//! * loops containing `break` or calls to functions with side effects
//!   (a whitelist of C standard math functions is considered side-effect
//!   free) are marked **ineligible** for analysis;
//! * the loop body is exposed as a **control-flow graph** (a DAG — inner
//!   loops appear as single collapsed nodes) in topological order, each
//!   node carrying the guard conditions under which it executes.

pub mod cfg;
pub mod cond;
pub mod eligibility;
pub mod lower;
pub mod stmt;
pub mod types;

pub use cfg::{CfgNode, CfgNodeId, CfgPayload, LoopCfg};
pub use cond::{CmpOp, Cond, CondId, CondKind, CondTable};
pub use eligibility::{check_loop_eligibility, Ineligibility};
pub use lower::{lower_function, LowerError, LoweredFunction};
pub use stmt::{ArrayRead, Assign, IrStmt, LValue, LoopId, LoopIr, Rhs};
pub use types::{TypeEnv, VarInfo};
