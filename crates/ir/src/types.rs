//! Type environment: what the analysis knows about each variable.

use std::collections::HashMap;
use subsub_cfront::Type;

/// Shape and type of one program variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// Base C type.
    pub ty: Type,
    /// Pointer depth from the declarator.
    pub pointer: usize,
    /// Number of declared array dimensions.
    pub array_dims: usize,
    /// True if declared inside the currently analyzed function (an
    /// automatic variable — candidate for privatization).
    pub local: bool,
}

impl VarInfo {
    /// True if subscripting this variable is an array access (declared
    /// array or pointer parameter).
    pub fn is_array_like(&self) -> bool {
        self.array_dims > 0 || self.pointer > 0
    }

    /// True if the variable holds integer values — the class of
    /// loop-variant variables the analysis tracks.
    pub fn is_integer(&self) -> bool {
        self.ty.is_integer()
    }
}

/// Map from variable name to [`VarInfo`], built from parameters, globals
/// and local declarations during lowering.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    vars: HashMap<String, VarInfo>,
}

impl TypeEnv {
    /// An empty environment.
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    /// Records a variable. Later declarations shadow earlier ones (the C
    /// subset has no block scoping subtleties the analysis cares about).
    pub fn insert(&mut self, name: &str, info: VarInfo) {
        self.vars.insert(name.to_string(), info);
    }

    /// Looks up a variable.
    pub fn get(&self, name: &str) -> Option<&VarInfo> {
        self.vars.get(name)
    }

    /// True if `name` is known to be an array or pointer.
    pub fn is_array(&self, name: &str) -> bool {
        self.get(name).map(VarInfo::is_array_like).unwrap_or(false)
    }

    /// True if `name` is a known *integer* variable (scalar or array).
    /// Unknown names are conservatively treated as non-integer.
    pub fn is_integer(&self, name: &str) -> bool {
        self.get(name).map(VarInfo::is_integer).unwrap_or(false)
    }

    /// Number of declared dimensions for `name` (pointers count one level).
    pub fn dims_of(&self, name: &str) -> usize {
        self.get(name)
            .map(|v| v.array_dims.max(v.pointer))
            .unwrap_or(0)
    }

    /// Iterates over all known variables.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &VarInfo)> {
        self.vars.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_like_detection() {
        let mut env = TypeEnv::new();
        env.insert(
            "A_i",
            VarInfo {
                ty: Type::Int,
                pointer: 1,
                array_dims: 0,
                local: false,
            },
        );
        env.insert(
            "idel",
            VarInfo {
                ty: Type::Int,
                pointer: 0,
                array_dims: 4,
                local: false,
            },
        );
        env.insert(
            "m",
            VarInfo {
                ty: Type::Int,
                pointer: 0,
                array_dims: 0,
                local: true,
            },
        );
        assert!(env.is_array("A_i"));
        assert!(env.is_array("idel"));
        assert!(!env.is_array("m"));
        assert_eq!(env.dims_of("idel"), 4);
        assert_eq!(env.dims_of("A_i"), 1);
    }

    #[test]
    fn integer_tracking() {
        let mut env = TypeEnv::new();
        env.insert(
            "x",
            VarInfo {
                ty: Type::Double,
                pointer: 0,
                array_dims: 0,
                local: true,
            },
        );
        env.insert(
            "n",
            VarInfo {
                ty: Type::Int,
                pointer: 0,
                array_dims: 0,
                local: false,
            },
        );
        assert!(!env.is_integer("x"));
        assert!(env.is_integer("n"));
        assert!(!env.is_integer("unknown"));
    }
}
