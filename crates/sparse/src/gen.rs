//! Synthetic matrix generators — substitutes for the paper's input data.
//!
//! | Paper input | Generator | Preserved characteristic |
//! |---|---|---|
//! | AMGmk MATRIX1–5 (CORAL) | [`laplacian_3d`] at growing grid sizes | 27-point stencil structure, size scaling |
//! | af_shell1 (FEM shell) | [`banded`] | near-uniform column degrees (static scheduling wins) |
//! | gsm_106857, dielFilterV2clx, inline_1, spal_004, crankseg_1 | [`power_law_cols`] | skewed column-degree distribution (dynamic scheduling wins) |
//! | generic fill-ins | [`random_uniform`] | controlled density |

use crate::csr::Csr;
use crate::rng::Rng64;

/// A named matrix recipe used by the benchmark harnesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatrixSpec {
    /// 3-D 27-point Laplacian on an `n³` grid (AMGmk MATRIXk).
    Laplacian3d {
        /// Grid edge length.
        n: usize,
    },
    /// Banded matrix with near-uniform bandwidth (af_shell1-like).
    Banded {
        /// Dimension.
        n: usize,
        /// Half bandwidth.
        half_bw: usize,
    },
    /// Power-law column degrees (gsm/dielFilter/inline-like).
    PowerLaw {
        /// Dimension.
        n: usize,
        /// Average nonzeros per column.
        avg_deg: usize,
        /// Skew exponent (larger = more skewed).
        alpha: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Uniformly random pattern.
    Uniform {
        /// Dimension.
        n: usize,
        /// Average nonzeros per row.
        avg_deg: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl MatrixSpec {
    /// Materializes the matrix.
    pub fn build(&self) -> Csr {
        match *self {
            MatrixSpec::Laplacian3d { n } => laplacian_3d(n),
            MatrixSpec::Banded { n, half_bw } => banded(n, half_bw),
            MatrixSpec::PowerLaw {
                n,
                avg_deg,
                alpha,
                seed,
            } => power_law_cols(n, avg_deg, alpha, seed),
            MatrixSpec::Uniform { n, avg_deg, seed } => random_uniform(n, avg_deg, seed),
        }
    }
}

/// 27-point Laplacian on an `n × n × n` grid (the AMGmk operator family).
pub fn laplacian_3d(n: usize) -> Csr {
    let dim = n * n * n;
    let idx = |x: usize, y: usize, z: usize| (z * n + y) * n + x;
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(dim);
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let mut row = Vec::with_capacity(27);
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let (nx, ny, nz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if nx < 0 || ny < 0 || nz < 0 {
                                continue;
                            }
                            let (nx, ny, nz) = (nx as usize, ny as usize, nz as usize);
                            if nx >= n || ny >= n || nz >= n {
                                continue;
                            }
                            let v = if dx == 0 && dy == 0 && dz == 0 {
                                26.0
                            } else {
                                -1.0
                            };
                            row.push((idx(nx, ny, nz), v));
                        }
                    }
                }
                rows.push(row);
            }
        }
    }
    Csr::from_rows(dim, dim, rows)
}

/// Banded matrix: row `i` holds nonzeros in `[i-half_bw, i+half_bw]`.
/// Column degrees are near-uniform — the af_shell1 regime where static
/// scheduling is already balanced.
pub fn banded(n: usize, half_bw: usize) -> Csr {
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half_bw);
        let hi = (i + half_bw).min(n - 1);
        let row: Vec<(usize, f64)> = (lo..=hi)
            .map(|j| (j, if i == j { 2.0 * half_bw as f64 } else { -1.0 }))
            .collect();
        rows.push(row);
    }
    Csr::from_rows(n, n, rows)
}

/// Power-law column degrees: column `c`'s degree is proportional to
/// `(c+1)^(-alpha)` (then shuffled), producing the skewed per-column work
/// of the gsm/dielFilter/inline matrices where dynamic scheduling wins.
pub fn power_law_cols(n: usize, avg_deg: usize, alpha: f64, seed: u64) -> Csr {
    let mut rng = Rng64::seed_from_u64(seed);
    // Degree model.
    let weights: Vec<f64> = (0..n).map(|c| ((c + 1) as f64).powf(-alpha)).collect();
    let wsum: f64 = weights.iter().sum();
    let total = n * avg_deg;
    let degrees: Vec<usize> = weights
        .iter()
        .map(|w| ((w / wsum) * total as f64).round() as usize)
        .collect();

    // Degrees stay *partially* clustered: a windowed shuffle keeps the
    // heavy columns loosely grouped (as in the natural ordering of the
    // SuiteSparse inputs) without the pathological fully-sorted layout.
    // A static blocked schedule then suffers moderate imbalance — the
    // 1.2–1.8× dynamic-over-static gap of the paper's Figure 16.
    let mut degrees = degrees;
    let window = (n / 3).max(1);
    for i in 0..n {
        let hi = (i + window).min(n - 1);
        if hi > i {
            let j = rng.gen_usize(i, hi);
            degrees.swap(i, j);
        }
    }
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for (c, &deg) in degrees.iter().enumerate() {
        let deg = deg.clamp(1, n);
        for _ in 0..deg {
            let r = rng.gen_usize(0, n - 1);
            rows[r].push((c, rng.gen_f64(-1.0, 1.0)));
        }
    }
    Csr::from_rows(n, n, rows)
}

/// Uniformly random pattern with `avg_deg` nonzeros per row plus the
/// diagonal.
pub fn random_uniform(n: usize, avg_deg: usize, seed: u64) -> Csr {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = vec![(i, avg_deg as f64 + 1.0)];
        for _ in 0..avg_deg {
            row.push((rng.gen_usize(0, n - 1), rng.gen_f64(-1.0, 1.0)));
        }
        rows.push(row);
    }
    Csr::from_rows(n, n, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csc::Csc;
    use crate::stats::DegreeStats;

    #[test]
    fn laplacian_interior_rows_have_27_entries() {
        let a = laplacian_3d(5);
        a.validate().unwrap();
        assert_eq!(a.rows, 125);
        // The center point has a full 27-point stencil.
        let center = (2 * 5 + 2) * 5 + 2;
        assert_eq!(a.row_nnz(center), 27);
        // Corner points have 8.
        assert_eq!(a.row_nnz(0), 8);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn laplacian_is_symmetric_pattern() {
        let a = laplacian_3d(4);
        let d = a.to_dense();
        for i in 0..a.rows {
            for j in 0..a.cols {
                assert_eq!(d[i][j], d[j][i]);
            }
        }
    }

    #[test]
    fn banded_degrees_are_uniform() {
        let a = banded(200, 5);
        a.validate().unwrap();
        let b = Csc::from_csr(&a);
        let st = DegreeStats::of_cols(&b);
        assert!(st.imbalance() < 1.1, "banded imbalance {}", st.imbalance());
    }

    #[test]
    fn power_law_is_skewed() {
        let a = power_law_cols(500, 8, 1.0, 42);
        a.validate().unwrap();
        let b = Csc::from_csr(&a);
        let st = DegreeStats::of_cols(&b);
        assert!(
            st.imbalance() > 2.0,
            "power-law imbalance {}",
            st.imbalance()
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let a = power_law_cols(100, 4, 0.8, 7);
        let b = power_law_cols(100, 4, 0.8, 7);
        assert_eq!(a, b);
        let c = power_law_cols(100, 4, 0.8, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn spec_builds() {
        for spec in [
            MatrixSpec::Laplacian3d { n: 3 },
            MatrixSpec::Banded { n: 10, half_bw: 2 },
            MatrixSpec::PowerLaw {
                n: 10,
                avg_deg: 2,
                alpha: 0.5,
                seed: 1,
            },
            MatrixSpec::Uniform {
                n: 10,
                avg_deg: 2,
                seed: 1,
            },
        ] {
            spec.build().validate().unwrap();
        }
    }
}
