//! Coordinate (triplet) storage — the assembly format.

use crate::csr::Csr;

/// A COO matrix: unsorted `(row, col, value)` triplets.
#[derive(Debug, Clone, Default)]
pub struct Coo {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Triplets.
    pub entries: Vec<(usize, usize, f64)>,
}

impl Coo {
    /// An empty matrix of the given shape.
    pub fn new(rows: usize, cols: usize) -> Coo {
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Appends a triplet.
    pub fn push(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols);
        self.entries.push((r, c, v));
    }

    /// Converts to CSR, summing duplicate coordinates.
    pub fn to_csr(&self) -> Csr {
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.rows];
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        for (r, c, v) in sorted {
            match rows[r].last_mut() {
                Some((lc, lv)) if *lc == c => *lv += v,
                _ => rows[r].push((c, v)),
            }
        }
        Csr::from_rows(self.rows, self.cols, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_sum() {
        let mut m = Coo::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 0, 2.5);
        m.push(1, 1, 4.0);
        let a = m.to_csr();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.to_dense(), vec![vec![3.5, 0.0], vec![0.0, 4.0]]);
    }
}
