//! Degree-distribution statistics (load-balance predictors).

use crate::csc::Csc;
use crate::csr::Csr;

/// Row- or column-degree statistics of a sparse matrix.
#[derive(Debug, Clone)]
pub struct DegreeStats {
    /// Per-unit (row or column) nonzero counts.
    pub degrees: Vec<usize>,
}

impl DegreeStats {
    /// Row degrees of a CSR matrix.
    pub fn of_rows(a: &Csr) -> DegreeStats {
        DegreeStats {
            degrees: (0..a.rows).map(|r| a.row_nnz(r)).collect(),
        }
    }

    /// Column degrees of a CSC matrix.
    pub fn of_cols(a: &Csc) -> DegreeStats {
        DegreeStats {
            degrees: (0..a.cols).map(|c| a.col_nnz(c)).collect(),
        }
    }

    /// Maximum degree.
    pub fn max(&self) -> usize {
        self.degrees.iter().copied().max().unwrap_or(0)
    }

    /// Mean degree.
    pub fn mean(&self) -> f64 {
        if self.degrees.is_empty() {
            0.0
        } else {
            self.degrees.iter().sum::<usize>() as f64 / self.degrees.len() as f64
        }
    }

    /// Imbalance factor: max / mean (1.0 = perfectly uniform).
    pub fn imbalance(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            1.0
        } else {
            self.max() as f64 / m
        }
    }

    /// The degrees as `f64` costs (input to the scheduling simulator).
    pub fn as_costs(&self, per_nnz_cost: f64, base_cost: f64) -> Vec<f64> {
        self.degrees
            .iter()
            .map(|&d| base_cost + per_nnz_cost * d as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let a = Csr::from_rows(
            3,
            3,
            vec![vec![(0, 1.0)], vec![(0, 1.0), (1, 1.0), (2, 1.0)], vec![]],
        );
        let st = DegreeStats::of_rows(&a);
        assert_eq!(st.max(), 3);
        assert!((st.mean() - 4.0 / 3.0).abs() < 1e-12);
        assert!(st.imbalance() > 2.0);
        let costs = st.as_costs(2.0, 1.0);
        assert_eq!(costs, vec![3.0, 7.0, 1.0]);
    }

    #[test]
    fn empty_matrix() {
        let a = Csr::from_rows(0, 0, vec![]);
        let st = DegreeStats::of_rows(&a);
        assert_eq!(st.max(), 0);
        assert_eq!(st.imbalance(), 1.0);
    }
}
