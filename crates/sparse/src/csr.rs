//! Compressed Sparse Row storage.

/// A CSR matrix with `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row pointer array (`rows + 1` entries, monotone).
    pub row_ptr: Vec<usize>,
    /// Column indices, row-major.
    pub col_idx: Vec<usize>,
    /// Nonzero values, aligned with `col_idx`.
    pub values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from per-row `(col, value)` lists (columns need
    /// not be sorted; they will be).
    pub fn from_rows(rows: usize, cols: usize, mut data: Vec<Vec<(usize, f64)>>) -> Csr {
        assert_eq!(data.len(), rows);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in data.iter_mut() {
            r.sort_by_key(|(c, _)| *c);
            r.dedup_by_key(|(c, _)| *c);
            for (c, v) in r.iter() {
                assert!(*c < cols, "column {c} out of bounds ({cols})");
                col_idx.push(*c);
                values.push(*v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Nonzeros in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// `y = A * x` (serial reference).
    #[allow(clippy::needless_range_loop)]
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for r in 0..self.rows {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] = acc;
        }
    }

    /// Indices of rows with at least one nonzero — the AMGmk `A_rownnz`
    /// array (strictly monotonic by construction, as the paper's analysis
    /// proves from the fill loop).
    pub fn rownnz(&self) -> Vec<usize> {
        (0..self.rows).filter(|&r| self.row_nnz(r) > 0).collect()
    }

    /// Structural validity: monotone row_ptr, in-bounds columns.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.rows + 1 {
            return Err("row_ptr length".into());
        }
        if self.row_ptr[0] != 0 || *self.row_ptr.last().unwrap() != self.nnz() {
            return Err("row_ptr ends".into());
        }
        if self.row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("row_ptr not monotone".into());
        }
        if self.col_idx.iter().any(|&c| c >= self.cols) {
            return Err("column out of bounds".into());
        }
        Ok(())
    }

    /// Dense form, for small-matrix tests.
    #[allow(clippy::needless_range_loop)]
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.cols]; self.rows];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                out[r][self.col_idx[k]] = self.values[k];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        Csr::from_rows(
            3,
            3,
            vec![vec![(0, 1.0), (2, 2.0)], vec![], vec![(1, 4.0), (0, 3.0)]],
        )
    }

    #[test]
    fn construction_sorts_columns() {
        let m = small();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.col_idx, vec![0, 2, 0, 1]);
        m.validate().unwrap();
    }

    #[test]
    fn spmv_reference() {
        let m = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        m.spmv(&x, &mut y);
        assert_eq!(y, [7.0, 0.0, 11.0]);
    }

    #[test]
    fn rownnz_skips_empty_rows() {
        let m = small();
        assert_eq!(m.rownnz(), vec![0, 2]);
    }

    #[test]
    fn row_nnz_counts() {
        let m = small();
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_nnz(2), 2);
    }
}
