//! A small deterministic PRNG (SplitMix64 seeding an xorshift64* stream)
//! replacing the external `rand` crate so the workspace builds hermetically.
//! Quality is far beyond what the synthetic matrix generators need, and
//! determinism per seed is guaranteed across platforms.

/// Deterministic 64-bit pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seeds the generator; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        // SplitMix64 step so that small / adjacent seeds diverge at once.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Rng64 {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform `usize` in the inclusive range `[lo, hi]`.
    pub fn gen_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn gen_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform `f64` in the half-open range `[lo, hi)`.
    pub fn gen_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng64::seed_from_u64(7);
        for _ in 0..1000 {
            let u = r.gen_usize(3, 9);
            assert!((3..=9).contains(&u));
            let i = r.gen_i64(-4, 4);
            assert!((-4..=4).contains(&i));
            let f = r.gen_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn values_are_spread() {
        let mut r = Rng64::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[r.gen_usize(0, 9)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
