//! Compressed Sparse Column storage.

use crate::csr::Csr;

/// A CSC matrix with `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Column pointer array (`cols + 1` entries, monotone — the paper's
    /// `col_ptr` subscript array in SDDMM).
    pub col_ptr: Vec<usize>,
    /// Row indices, column-major (`row_ind` in SDDMM).
    pub row_ind: Vec<usize>,
    /// Nonzero values.
    pub values: Vec<f64>,
}

impl Csc {
    /// Converts from CSR.
    pub fn from_csr(a: &Csr) -> Csc {
        let mut counts = vec![0usize; a.cols];
        for &c in &a.col_idx {
            counts[c] += 1;
        }
        let mut col_ptr = vec![0usize; a.cols + 1];
        for c in 0..a.cols {
            col_ptr[c + 1] = col_ptr[c] + counts[c];
        }
        let mut row_ind = vec![0usize; a.nnz()];
        let mut values = vec![0.0f64; a.nnz()];
        let mut cursor = col_ptr.clone();
        for r in 0..a.rows {
            for k in a.row_ptr[r]..a.row_ptr[r + 1] {
                let c = a.col_idx[k];
                let dst = cursor[c];
                row_ind[dst] = r;
                values[dst] = a.values[k];
                cursor[c] += 1;
            }
        }
        Csc {
            rows: a.rows,
            cols: a.cols,
            col_ptr,
            row_ind,
            values,
        }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_ind.len()
    }

    /// Nonzeros in column `c`.
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Structural validity.
    pub fn validate(&self) -> Result<(), String> {
        if self.col_ptr.len() != self.cols + 1 {
            return Err("col_ptr length".into());
        }
        if self.col_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("col_ptr not monotone".into());
        }
        if self.row_ind.iter().any(|&r| r >= self.rows) {
            return Err("row index out of bounds".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn csr_to_csc_roundtrip_dense() {
        let a = Csr::from_rows(
            3,
            4,
            vec![
                vec![(0, 1.0), (3, 2.0)],
                vec![(1, 3.0)],
                vec![(0, 4.0), (1, 5.0), (2, 6.0)],
            ],
        );
        let b = Csc::from_csr(&a);
        b.validate().unwrap();
        assert_eq!(b.nnz(), a.nnz());
        // Column 0 holds rows 0 and 2.
        assert_eq!(b.col_nnz(0), 2);
        assert_eq!(&b.row_ind[b.col_ptr[0]..b.col_ptr[1]], &[0, 2]);
        // Dense agreement.
        let dense = a.to_dense();
        for c in 0..b.cols {
            for k in b.col_ptr[c]..b.col_ptr[c + 1] {
                assert_eq!(dense[b.row_ind[k]][c], b.values[k]);
            }
        }
    }

    #[test]
    fn col_ptr_is_monotone() {
        let a = Csr::from_rows(2, 2, vec![vec![(0, 1.0)], vec![(0, 1.0), (1, 1.0)]]);
        let b = Csc::from_csr(&a);
        assert!(b.col_ptr.windows(2).all(|w| w[0] <= w[1]));
    }
}
