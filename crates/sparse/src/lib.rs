//! Sparse-matrix substrate and synthetic workload generators.
//!
//! The paper evaluates on SuiteSparse matrices (spal_004, gsm_106857,
//! dielFilterV2clx, af_shell1, inline_1, crankseg_1), the CORAL AMGmk
//! grids (MATRIX1–5) and NPB class sizes. Those inputs are not
//! redistributable here, so this crate generates synthetic substitutes
//! that control the two characteristics the experiments actually depend
//! on: the **row/column degree distribution** (load balance — Figure 16)
//! and the **problem size scaling** (Figures 13–15). See `DESIGN.md` for
//! the per-matrix mapping.

pub mod coo;
pub mod csc;
pub mod csr;
pub mod gen;
pub mod rng;
pub mod stats;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use gen::{banded, laplacian_3d, power_law_cols, random_uniform, MatrixSpec};
pub use rng::Rng64;
pub use stats::DegreeStats;
