//! The seeded campaign driver: generate adversarial cases, run every
//! differential check, shrink what fails, and summarize.
//!
//! A campaign is fully determined by its [`FuzzConfig`] — the same seed
//! replays the same cases in the same order, so a CI failure reproduces
//! locally with nothing but the seed.

use crate::diff::{
    check_composed, check_index_array, check_kernel, check_predicate, check_reinspect, Divergence,
};
use crate::gen::{
    brute_force_monotone, gen_array, gen_bindings, gen_check, gen_inner_index, gen_mutation_plan,
    ArrayShape, ALL_SHAPES,
};
use crate::shrink::shrink_array;
use crate::srcgen::{check_frontend, gen_source_case, FUZZ_BUDGET};
use std::fmt;
use subsub_kernels::all_kernels;
use subsub_omprt::ThreadPool;
use subsub_rtcheck::{inspect_monotone, inspect_serial};
use subsub_sparse::Rng64;

/// Knobs for one campaign.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Arrays generated per shape in [`ALL_SHAPES`].
    pub arrays_per_shape: usize,
    /// Number of (check, bindings) pairs generated.
    pub predicates: usize,
    /// Mutated C sources driven through the frontend differential
    /// check ([`crate::srcgen::check_frontend`]): no panics ever,
    /// deterministic span-correct rejection, round-trip identity on
    /// acceptance.
    pub sources: usize,
    /// Whether to sweep the full kernel registry (slow; CI does, unit
    /// tests usually don't).
    pub kernels: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 7,
            arrays_per_shape: 8,
            predicates: 200,
            sources: 160,
            kernels: false,
        }
    }
}

/// What a campaign did and what it found.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The seed that drove it.
    pub seed: u64,
    /// Index arrays checked.
    pub array_cases: usize,
    /// Mutate-then-reinspect plans checked (one per accepted non-empty
    /// array, diffing incremental block summaries against full scans).
    pub reinspect_cases: usize,
    /// Composed (two-level) index-array pairs checked against the
    /// materialized composition.
    pub composed_cases: usize,
    /// Predicate pairs checked.
    pub predicate_cases: usize,
    /// Mutated sources checked through the frontend leg.
    pub source_cases: usize,
    /// Kernel × variant executions checked.
    pub kernel_cases: usize,
    /// Every divergence found, arrays shrunk to minimal reproducers.
    pub divergences: Vec<Divergence>,
}

impl FuzzReport {
    /// True when the campaign found no divergence.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "seed {}: {} arrays, {} reinspect plans, {} composed pairs, {} predicates, \
             {} sources, {} kernel runs -> {} divergence(s)",
            self.seed,
            self.array_cases,
            self.reinspect_cases,
            self.composed_cases,
            self.predicate_cases,
            self.source_cases,
            self.kernel_cases,
            self.divergences.len()
        )?;
        for d in &self.divergences {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// True when either inspector disagrees with the brute-force scan —
/// the shrink predicate for inspector divergences.
fn inspector_diverges(data: &[usize], pool: &ThreadPool) -> bool {
    let expected = brute_force_monotone(data);
    let s = inspect_serial(data);
    let p = inspect_monotone(data, Some(pool));
    (s.nonstrict, s.strict) != expected || (p.nonstrict, p.strict) != expected
}

/// Runs one campaign under `cfg` on `pool`.
pub fn run_campaign(cfg: &FuzzConfig, pool: &ThreadPool) -> FuzzReport {
    let mut rng = Rng64::seed_from_u64(cfg.seed);
    let mut report = FuzzReport {
        seed: cfg.seed,
        array_cases: 0,
        reinspect_cases: 0,
        composed_cases: 0,
        predicate_cases: 0,
        source_cases: 0,
        kernel_cases: 0,
        divergences: Vec::new(),
    };

    // Leg 1: index arrays through ingestion and both inspectors.
    for shape in ALL_SHAPES {
        for _ in 0..cfg.arrays_per_shape {
            let g = gen_array(&mut rng, shape);
            report.array_cases += 1;
            for d in check_index_array(&g, pool) {
                report.divergences.push(match d {
                    Divergence::InspectorMismatch { label, data, .. }
                        if inspector_diverges(&data, pool) =>
                    {
                        let minimal = shrink_array(&data, |c| inspector_diverges(c, pool));
                        let serial = inspect_serial(&minimal);
                        let pooled = inspect_monotone(&minimal, Some(pool));
                        Divergence::InspectorMismatch {
                            label: format!("{label} (shrunk from {} elems)", data.len()),
                            expected: brute_force_monotone(&minimal),
                            data: minimal,
                            serial,
                            pooled,
                        }
                    }
                    other => other,
                });
            }
            // Leg 1b: for arrays ingestion accepts, drive a seeded
            // mutation plan through the incremental re-inspection path
            // and diff it against full-scan ground truth at every step.
            let plan = gen_mutation_plan(&mut rng, &g);
            if !plan.is_empty() {
                report.reinspect_cases += 1;
                report.divergences.extend(check_reinspect(
                    &g.shape.to_string(),
                    &g.data,
                    g.domain,
                    &plan,
                ));
            }
        }
    }

    // Leg 1c: composed (two-level) pairs — the outer drawn from the
    // always-accepted monotone-family shapes, the inner indexing into
    // it — against the materialized composition's ground truth.
    for shape in [
        ArrayShape::StrictRamp,
        ArrayShape::StridedRamp,
        ArrayShape::Plateau,
    ] {
        for _ in 0..cfg.arrays_per_shape {
            let outer = gen_array(&mut rng, shape);
            let inner = gen_inner_index(&mut rng, outer.data.len());
            report.composed_cases += 1;
            report.divergences.extend(check_composed(
                &format!("composed-{shape}"),
                &outer.data,
                outer.domain,
                &inner,
            ));
        }
    }

    // Leg 2: compiled predicate vs checked-i128 reference.
    for _ in 0..cfg.predicates {
        let check = gen_check(&mut rng);
        let bindings = gen_bindings(&mut rng, &check);
        report.predicate_cases += 1;
        report
            .divergences
            .extend(check_predicate(&check, &bindings));
    }

    // Leg 3: mutated C sources through the frontend differential
    // check (panic-freedom, deterministic rejection, round-trip
    // identity). Runs on its own rng stream so changing the other
    // legs' case counts doesn't reshuffle the sources replayed here.
    let mut src_rng = Rng64::seed_from_u64(cfg.seed ^ 0x50_55_52_43_45);
    for i in 0..cfg.sources {
        let case = gen_source_case(&mut src_rng, i, &FUZZ_BUDGET);
        report.source_cases += 1;
        report
            .divergences
            .extend(check_frontend(&case.label, &case.source, &FUZZ_BUDGET));
    }

    // Leg 4: guarded kernel executions vs serial goldens.
    if cfg.kernels {
        for kernel in all_kernels() {
            report.kernel_cases += 1;
            report
                .divergences
                .extend(check_kernel(kernel.as_ref(), cfg.seed));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ThreadPool {
        ThreadPool::new(3)
    }

    #[test]
    fn pinned_seed_campaign_is_clean() {
        let cfg = FuzzConfig {
            seed: 7,
            arrays_per_shape: 3,
            predicates: 60,
            sources: 16,
            kernels: false,
        };
        let report = run_campaign(&cfg, &pool());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.array_cases, 3 * ALL_SHAPES.len());
        assert_eq!(report.predicate_cases, 60);
        assert_eq!(report.source_cases, 16);
        // Every accepted non-empty array gets a reinspect plan: all
        // shapes except empty, near-max and out-of-domain.
        assert_eq!(report.reinspect_cases, 3 * (ALL_SHAPES.len() - 3));
        // Three outer shapes feed the composed leg.
        assert_eq!(report.composed_cases, 3 * 3);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let cfg = FuzzConfig {
            seed: 31337,
            arrays_per_shape: 2,
            predicates: 30,
            sources: 8,
            kernels: false,
        };
        let p = pool();
        let a = run_campaign(&cfg, &p);
        let b = run_campaign(&cfg, &p);
        assert_eq!(a.array_cases, b.array_cases);
        assert_eq!(a.reinspect_cases, b.reinspect_cases);
        assert_eq!(a.composed_cases, b.composed_cases);
        assert_eq!(a.predicate_cases, b.predicate_cases);
        assert_eq!(a.source_cases, b.source_cases);
        assert_eq!(
            a.divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>(),
            b.divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
        );
    }
}
