//! Delta-debugging minimizer for failing index arrays.
//!
//! When the campaign finds an array that diverges, the raw reproducer is
//! often thousands of elements (the parallel inspector only engages at
//! [`PAR_THRESHOLD`](subsub_rtcheck::PAR_THRESHOLD)). Before an entry is
//! recorded — in a report or the regression corpus — we shrink it with a
//! ddmin-style loop: remove chunks, then single elements, then halve the
//! surviving values, keeping every transformation that still fails the
//! caller's predicate. The process is deterministic (no randomness), so
//! the same failure always shrinks to the same minimal form.

/// Shrinks `data` to a locally minimal array that still satisfies
/// `still_fails`. The input itself must fail; the result is guaranteed
/// to fail too.
pub fn shrink_array(data: &[usize], mut still_fails: impl FnMut(&[usize]) -> bool) -> Vec<usize> {
    debug_assert!(still_fails(data), "shrink input must reproduce");
    let mut cur = data.to_vec();

    // Phase 1: ddmin chunk removal. Start at half the array and refine.
    let mut chunk = (cur.len() / 2).max(1);
    while chunk >= 1 {
        let mut removed_any = false;
        let mut start = 0;
        while start < cur.len() && cur.len() > 1 {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && still_fails(&candidate) {
                cur = candidate;
                removed_any = true;
                // Re-test the same offset: the next chunk slid into it.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        chunk = if removed_any { chunk } else { chunk / 2 };
    }

    // Phase 2: halve surviving values toward zero, one at a time. This
    // pulls near-usize::MAX reproducers down to the smallest magnitude
    // that still triggers the failure.
    let mut progress = true;
    while progress {
        progress = false;
        for i in 0..cur.len() {
            while cur[i] > 0 {
                let old = cur[i];
                cur[i] = old / 2;
                if still_fails(&cur) {
                    progress = true;
                } else {
                    cur[i] = old;
                    break;
                }
            }
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_a_planted_violation_to_one_pair() {
        // Monotone ramp with a single inversion buried in the middle.
        let mut data: Vec<usize> = (0..10_000).collect();
        data[5_000] = 10;
        let fails = |d: &[usize]| d.windows(2).any(|w| w[0] > w[1]);
        let min = shrink_array(&data, fails);
        assert!(fails(&min), "shrunk array must still fail");
        assert!(min.len() <= 2, "expected a minimal pair, got {min:?}");
    }

    #[test]
    fn shrinks_values_toward_zero() {
        let data = vec![usize::MAX, usize::MAX - 1];
        let fails = |d: &[usize]| d.windows(2).any(|w| w[0] > w[1]);
        let min = shrink_array(&data, fails);
        assert!(
            min.iter().all(|&v| v <= 1),
            "values should halve down: {min:?}"
        );
    }

    #[test]
    fn preserves_failures_that_need_length() {
        // Failure requires at least 5 elements — shrink must not go below.
        let data: Vec<usize> = (0..100).collect();
        let fails = |d: &[usize]| d.len() >= 5;
        let min = shrink_array(&data, fails);
        assert_eq!(min.len(), 5);
    }

    #[test]
    fn deterministic() {
        let mut data: Vec<usize> = (0..9_000).collect();
        data[123] = 0;
        let fails = |d: &[usize]| d.windows(2).any(|w| w[0] > w[1]);
        let a = shrink_array(&data, fails);
        let b = shrink_array(&data, fails);
        assert_eq!(a, b);
    }
}
