//! The differential checks: each cross-examines one leg of the trust
//! boundary against an independent ground truth.
//!
//! * [`check_index_array`] — inspector verdicts (serial scan and pooled
//!   chunked scan) against the definitional brute-force scan, plus the
//!   ingestion accept/reject expectation.
//! * [`check_predicate`] — the compiled `i64` predicate against the
//!   checked-`i128` reference evaluator, under the conservative-deny
//!   trust rule ([`crate::refeval::compare`]).
//! * [`check_kernel`] — a guarded parallel kernel execution against the
//!   serial golden output, and (when the kernel can be tampered) that a
//!   monotonicity-breaking mutation is *denied*, not admitted.
//! * [`check_reinspect`] — the O(Δ) incremental re-inspection state
//!   (block summaries refreshed by `mutate_range`) against a full-scan
//!   reference after every step of a seeded mutation plan, plus the
//!   tampered-instance leg: a write that bypasses the boundary must be
//!   flagged by `verify()`.
//!
//! Every violation is a structured [`Divergence`]; an empty result is
//! the oracle's "no divergence" verdict.

use crate::gen::{brute_force_block_monotone, brute_force_monotone, GeneratedArray, MutationStep};
use crate::refeval::{compare, ref_eval, PredicateAgreement, RefEvalError};
use std::fmt;
use subsub_kernels::common::close;
use subsub_kernels::Kernel;
use subsub_omprt::{Schedule, ThreadPool};
use subsub_rtcheck::{
    composed_verdict, inspect_block_monotone, inspect_monotone, inspect_serial, Bindings,
    BlockSummaries, CheckExpr, CompiledCheck, EvalError, GuardPath, GuardedExecutor,
    MonotoneVerdict, Provenance, ValidatedIndexArray, BLOCK_LEN,
};
use subsub_sparse::Rng64;

/// One verdict/output divergence found by the oracle. Each variant
/// carries enough to reproduce the failure without the campaign state.
#[derive(Debug, Clone)]
pub enum Divergence {
    /// The serial or pooled inspector disagrees with the brute-force
    /// definition of monotonicity (or with each other).
    InspectorMismatch {
        /// Shape label (or corpus id) of the offending array.
        label: String,
        /// The array, possibly shrunk to a minimal reproducer.
        data: Vec<usize>,
        /// Brute-force ground truth `(nonstrict, strict)`.
        expected: (bool, bool),
        /// The serial inspector's verdict.
        serial: MonotoneVerdict,
        /// The pooled inspector's verdict.
        pooled: MonotoneVerdict,
    },
    /// Ingestion accepted an array it must reject, or vice versa.
    IngestionMismatch {
        /// Shape label of the offending array.
        label: String,
        /// The array.
        data: Vec<usize>,
        /// The domain it was validated against.
        domain: usize,
        /// Whether rejection was expected.
        expect_reject: bool,
        /// What ingestion actually said.
        got: String,
    },
    /// Compiled predicate and reference evaluator disagree in a
    /// direction the trust model forbids.
    PredicateMismatch {
        /// Pretty-printed check.
        check: String,
        /// Pretty-printed bindings (sym=value pairs).
        bindings: String,
        /// The compiled evaluator's result.
        compiled: String,
        /// The reference evaluator's result.
        reference: String,
    },
    /// An admitted parallel kernel run produced output diverging from
    /// the serial golden run.
    KernelChecksumMismatch {
        /// Kernel name.
        kernel: String,
        /// Campaign seed that selected pool size and schedule.
        seed: u64,
        /// Parallel checksum.
        parallel: f64,
        /// Serial golden checksum.
        serial: f64,
    },
    /// The guard admitted the parallel path on a tampered index array
    /// whose required monotonicity is broken.
    KernelWronglyAdmitted {
        /// Kernel name.
        kernel: String,
        /// Campaign seed.
        seed: u64,
    },
    /// A panic escaped the C frontend (lex, parse, diagnostic render or
    /// canonical print) on some input — the one failure hardening must
    /// categorically prevent.
    FrontendPanic {
        /// Mutation label (or corpus id) of the offending source.
        label: String,
    },
    /// The frontend broke one of its differential invariants: replay
    /// determinism, span-correct rejection, or round-trip identity on
    /// an accepted source.
    FrontendMismatch {
        /// Mutation label (or corpus id) of the offending source.
        label: String,
        /// Which invariant broke, and how.
        detail: String,
    },
    /// The block-monotone inspector (ground-truth scan or O(blocks)
    /// summary recombination) disagrees with the definitional per-block
    /// scan for some block size.
    BlockVerdictMismatch {
        /// Shape label (or corpus id) of the offending array.
        label: String,
        /// The block size diffed.
        block: usize,
        /// What diverged.
        detail: String,
    },
    /// The composed (two-level) verdict claimed a monotonicity flavour
    /// the materialized composition `outer[inner[j]]` does not have —
    /// the unsound direction the trust model forbids (conservative
    /// refusals are permitted).
    ComposedMismatch {
        /// Case label (or corpus id).
        label: String,
        /// What diverged.
        detail: String,
    },
    /// The incremental (block-summary) re-inspection state diverged
    /// from the full-scan reference after a `mutate_range` plan, or the
    /// tamper gate failed to flag a write that bypassed the boundary.
    ReinspectMismatch {
        /// Shape label (or corpus id) of the offending array.
        label: String,
        /// Which step of the plan diverged (array length for the
        /// post-plan tamper leg).
        step: usize,
        /// What diverged.
        detail: String,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::InspectorMismatch {
                label,
                data,
                expected,
                serial,
                pooled,
            } => write!(
                f,
                "inspector mismatch [{label}] on {data:?}: brute force (nonstrict, strict) = \
                 {expected:?}, serial = ({}, {}), pooled = ({}, {})",
                serial.nonstrict, serial.strict, pooled.nonstrict, pooled.strict
            ),
            Divergence::IngestionMismatch {
                label,
                data,
                domain,
                expect_reject,
                got,
            } => write!(
                f,
                "ingestion mismatch [{label}] domain {domain}, expect_reject = {expect_reject}, \
                 got {got}; data = {data:?}"
            ),
            Divergence::PredicateMismatch {
                check,
                bindings,
                compiled,
                reference,
            } => write!(
                f,
                "predicate mismatch: `{check}` with [{bindings}]: compiled = {compiled}, \
                 reference = {reference}"
            ),
            Divergence::KernelChecksumMismatch {
                kernel,
                seed,
                parallel,
                serial,
            } => write!(
                f,
                "kernel {kernel} (seed {seed}): parallel checksum {parallel} diverges from \
                 serial golden {serial}"
            ),
            Divergence::KernelWronglyAdmitted { kernel, seed } => write!(
                f,
                "kernel {kernel} (seed {seed}): tampered index array was ADMITTED to the \
                 parallel path"
            ),
            Divergence::FrontendPanic { label } => {
                write!(f, "frontend PANICKED on [{label}]")
            }
            Divergence::FrontendMismatch { label, detail } => {
                write!(f, "frontend mismatch [{label}]: {detail}")
            }
            Divergence::BlockVerdictMismatch {
                label,
                block,
                detail,
            } => write!(f, "block verdict mismatch [{label}] b={block}: {detail}"),
            Divergence::ComposedMismatch { label, detail } => {
                write!(f, "composed verdict mismatch [{label}]: {detail}")
            }
            Divergence::ReinspectMismatch {
                label,
                step,
                detail,
            } => write!(f, "reinspect mismatch [{label}] at step {step}: {detail}"),
        }
    }
}

/// Cross-checks the inspectors against brute force on one array, and
/// ingestion against the array's accept/reject expectation.
pub fn check_index_array(g: &GeneratedArray, pool: &ThreadPool) -> Vec<Divergence> {
    let mut out = Vec::new();
    let expected = brute_force_monotone(&g.data);
    let serial = inspect_serial(&g.data);
    let pooled = inspect_monotone(&g.data, Some(pool));
    let serial_pair = (serial.nonstrict, serial.strict);
    let pooled_pair = (pooled.nonstrict, pooled.strict);
    if serial_pair != expected || pooled_pair != expected {
        out.push(Divergence::InspectorMismatch {
            label: g.shape.to_string(),
            data: g.data.clone(),
            expected,
            serial,
            pooled,
        });
    }
    // A reported violation index must point at a real violating pair.
    for (v, which) in [(&serial, "serial"), (&pooled, "pooled")] {
        if let Some(i) = v.first_violation {
            let real = i > 0 && i < g.data.len() && g.data[i - 1] > g.data[i];
            if !real {
                out.push(Divergence::InspectorMismatch {
                    label: format!("{} ({which} violation index {i} not real)", g.shape),
                    data: g.data.clone(),
                    expected,
                    serial,
                    pooled,
                });
            }
        }
    }
    // Block-monotone inspector against the definitional per-block scan,
    // for a spread of block sizes including the degenerate b = 0 (whole
    // array) and the summary block length.
    for b in [0usize, 1, 3, 8, BLOCK_LEN] {
        let v = inspect_block_monotone(&g.data, b);
        let want = brute_force_block_monotone(&g.data, b);
        if (v.nonstrict, v.strict) != want {
            out.push(Divergence::BlockVerdictMismatch {
                label: g.shape.to_string(),
                block: b,
                detail: format!(
                    "inspect_block_monotone = ({}, {}), brute force = {want:?}",
                    v.nonstrict, v.strict
                ),
            });
        }
    }
    let ingested = ValidatedIndexArray::ingest(
        "fuzz",
        g.data.clone(),
        g.domain,
        Provenance::Generated { seed: 0 },
    );
    let rejected = ingested.is_err();
    if rejected != g.expect_reject {
        out.push(Divergence::IngestionMismatch {
            label: g.shape.to_string(),
            data: g.data.clone(),
            domain: g.domain,
            expect_reject: g.expect_reject,
            got: match &ingested {
                Ok(_) => "accepted".to_string(),
                Err(e) => format!("rejected ({e})"),
            },
        });
    }
    // For accepted arrays the O(blocks) summary recombination must agree
    // with the O(n) ground-truth scan at the aligned block size.
    if let Ok(a) = &ingested {
        if let Some(v) = a.summaries().block_verdict(BLOCK_LEN) {
            let truth = inspect_block_monotone(&g.data, BLOCK_LEN);
            if (v.nonstrict, v.strict) != (truth.nonstrict, truth.strict) {
                out.push(Divergence::BlockVerdictMismatch {
                    label: g.shape.to_string(),
                    block: BLOCK_LEN,
                    detail: format!(
                        "summary recombination = ({}, {}), ground truth = ({}, {})",
                        v.nonstrict, v.strict, truth.nonstrict, truth.strict
                    ),
                });
            }
        }
    }
    out
}

/// Cross-checks the composed (two-level) verdict against the
/// materialized composition `outer[inner[j]]`.
///
/// Ingests both levels (inner validated against the *outer's length*, so
/// the chain is in-domain by construction), computes
/// [`composed_verdict`], and requires the soundness direction: any
/// monotonicity flavour the composed verdict *claims* must hold on the
/// brute-force scan of the materialized array. Conservative refusals
/// (chain provable by materialization but not claimed) are permitted —
/// the composition rule only multiplies per-level verdicts.
pub fn check_composed(
    label: &str,
    outer: &[usize],
    outer_domain: usize,
    inner: &[usize],
) -> Vec<Divergence> {
    let mismatch = |detail: String| Divergence::ComposedMismatch {
        label: label.to_string(),
        detail,
    };
    let outer_arr = match ValidatedIndexArray::ingest(
        "composed-outer",
        outer.to_vec(),
        outer_domain,
        Provenance::Generated { seed: 0 },
    ) {
        Ok(a) => a,
        Err(e) => return vec![mismatch(format!("outer rejected at ingestion: {e}"))],
    };
    let inner_arr = match ValidatedIndexArray::ingest(
        "composed-inner",
        inner.to_vec(),
        outer.len(),
        Provenance::Generated { seed: 0 },
    ) {
        Ok(a) => a,
        Err(e) => return vec![mismatch(format!("inner rejected at ingestion: {e}"))],
    };
    let v = composed_verdict(&outer_arr, &inner_arr);
    let mut out = Vec::new();
    if !v.domain_chained {
        out.push(mismatch(
            "domain_chained false for an inner validated against outer.len()".to_string(),
        ));
    }
    let materialized: Vec<usize> = inner.iter().map(|&j| outer[j]).collect();
    let (nonstrict, strict) = brute_force_monotone(&materialized);
    if v.nonstrict && !nonstrict {
        out.push(mismatch(format!(
            "claimed nonstrict, materialized composition is not: {materialized:?}"
        )));
    }
    if v.strict && !strict {
        out.push(mismatch(format!(
            "claimed strict, materialized composition is not: {materialized:?}"
        )));
    }
    out
}

/// Cross-checks the incremental re-inspection path against a full-scan
/// reference.
///
/// Applies `plan` step by step through `mutate_range` while maintaining
/// an independent mirror `Vec` of what the contents must be (writes the
/// boundary rejects leave the mirror untouched). After every step the
/// incremental state — contents, `summary_verdict()`, `checksum()` —
/// must match the mirror as seen by `inspect_serial` and a from-scratch
/// `BlockSummaries` build, and `verify()` must pass. Finally a write is
/// smuggled past the boundary with `bypass_validation_mut`; `verify()`
/// flagging it is the tamper gate the summaries must never weaken.
pub fn check_reinspect(
    label: &str,
    data: &[usize],
    domain: usize,
    plan: &[MutationStep],
) -> Vec<Divergence> {
    let mismatch = |step: usize, detail: String| Divergence::ReinspectMismatch {
        label: label.to_string(),
        step,
        detail,
    };
    let mut array = match ValidatedIndexArray::ingest(
        "reinspect-fuzz",
        data.to_vec(),
        domain,
        Provenance::Generated { seed: 0 },
    ) {
        Ok(a) => a,
        // Only accepted arrays have a boundary to mutate through; a
        // rejected seed array means the case itself is malformed.
        Err(e) => {
            return vec![mismatch(
                0,
                format!("seed array rejected at ingestion: {e}"),
            )]
        }
    };
    let mut mirror = data.to_vec();

    let mut out = Vec::new();
    for (step, m) in plan.iter().enumerate() {
        if m.at >= mirror.len() {
            out.push(mismatch(
                step,
                format!("mutation index {} out of bounds", m.at),
            ));
            return out;
        }
        let want_ok = m.value < domain;
        match array.mutate_range(m.at..m.at + 1, |w| w[0] = m.value) {
            Ok(()) => {
                if !want_ok {
                    out.push(mismatch(
                        step,
                        format!("out-of-domain write {} accepted at {}", m.value, m.at),
                    ));
                }
                mirror[m.at] = m.value;
            }
            Err(e) => {
                if want_ok {
                    out.push(mismatch(
                        step,
                        format!("in-domain write {} at {} rejected: {e}", m.value, m.at),
                    ));
                }
            }
        }
        // Diff the incremental state against the full-scan reference.
        if array.data() != &mirror[..] {
            out.push(mismatch(step, "contents diverged from mirror".to_string()));
            return out; // everything downstream would re-report this
        }
        let incremental = array.summary_verdict();
        let full = inspect_serial(&mirror);
        if incremental != full {
            out.push(mismatch(
                step,
                format!("summary verdict {incremental:?} != full scan {full:?}"),
            ));
        }
        let fresh = BlockSummaries::build_unchecked(&mirror).checksum();
        if array.checksum() != fresh {
            out.push(mismatch(
                step,
                format!(
                    "incremental checksum {:016x} != full rebuild {fresh:016x}",
                    array.checksum()
                ),
            ));
        }
        if let Err(e) = array.verify() {
            out.push(mismatch(
                step,
                format!("verify() failed on untampered state: {e}"),
            ));
        }
    }

    // Tamper leg: a write that bypasses the boundary leaves the
    // summaries stale; verify() must catch it from the raw bytes.
    if !mirror.is_empty() {
        let at = mirror.len() / 2;
        // Accepted arrays have every value < domain <= usize::MAX, so
        // +1 cannot wrap and is guaranteed to change the contents.
        array.bypass_validation_mut()[at] += 1;
        if array.verify().is_ok() {
            out.push(mismatch(
                plan.len(),
                format!("bypassing write at {at} escaped verify()"),
            ));
        }
    }
    out
}

fn show_compiled(r: &Result<bool, EvalError>) -> String {
    match r {
        Ok(v) => format!("Ok({v})"),
        Err(e) => format!("Err({e})"),
    }
}

fn show_reference(r: &Result<bool, RefEvalError>) -> String {
    match r {
        Ok(v) => format!("Ok({v})"),
        Err(e) => format!("Err({e})"),
    }
}

fn show_bindings(check: &CheckExpr, b: &Bindings) -> String {
    check
        .free_syms()
        .iter()
        .map(|s| match b.get(s) {
            Some(v) => format!("{s}={v}"),
            None => format!("{s}=<unbound>"),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Cross-checks the compiled predicate against the reference evaluator
/// on one (check, bindings) pair.
pub fn check_predicate(check: &CheckExpr, b: &Bindings) -> Vec<Divergence> {
    let compiled = match CompiledCheck::compile(check) {
        Ok(c) => c,
        // Scalar-only restriction: nothing to cross-check.
        Err(_) => return Vec::new(),
    };
    let got = compiled.eval(b);
    let want = ref_eval(check, b);
    if compare(&got, &want) == PredicateAgreement::Diverged {
        vec![Divergence::PredicateMismatch {
            check: check.to_string(),
            bindings: show_bindings(check, b),
            compiled: show_compiled(&got),
            reference: show_reference(&want),
        }]
    } else {
        Vec::new()
    }
}

/// Derives the pool size and schedule a campaign seed exercises for a
/// kernel, so repeated seeds replay identically.
fn execution_params(kernel: &str, seed: u64) -> (usize, Schedule) {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in kernel.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
    let mut rng = Rng64::seed_from_u64(h);
    let threads = rng.gen_usize(2, 4);
    let sched = match rng.gen_usize(0, 2) {
        0 => Schedule::static_default(),
        1 => Schedule::dynamic_default(),
        _ => Schedule::Guided { min_chunk: 2 },
    };
    (threads, sched)
}

/// Runs one kernel differentially under a campaign seed:
///
/// 1. serial golden run;
/// 2. guarded execution (inspection-admitted) of the outer-parallel
///    variant on a seed-derived pool/schedule — its checksum must match
///    the golden within [`close`];
/// 3. if the kernel supports tampering, the tampered instance must be
///    *denied* the parallel path and still complete (serially) with
///    output matching its own serial golden.
pub fn check_kernel(kernel: &dyn Kernel, seed: u64) -> Vec<Divergence> {
    let mut out = Vec::new();
    let name = kernel.name();
    let (threads, sched) = execution_params(name, seed);
    let pool = ThreadPool::new(threads);

    // Leg 1 + 2: admitted parallel output vs serial golden.
    let mut inst = kernel.prepare("test");
    inst.run_serial();
    let golden = inst.checksum();
    inst.reset();
    let executor = GuardedExecutor::new(None).expect("no check always compiles");
    let bindings = inst.runtime_bindings();
    let decision = {
        let arrays = inst.index_arrays();
        executor.decide_recoverable(name, &bindings, &arrays, Some(&pool))
    };
    let versions: Vec<(String, u64)> = inst
        .index_arrays()
        .iter()
        .map(|v| (v.name.to_string(), v.version))
        .collect();
    let versions_ref: Vec<(&str, u64)> = versions.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let cell = std::cell::RefCell::new(inst.as_mut());
    let (checksum, _reason) = executor.execute_admitted(
        name,
        &decision,
        &versions_ref,
        || {
            let mut i = cell.borrow_mut();
            i.run_outer(&pool, sched);
            Ok(i.checksum())
        },
        || cell.borrow_mut().reset(),
        || {
            let mut i = cell.borrow_mut();
            i.run_serial();
            i.checksum()
        },
    );
    if !close(checksum, golden) {
        out.push(Divergence::KernelChecksumMismatch {
            kernel: name.to_string(),
            seed,
            parallel: checksum,
            serial: golden,
        });
    }

    // Leg 3: a tampered index array must be denied, and the degraded
    // run must still match the tampered instance's own serial output.
    let mut tampered = kernel.prepare("test");
    if tampered.tamper_index_arrays() {
        tampered.run_serial();
        let tampered_golden = tampered.checksum();
        tampered.reset();
        let executor = GuardedExecutor::new(None).expect("no check always compiles");
        let decision = {
            let arrays = tampered.index_arrays();
            executor.decide_recoverable(name, &bindings, &arrays, Some(&pool))
        };
        if decision.verdict.path == GuardPath::Parallel {
            if tampered.index_arrays().is_empty() {
                // Self-guarded kernel (e.g. the block-monotone
                // histogram): the guard has nothing to inspect, so the
                // kernel's own dispatch must detect the broken license
                // and produce the serial result.
                tampered.run_outer(&pool, sched);
                if !close(tampered.checksum(), tampered_golden) {
                    out.push(Divergence::KernelChecksumMismatch {
                        kernel: format!("{name} (self-guarded demotion)"),
                        seed,
                        parallel: tampered.checksum(),
                        serial: tampered_golden,
                    });
                }
            } else {
                out.push(Divergence::KernelWronglyAdmitted {
                    kernel: name.to_string(),
                    seed,
                });
            }
        } else {
            tampered.run_serial();
            if !close(tampered.checksum(), tampered_golden) {
                out.push(Divergence::KernelChecksumMismatch {
                    kernel: format!("{name} (tampered serial)"),
                    seed,
                    parallel: tampered.checksum(),
                    serial: tampered_golden,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ArrayShape;
    use subsub_kernels::kernel_by_name;

    fn pool() -> ThreadPool {
        ThreadPool::new(3)
    }

    #[test]
    fn clean_arrays_have_no_divergence() {
        let g = GeneratedArray {
            shape: ArrayShape::StrictRamp,
            data: (0..100).collect(),
            domain: 100,
            expect_reject: false,
        };
        assert!(check_index_array(&g, &pool()).is_empty());
    }

    #[test]
    fn oob_array_must_reject() {
        // expect_reject = false on data that IS out of domain: ingestion
        // rejects it, which the oracle reports as an expectation miss.
        let g = GeneratedArray {
            shape: ArrayShape::OutOfDomain,
            data: vec![0, 1, 99],
            domain: 10,
            expect_reject: false,
        };
        let d = check_index_array(&g, &pool());
        assert!(matches!(d[0], Divergence::IngestionMismatch { .. }));
    }

    #[test]
    fn predicate_overflow_is_not_a_divergence() {
        let c = subsub_rtcheck::parse_check("a*b <= c").unwrap();
        let mut b = Bindings::new();
        b.set_var("a", 3_037_000_500)
            .set_var("b", 3_037_000_500)
            .set_var("c", 0);
        assert!(
            check_predicate(&c, &b).is_empty(),
            "conservative deny is permitted"
        );
    }

    #[test]
    fn amgmk_runs_clean_under_a_seed() {
        let k = kernel_by_name("AMGmk").unwrap();
        let d = check_kernel(k.as_ref(), 7);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn reinspect_plan_with_rollback_is_clean() {
        let data: Vec<usize> = (0..5000).collect();
        let plan = [
            MutationStep { at: 0, value: 4999 }, // break monotonicity
            MutationStep {
                at: 4096,
                value: 9999,
            }, // out of domain: rolls back
            MutationStep { at: 0, value: 0 },    // heal
            MutationStep {
                at: 4999,
                value: 4999,
            }, // rewrite last in place
        ];
        let d = check_reinspect("test-ramp", &data, 5000, &plan);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn reinspect_rejects_malformed_cases_with_context() {
        // Seed array out of domain: no boundary to mutate through.
        let d = check_reinspect("oob-seed", &[0, 99], 10, &[]);
        assert!(
            matches!(&d[0], Divergence::ReinspectMismatch { .. }),
            "{d:?}"
        );
        // Mutation index past the end.
        let d = check_reinspect(
            "oob-index",
            &[0, 1],
            10,
            &[MutationStep { at: 7, value: 1 }],
        );
        assert!(d[0].to_string().contains("out of bounds"), "{d:?}");
    }

    #[test]
    fn reinspect_empty_array_has_no_tamper_leg() {
        assert!(check_reinspect("empty", &[], 10, &[]).is_empty());
    }
}
