//! The committed regression corpus: adversarial cases that once found
//! (or nearly found) a divergence, shrunk to minimal form and replayed
//! on every CI run.
//!
//! The on-disk format is a dependency-free text format. A corpus file
//! holds one or more entries separated by `---` lines; each entry is
//! `key: value` pairs. Lines starting with `#` are comments.
//!
//! ```text
//! kind: array
//! name: duplicate-at-chunk-join
//! shape: duplicate-at-boundary
//! domain: 20000
//! expect: accept
//! data: 0 1 2 2 3
//! ---
//! kind: predicate
//! name: sqrtmax-product-overflow
//! check: a*b <= c
//! bind: a=3037000500 b=3037000500 c=0
//! expect: overflow
//! ---
//! kind: kernel
//! name: amgmk-seed7
//! kernel: AMGmk
//! seed: 7
//! ---
//! kind: reinspect
//! name: heal-at-block-join
//! domain: 100
//! data: 0 1 2 3
//! mutations: 2=0 2=2 1=999
//! ---
//! kind: source
//! name: unclosed-brace
//! source: void f() {\n    x = 1;
//! ```
//!
//! A `source` entry replays C source text through the frontend
//! differential check ([`crate::srcgen::check_frontend`]): no panics,
//! deterministic span-correct diagnostics, round-trip identity on
//! acceptance. The source is stored on one line with `\n` escaping
//! newlines and `\\` escaping backslashes.
//!
//! A `reinspect` entry replays `at=value` writes through `mutate_range`
//! (out-of-domain values exercise the reject-and-rollback path) and
//! diffs the incremental block-summary state against a full scan after
//! every write.
//!
//! Binding names with a `_max` suffix are installed with
//! [`Bindings::set_post_max`], matching the parser's treatment of
//! `X_max` symbols in check sources.

use crate::diff::{check_composed, check_index_array, check_kernel, check_reinspect, Divergence};
use crate::gen::{brute_force_monotone, ArrayShape, GeneratedArray, MutationStep};
use crate::refeval::{compare, ref_eval, PredicateAgreement};
use crate::srcgen::{check_frontend, FUZZ_BUDGET};
use std::fmt;
use std::path::{Path, PathBuf};
use subsub_kernels::kernel_by_name;
use subsub_omprt::ThreadPool;
use subsub_rtcheck::{parse_check, Bindings, CompiledCheck, EvalError};

/// What a predicate entry expects the *compiled* evaluator to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateExpect {
    /// `Ok(true)`.
    True,
    /// `Ok(false)`.
    False,
    /// `Err(EvalError::Overflow)` — the conservative deny.
    Overflow,
    /// `Err(EvalError::Unbound)`.
    Unbound,
}

impl fmt::Display for PredicateExpect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PredicateExpect::True => "true",
            PredicateExpect::False => "false",
            PredicateExpect::Overflow => "overflow",
            PredicateExpect::Unbound => "unbound",
        };
        write!(f, "{s}")
    }
}

/// One value a predicate entry binds, keeping the textual name so the
/// `_max` suffix survives a round-trip.
#[derive(Debug, Clone)]
pub struct Bind {
    /// Binding name as written (`n`, `m_max`, ...).
    pub name: String,
    /// The bound value.
    pub value: i64,
}

/// One replayable corpus entry.
#[derive(Debug, Clone)]
pub enum CorpusEntry {
    /// An index array replayed through ingestion and both inspectors.
    Array {
        /// Entry id used in failure messages.
        name: String,
        /// Generator shape it regression-tests.
        shape: ArrayShape,
        /// Exclusive domain bound for ingestion.
        domain: usize,
        /// Whether ingestion must reject it.
        expect_reject: bool,
        /// The subscript values.
        data: Vec<usize>,
    },
    /// A (check, bindings) pair replayed through both evaluators.
    Predicate {
        /// Entry id.
        name: String,
        /// Check source, re-parsed at replay time.
        check: String,
        /// Bindings to install.
        binds: Vec<Bind>,
        /// Expected compiled-evaluator outcome.
        expect: PredicateExpect,
    },
    /// A kernel × campaign-seed pair replayed through [`check_kernel`].
    Kernel {
        /// Entry id.
        name: String,
        /// Registry name of the kernel.
        kernel: String,
        /// Campaign seed (selects pool size and schedule).
        seed: u64,
    },
    /// A mutate-then-reinspect plan replayed through
    /// [`check_reinspect`]: incremental block-summary state diffed
    /// against the full-scan reference after every write, plus the
    /// bypassing-writer tamper leg.
    Reinspect {
        /// Entry id.
        name: String,
        /// Exclusive domain bound for ingestion and mutation.
        domain: usize,
        /// The seed array (ingestion must accept it).
        data: Vec<usize>,
        /// Writes applied through `mutate_range`, in order.
        plan: Vec<MutationStep>,
    },
    /// A C source replayed through the frontend differential check
    /// ([`crate::srcgen::check_frontend`]).
    Source {
        /// Entry id.
        name: String,
        /// The source text (unescaped).
        source: String,
    },
    /// A two-level pair replayed through [`check_composed`]: the
    /// composed verdict over `outer[inner[j]]` must never claim a
    /// monotonicity flavour the materialized composition lacks.
    Composed {
        /// Entry id.
        name: String,
        /// Exclusive domain bound for the outer array.
        domain: usize,
        /// The outer (value-providing) array.
        outer: Vec<usize>,
        /// The inner array; validated against `outer.len()`.
        inner: Vec<usize>,
    },
}

impl CorpusEntry {
    /// The entry's id.
    pub fn name(&self) -> &str {
        match self {
            CorpusEntry::Array { name, .. }
            | CorpusEntry::Predicate { name, .. }
            | CorpusEntry::Kernel { name, .. }
            | CorpusEntry::Reinspect { name, .. }
            | CorpusEntry::Source { name, .. }
            | CorpusEntry::Composed { name, .. } => name,
        }
    }
}

/// Why a corpus file failed to load.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem error reading the file or directory.
    Io(String),
    /// Structural problem in an entry.
    Malformed {
        /// File the entry came from.
        file: PathBuf,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "corpus io error: {e}"),
            CorpusError::Malformed { file, detail } => {
                write!(f, "malformed corpus entry in {}: {detail}", file.display())
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// Encodes source text onto one corpus line: `\` → `\\`, newline → `\n`.
pub fn escape_source(src: &str) -> String {
    src.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Inverse of [`escape_source`]; rejects dangling or unknown escapes so
/// a corrupted entry fails loudly instead of replaying the wrong bytes.
pub fn unescape_source(line: &str) -> Result<String, String> {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(other) => return Err(format!("unknown escape `\\{other}`")),
            None => return Err("dangling `\\` at end of source".to_string()),
        }
    }
    Ok(out)
}

fn parse_entry(block: &str, file: &Path) -> Result<Option<CorpusEntry>, CorpusError> {
    let mut kind = None;
    let mut fields: Vec<(String, String)> = Vec::new();
    for line in block.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line.split_once(':').ok_or_else(|| CorpusError::Malformed {
            file: file.to_path_buf(),
            detail: format!("line without `key: value` form: `{line}`"),
        })?;
        let (key, value) = (key.trim().to_string(), value.trim().to_string());
        if key == "kind" {
            kind = Some(value);
        } else {
            fields.push((key, value));
        }
    }
    let Some(kind) = kind else {
        // A block of only comments/blank lines (e.g. a trailing `---`).
        if fields.is_empty() {
            return Ok(None);
        }
        return Err(CorpusError::Malformed {
            file: file.to_path_buf(),
            detail: "entry missing `kind:`".to_string(),
        });
    };
    let get = |key: &str| -> Result<String, CorpusError> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| CorpusError::Malformed {
                file: file.to_path_buf(),
                detail: format!("{kind} entry missing `{key}:`"),
            })
    };
    let malformed = |detail: String| CorpusError::Malformed {
        file: file.to_path_buf(),
        detail,
    };
    match kind.as_str() {
        "array" => {
            let shape_s = get("shape")?;
            let shape = ArrayShape::parse(&shape_s)
                .ok_or_else(|| malformed(format!("unknown shape `{shape_s}`")))?;
            let domain = get("domain")?
                .parse::<usize>()
                .map_err(|e| malformed(format!("bad domain: {e}")))?;
            let expect_s = get("expect")?;
            let expect_reject = match expect_s.as_str() {
                "accept" => false,
                "reject" => true,
                other => {
                    return Err(malformed(format!(
                        "array expect must be accept|reject, got `{other}`"
                    )))
                }
            };
            let data_s = get("data").unwrap_or_default();
            let mut data = Vec::new();
            for tok in data_s.split_whitespace() {
                data.push(
                    tok.parse::<usize>()
                        .map_err(|e| malformed(format!("bad data value `{tok}`: {e}")))?,
                );
            }
            Ok(Some(CorpusEntry::Array {
                name: get("name")?,
                shape,
                domain,
                expect_reject,
                data,
            }))
        }
        "predicate" => {
            let mut binds = Vec::new();
            for tok in get("bind").unwrap_or_default().split_whitespace() {
                let (name, value) = tok
                    .split_once('=')
                    .ok_or_else(|| malformed(format!("bad bind `{tok}` (want name=value)")))?;
                binds.push(Bind {
                    name: name.to_string(),
                    value: value
                        .parse::<i64>()
                        .map_err(|e| malformed(format!("bad bind value `{tok}`: {e}")))?,
                });
            }
            let expect_s = get("expect")?;
            let expect = match expect_s.as_str() {
                "true" => PredicateExpect::True,
                "false" => PredicateExpect::False,
                "overflow" => PredicateExpect::Overflow,
                "unbound" => PredicateExpect::Unbound,
                other => {
                    return Err(malformed(format!(
                        "predicate expect must be true|false|overflow|unbound, got `{other}`"
                    )))
                }
            };
            Ok(Some(CorpusEntry::Predicate {
                name: get("name")?,
                check: get("check")?,
                binds,
                expect,
            }))
        }
        "kernel" => Ok(Some(CorpusEntry::Kernel {
            name: get("name")?,
            kernel: get("kernel")?,
            seed: get("seed")?
                .parse::<u64>()
                .map_err(|e| malformed(format!("bad seed: {e}")))?,
        })),
        "reinspect" => {
            let domain = get("domain")?
                .parse::<usize>()
                .map_err(|e| malformed(format!("bad domain: {e}")))?;
            let mut data = Vec::new();
            for tok in get("data").unwrap_or_default().split_whitespace() {
                data.push(
                    tok.parse::<usize>()
                        .map_err(|e| malformed(format!("bad data value `{tok}`: {e}")))?,
                );
            }
            let mut plan = Vec::new();
            for tok in get("mutations")?.split_whitespace() {
                let (at, value) = tok
                    .split_once('=')
                    .ok_or_else(|| malformed(format!("bad mutation `{tok}` (want at=value)")))?;
                plan.push(MutationStep {
                    at: at
                        .parse::<usize>()
                        .map_err(|e| malformed(format!("bad mutation index `{tok}`: {e}")))?,
                    value: value
                        .parse::<usize>()
                        .map_err(|e| malformed(format!("bad mutation value `{tok}`: {e}")))?,
                });
            }
            Ok(Some(CorpusEntry::Reinspect {
                name: get("name")?,
                domain,
                data,
                plan,
            }))
        }
        "source" => Ok(Some(CorpusEntry::Source {
            name: get("name")?,
            source: unescape_source(&get("source")?)
                .map_err(|e| malformed(format!("bad source escape: {e}")))?,
        })),
        "composed" => {
            let parse_list = |key: &str| -> Result<Vec<usize>, CorpusError> {
                let mut out = Vec::new();
                for tok in get(key)?.split_whitespace() {
                    out.push(
                        tok.parse::<usize>()
                            .map_err(|e| malformed(format!("bad {key} value `{tok}`: {e}")))?,
                    );
                }
                Ok(out)
            };
            Ok(Some(CorpusEntry::Composed {
                name: get("name")?,
                domain: get("domain")?
                    .parse::<usize>()
                    .map_err(|e| malformed(format!("bad domain: {e}")))?,
                outer: parse_list("outer")?,
                inner: parse_list("inner")?,
            }))
        }
        other => Err(malformed(format!("unknown kind `{other}`"))),
    }
}

/// Parses every entry in one corpus file's contents.
pub fn parse_corpus(text: &str, file: &Path) -> Result<Vec<CorpusEntry>, CorpusError> {
    let mut out = Vec::new();
    for block in text.split("\n---") {
        if let Some(entry) = parse_entry(block, file)? {
            out.push(entry);
        }
    }
    Ok(out)
}

/// Loads every `.corpus` file in `dir` (sorted by name, so replay order
/// is stable across platforms).
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, CorpusError> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| CorpusError::Io(format!("{}: {e}", dir.display())))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "corpus"))
        .collect();
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let text = std::fs::read_to_string(&f)
            .map_err(|e| CorpusError::Io(format!("{}: {e}", f.display())))?;
        out.extend(parse_corpus(&text, &f)?);
    }
    Ok(out)
}

fn describe_compiled(r: &Result<bool, EvalError>) -> String {
    match r {
        Ok(v) => format!("Ok({v})"),
        Err(e) => format!("Err({e})"),
    }
}

/// Replays one entry; returns human-readable failure descriptions
/// (empty = clean).
pub fn replay(entry: &CorpusEntry, pool: &ThreadPool) -> Vec<String> {
    match entry {
        CorpusEntry::Array {
            name,
            shape,
            domain,
            expect_reject,
            data,
        } => {
            let g = GeneratedArray {
                shape: *shape,
                data: data.clone(),
                domain: *domain,
                expect_reject: *expect_reject,
            };
            let mut out: Vec<String> = check_index_array(&g, pool)
                .into_iter()
                .map(|d: Divergence| format!("[{name}] {d}"))
                .collect();
            // Belt and braces: corpus data must still match its shape's
            // advertised monotonicity class where one is implied.
            let (nonstrict, _) = brute_force_monotone(data);
            if matches!(shape, ArrayShape::Sawtooth) && nonstrict && data.len() > 1 {
                out.push(format!(
                    "[{name}] sawtooth entry degenerated to a monotone array"
                ));
            }
            out
        }
        CorpusEntry::Predicate {
            name,
            check,
            binds,
            expect,
        } => {
            let parsed = match parse_check(check) {
                Ok(c) => c,
                Err(e) => return vec![format!("[{name}] check failed to parse: {e}")],
            };
            let compiled = match CompiledCheck::compile(&parsed) {
                Ok(c) => c,
                Err(e) => return vec![format!("[{name}] check failed to compile: {e}")],
            };
            let mut b = Bindings::new();
            for bind in binds {
                match bind.name.strip_suffix("_max") {
                    Some(base) => b.set_post_max(base, bind.value),
                    None => b.set_var(&bind.name, bind.value),
                };
            }
            let got = compiled.eval(&b);
            let matches_expect = matches!(
                (&got, expect),
                (Ok(true), PredicateExpect::True)
                    | (Ok(false), PredicateExpect::False)
                    | (Err(EvalError::Overflow { .. }), PredicateExpect::Overflow)
                    | (Err(EvalError::Unbound { .. }), PredicateExpect::Unbound)
            );
            let mut out = Vec::new();
            if !matches_expect {
                out.push(format!(
                    "[{name}] compiled evaluator returned {}, corpus expects {expect}",
                    describe_compiled(&got)
                ));
            }
            let reference = ref_eval(&parsed, &b);
            if compare(&got, &reference) == PredicateAgreement::Diverged {
                out.push(format!(
                    "[{name}] compiled {} diverges from reference {:?}",
                    describe_compiled(&got),
                    reference
                ));
            }
            out
        }
        CorpusEntry::Kernel { name, kernel, seed } => match kernel_by_name(kernel) {
            Some(k) => check_kernel(k.as_ref(), *seed)
                .into_iter()
                .map(|d| format!("[{name}] {d}"))
                .collect(),
            None => vec![format!("[{name}] unknown kernel `{kernel}`")],
        },
        CorpusEntry::Reinspect {
            name,
            domain,
            data,
            plan,
        } => check_reinspect(name, data, *domain, plan)
            .into_iter()
            .map(|d| format!("[{name}] {d}"))
            .collect(),
        CorpusEntry::Source { name, source } => check_frontend(name, source, &FUZZ_BUDGET)
            .into_iter()
            .map(|d| format!("[{name}] {d}"))
            .collect(),
        CorpusEntry::Composed {
            name,
            domain,
            outer,
            inner,
        } => check_composed(name, outer, *domain, inner)
            .into_iter()
            .map(|d| format!("[{name}] {d}"))
            .collect(),
    }
}

/// Replays every entry; returns all failures.
pub fn replay_all(entries: &[CorpusEntry], pool: &ThreadPool) -> Vec<String> {
    entries.iter().flat_map(|e| replay(e, pool)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(text: &str) -> CorpusEntry {
        let mut v = parse_corpus(text, Path::new("test.corpus")).expect("parses");
        assert_eq!(v.len(), 1);
        v.remove(0)
    }

    #[test]
    fn parses_all_three_kinds() {
        let entries = parse_corpus(
            "# comment\nkind: array\nname: a\nshape: plateau\ndomain: 10\nexpect: accept\n\
             data: 3 3 3\n---\nkind: predicate\nname: p\ncheck: n <= m\nbind: n=1 m=2\n\
             expect: true\n---\nkind: kernel\nname: k\nkernel: AMGmk\nseed: 7\n",
            Path::new("test.corpus"),
        )
        .expect("parses");
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].name(), "a");
        assert!(matches!(entries[1], CorpusEntry::Predicate { .. }));
        assert!(matches!(entries[2], CorpusEntry::Kernel { .. }));
    }

    #[test]
    fn malformed_entries_are_rejected_with_context() {
        for bad in [
            "kind: array\nname: a\nshape: nosuch\ndomain: 1\nexpect: accept\ndata:\n",
            "kind: frobnicate\nname: x\n",
            "name: missing-kind\n",
            "kind: predicate\nname: p\ncheck: n <= m\nbind: n+1\nexpect: true\n",
        ] {
            assert!(
                matches!(
                    parse_corpus(bad, Path::new("t.corpus")),
                    Err(CorpusError::Malformed { .. })
                ),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn array_replay_catches_expectation_flips() {
        let entry = parse_one(
            "kind: array\nname: oob\nshape: out-of-domain\ndomain: 4\nexpect: accept\ndata: 9\n",
        );
        let pool = ThreadPool::new(2);
        let failures = replay(&entry, &pool);
        assert!(!failures.is_empty());
        assert!(failures[0].contains("[oob]"), "{failures:?}");
    }

    #[test]
    fn predicate_replay_checks_both_expectation_and_reference() {
        let pool = ThreadPool::new(2);
        let clean = parse_one(
            "kind: predicate\nname: p\ncheck: a*b <= c\nbind: a=3037000500 b=3037000500 c=0\n\
             expect: overflow\n",
        );
        assert!(replay(&clean, &pool).is_empty());
        let flipped = parse_one(
            "kind: predicate\nname: p2\ncheck: a*b <= c\nbind: a=3037000500 b=3037000500 c=0\n\
             expect: true\n",
        );
        assert!(!replay(&flipped, &pool).is_empty());
    }

    #[test]
    fn reinspect_entries_parse_and_replay() {
        let pool = ThreadPool::new(2);
        let clean = parse_one(
            "kind: reinspect\nname: r\ndomain: 10\ndata: 0 1 2 3\nmutations: 2=0 2=2 1=999\n",
        );
        assert!(matches!(clean, CorpusEntry::Reinspect { .. }));
        assert!(replay(&clean, &pool).is_empty());
        // A seed array ingestion rejects is a malformed case, not a
        // silent skip.
        let bad = parse_one("kind: reinspect\nname: r2\ndomain: 4\ndata: 0 9\nmutations: 0=1\n");
        let failures = replay(&bad, &pool);
        assert!(!failures.is_empty());
        assert!(failures[0].contains("[r2]"), "{failures:?}");
    }

    #[test]
    fn malformed_reinspect_mutations_are_rejected() {
        for bad in [
            "kind: reinspect\nname: r\ndomain: 10\ndata: 0 1\nmutations: 1+2\n",
            "kind: reinspect\nname: r\ndomain: 10\ndata: 0 1\nmutations: x=2\n",
            "kind: reinspect\nname: r\ndomain: 10\ndata: 0 1\n",
        ] {
            assert!(
                matches!(
                    parse_corpus(bad, Path::new("t.corpus")),
                    Err(CorpusError::Malformed { .. })
                ),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn source_entries_unescape_and_replay() {
        let pool = ThreadPool::new(2);
        // A malformed source replays clean: typed rejection IS the
        // expected behaviour, only panics/instability are failures.
        let entry = parse_one("kind: source\nname: s\nsource: void f() {\\n    x = 1;\n");
        match &entry {
            CorpusEntry::Source { source, .. } => {
                assert_eq!(source, "void f() {\n    x = 1;");
            }
            other => panic!("wrong kind: {other:?}"),
        }
        assert!(replay(&entry, &pool).is_empty());
        // A well-formed source exercises the round-trip identity leg.
        let ok = parse_one("kind: source\nname: ok\nsource: void f() { x = 1; }\n");
        assert!(replay(&ok, &pool).is_empty());
    }

    #[test]
    fn source_escape_round_trips() {
        let src = "a\\b\nc\\\\d\n";
        assert_eq!(unescape_source(&escape_source(src)).unwrap(), src);
        assert!(unescape_source("bad \\q escape").is_err());
        assert!(unescape_source("dangling \\").is_err());
    }

    #[test]
    fn malformed_source_entries_are_rejected() {
        for bad in [
            "kind: source\nname: s\n",
            "kind: source\nname: s\nsource: x \\q y\n",
        ] {
            assert!(
                matches!(
                    parse_corpus(bad, Path::new("t.corpus")),
                    Err(CorpusError::Malformed { .. })
                ),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn composed_entries_parse_and_replay() {
        let pool = ThreadPool::new(2);
        let clean =
            parse_one("kind: composed\nname: c\ndomain: 10\nouter: 0 2 4 6\ninner: 0 1 2 3\n");
        assert!(matches!(clean, CorpusEntry::Composed { .. }));
        assert!(replay(&clean, &pool).is_empty());
        // An inner entry past the outer's length breaks the chain at
        // ingestion; the replay reports it instead of indexing OOB.
        let bad = parse_one("kind: composed\nname: c2\ndomain: 10\nouter: 0 2\ninner: 5\n");
        let failures = replay(&bad, &pool);
        assert!(!failures.is_empty());
        assert!(failures[0].contains("[c2]"), "{failures:?}");
    }

    #[test]
    fn post_max_binds_round_trip() {
        let pool = ThreadPool::new(2);
        let entry = parse_one(
            "kind: predicate\nname: pm\ncheck: n - 1 <= m_max\nbind: n=10 m_max=9\nexpect: true\n",
        );
        assert!(replay(&entry, &pool).is_empty());
    }
}
