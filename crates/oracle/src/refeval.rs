//! The slow, trusted reference evaluator for runtime checks.
//!
//! [`CompiledCheck`](subsub_rtcheck::CompiledCheck) flattens a check into
//! slot-resolved `i64` difference form for speed. This module evaluates
//! the *same canonical semantics* along an independent path: it interprets
//! the symbolic [`Expr`](subsub_symbolic::Expr) terms directly (no slot
//! compilation) in checked `i128` arithmetic — wide enough that no
//! realistic predicate over `i64` bindings can overflow it, with no
//! big-integer machinery. Any disagreement between the two is a bug in
//! one of them; [`compare`] encodes which disagreements the trust model
//! permits (the compiled path may *conservatively deny* on `i64`
//! overflow, never the reverse).

use std::fmt;
use subsub_rtcheck::{Bindings, CheckExpr, EvalError};
use subsub_symbolic::Atom;

/// Why the reference evaluation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefEvalError {
    /// A symbol the check needs has no value in the bindings.
    Unbound {
        /// Display form of the missing symbol.
        symbol: String,
    },
    /// The difference overflowed even `i128` (requires degree ≥ 2 terms
    /// with enormous coefficients; generated predicates cannot reach it).
    Overflow,
    /// The check contains an uninterpreted array read, which scalar
    /// evaluation cannot resolve.
    ArrayRead {
        /// Name of the array being read.
        array: String,
    },
}

impl fmt::Display for RefEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefEvalError::Unbound { symbol } => write!(f, "unbound symbol {symbol}"),
            RefEvalError::Overflow => write!(f, "i128 overflow in reference evaluation"),
            RefEvalError::ArrayRead { array } => write!(f, "array read {array} in scalar check"),
        }
    }
}

/// Evaluates `check` against `b` in checked `i128` arithmetic over the
/// canonical difference forms.
pub fn ref_eval(check: &CheckExpr, b: &Bindings) -> Result<bool, RefEvalError> {
    for canon in check.canonical() {
        let mut diff: i128 = 0;
        for t in canon.diff.terms() {
            let mut v: i128 = i128::from(t.coeff);
            for a in &t.atoms {
                let val = match a {
                    Atom::Sym(s) => b.get(s).ok_or_else(|| RefEvalError::Unbound {
                        symbol: s.to_string(),
                    })?,
                    Atom::Read { array, .. } => {
                        return Err(RefEvalError::ArrayRead {
                            array: array.to_string(),
                        })
                    }
                };
                v = v
                    .checked_mul(i128::from(val))
                    .ok_or(RefEvalError::Overflow)?;
            }
            diff = diff.checked_add(v).ok_or(RefEvalError::Overflow)?;
        }
        let holds = if canon.is_le {
            diff <= 0
        } else if canon.eq {
            diff == 0
        } else {
            diff != 0
        };
        if !holds {
            return Ok(false);
        }
    }
    Ok(true)
}

/// How a compiled-vs-reference pair relates under the trust model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateAgreement {
    /// Both evaluated and agreed.
    Agree,
    /// The compiled path denied on `i64` overflow while the reference
    /// evaluated fine — the permitted conservative direction.
    ConservativeDeny,
    /// Both failed to evaluate (unbound symbol, etc.).
    BothErr,
    /// The two paths disagree in a way the trust model forbids.
    Diverged,
}

/// Classifies a compiled result against the reference result.
///
/// Any compiled `Err` is a guard-level *deny*, which is always safe, so
/// a compiled error against a reference verdict is the permitted
/// conservative direction — `i64` overflow is the designed case, and an
/// unbound symbol the reference never needed (it short-circuits on an
/// earlier false conjunct; the compiled path resolves every binding up
/// front) is the same deny. Forbidden: differing `Ok` verdicts (a plain
/// evaluation bug in one path), and the compiled path *succeeding* where
/// the reference cannot evaluate — `i128` covers everything `i64` can
/// compute, so that direction means the compiled path read something the
/// sound evaluator would refuse, exactly how a wrong admit starts.
pub fn compare(
    compiled: &Result<bool, EvalError>,
    reference: &Result<bool, RefEvalError>,
) -> PredicateAgreement {
    match (compiled, reference) {
        (Ok(a), Ok(b)) => {
            if a == b {
                PredicateAgreement::Agree
            } else {
                PredicateAgreement::Diverged
            }
        }
        (Err(_), Ok(_)) => PredicateAgreement::ConservativeDeny,
        (Err(_), Err(_)) => PredicateAgreement::BothErr,
        (Ok(_), Err(_)) => PredicateAgreement::Diverged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsub_rtcheck::{parse_check, CompiledCheck};

    fn eval_both(src: &str, b: &Bindings) -> (Result<bool, EvalError>, Result<bool, RefEvalError>) {
        let c = parse_check(src).expect("test check parses");
        let compiled = CompiledCheck::compile(&c).expect("scalar check compiles");
        (compiled.eval(b), ref_eval(&c, b))
    }

    #[test]
    fn simple_checks_agree() {
        let mut b = Bindings::new();
        b.set_var("n", 10).set_post_max("m", 9);
        for (src, want) in [
            ("n - 1 <= m_max", true),
            ("n <= m_max", false),
            ("n == 10", true),
            ("n != 10", false),
            ("n - 1 <= m_max && n > 0", true),
        ] {
            let (c, r) = eval_both(src, &b);
            assert_eq!(r, Ok(want), "{src}");
            assert_eq!(compare(&c, &r), PredicateAgreement::Agree, "{src}");
        }
    }

    #[test]
    fn i64_overflow_is_conservative_deny() {
        let mut b = Bindings::new();
        b.set_var("a", 3_037_000_500)
            .set_var("b", 3_037_000_500)
            .set_var("c", 0);
        let (c, r) = eval_both("a*b <= c", &b);
        assert!(matches!(c, Err(EvalError::Overflow { .. })));
        // The reference evaluates exactly: 3037000500² > 0 is false.
        assert_eq!(r, Ok(false));
        assert_eq!(compare(&c, &r), PredicateAgreement::ConservativeDeny);
    }

    #[test]
    fn unbound_symbols_agree() {
        let b = Bindings::new();
        let (c, r) = eval_both("n <= m", &b);
        assert!(matches!(c, Err(EvalError::Unbound { .. })));
        assert!(matches!(r, Err(RefEvalError::Unbound { .. })));
        assert_eq!(compare(&c, &r), PredicateAgreement::BothErr);
    }

    #[test]
    fn short_circuit_unbound_is_conservative_deny() {
        // The reference decides on the bound false conjunct; the compiled
        // path resolves every binding up front and denies on the unbound
        // one. Deny is the permitted direction.
        let mut b = Bindings::new();
        b.set_var("a", 5);
        // Canonical order sorts `a - 1` before `m - 3`, so the reference
        // sees the bound false conjunct first.
        let (c, r) = eval_both("a <= 1 && m <= 3", &b);
        assert!(matches!(c, Err(EvalError::Unbound { .. })));
        assert_eq!(r, Ok(false));
        assert_eq!(compare(&c, &r), PredicateAgreement::ConservativeDeny);
    }

    #[test]
    fn forbidden_directions_are_diverged() {
        assert_eq!(compare(&Ok(true), &Ok(false)), PredicateAgreement::Diverged);
        assert_eq!(
            compare(&Ok(true), &Err(RefEvalError::Overflow)),
            PredicateAgreement::Diverged,
            "compiled success where the reference overflows could wrongly admit"
        );
        assert_eq!(
            compare(
                &Ok(false),
                &Err(RefEvalError::Unbound { symbol: "n".into() })
            ),
            PredicateAgreement::Diverged
        );
    }

    #[test]
    fn i64_edge_bindings_evaluate_exactly() {
        let mut b = Bindings::new();
        b.set_var("n", i64::MAX).set_var("m", i64::MIN + 1);
        // n - m = MAX - (MIN+1) = 2^64 - 2: overflows i64 but not i128.
        let (c, r) = eval_both("n <= m", &b);
        assert_eq!(r, Ok(false));
        match compare(&c, &r) {
            PredicateAgreement::Agree | PredicateAgreement::ConservativeDeny => {}
            other => panic!("forbidden relation: {other:?}"),
        }
    }
}
