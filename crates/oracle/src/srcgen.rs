//! Seeded source mutators and the frontend differential check.
//!
//! The C frontend sits on the service's trust boundary: clients hand it
//! arbitrary bytes as `AnalyzeSource`. This leg cross-examines the
//! hardened frontend ([`subsub_cfront::diag`]) against three invariants
//! no mutation may break:
//!
//! 1. **No panic, ever.** Lexing, parsing and diagnostic rendering run
//!    under `catch_unwind`; any escape is a [`Divergence::FrontendPanic`].
//! 2. **Deterministic, span-correct rejection.** The same bytes must
//!    produce byte-identical diagnostics on replay, anchored to a span
//!    inside the input, with a 1-based line — budget violations
//!    included.
//! 3. **Round-trip identity on accepted inputs.** `parse → canonicalize
//!    → print → reparse` must reproduce a structurally identical AST
//!    (diffed by [`subsub_cfront::diff_programs`]).
//!
//! Mutations start from the real kernel registry sources and cover
//! truncation, token splices, span deletion/duplication, raw byte soup,
//! nesting pushed across the depth budget, and sources sized exactly at
//! the input-byte budget edge.

use crate::diff::Divergence;
use std::panic::{catch_unwind, AssertUnwindSafe};
use subsub_cfront::printer::print_program;
use subsub_cfront::{
    canonicalize, diff_programs, parse_program_with, Diagnostic, ParseBudget, Program,
};
use subsub_kernels::all_kernels;
use subsub_sparse::Rng64;

/// The tightened budget the source leg fuzzes against. Small enough
/// that budget-edge mutations are cheap to generate, large enough that
/// every unmutated kernel source is accepted.
pub const FUZZ_BUDGET: ParseBudget = ParseBudget {
    max_input_bytes: 1 << 16,
    max_tokens: 1 << 14,
    max_depth: 48,
    max_nodes: 1 << 15,
};

/// One generated frontend case: a label naming the mutation for
/// divergence reports, and the (possibly hostile) source text.
#[derive(Debug, Clone)]
pub struct SourceCase {
    /// Mutation label, e.g. `"truncate:AMGmk@312"`.
    pub label: String,
    /// The source bytes handed to the frontend.
    pub source: String,
}

/// Largest char boundary `<= at` in `s`.
fn clamp_boundary(s: &str, at: usize) -> usize {
    let mut at = at.min(s.len());
    while at > 0 && !s.is_char_boundary(at) {
        at -= 1;
    }
    at
}

/// Token fragments spliced into otherwise-valid sources: unbalanced
/// delimiters, dangling keywords, literals at the numeric edges, and
/// lexer bait (`/*`, stray quotes, non-ASCII).
const SPLICES: &[&str] = &[
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    "else",
    "for (",
    "while",
    "return",
    "++",
    "--",
    "int",
    "/*",
    "*/",
    "1e999",
    "9223372036854775808",
    "0x1",
    "\"",
    "'",
    "\u{00df}",
    "#pragma",
];

/// Bytes the soup generator draws from: printable C, plus a multi-byte
/// char and characters no token starts with.
const SOUP: &[&str] = &[
    "a", "z", "0", "9", "(", ")", "{", "}", "[", "]", ";", "+", "-", "*", "/", "%", "<", ">", "=",
    "!", "&", "|", ",", ".", " ", "\n", "\t", "$", "@", "`", "\\", "\u{00e9}", "\u{4e16}", "\"",
];

fn kernel_sources() -> Vec<(&'static str, &'static str)> {
    all_kernels()
        .iter()
        .map(|k| (k.name(), k.source()))
        .collect()
}

/// Deterministically generates the `idx`-th source case of a campaign
/// stream. Cycles through eight mutation families so every campaign,
/// however small, touches each family at least once per eight cases.
pub fn gen_source_case(rng: &mut Rng64, idx: usize, budget: &ParseBudget) -> SourceCase {
    let kernels = kernel_sources();
    let (name, base) = kernels[rng.gen_usize(0, kernels.len() - 1)];
    match idx % 8 {
        // Identity: the round-trip leg over real accepted sources.
        0 => SourceCase {
            label: format!("identity:{name}"),
            source: base.to_string(),
        },
        // Truncation at an arbitrary byte (clamped to a char boundary).
        1 => {
            let at = clamp_boundary(base, rng.gen_usize(0, base.len()));
            SourceCase {
                label: format!("truncate:{name}@{at}"),
                source: base[..at].to_string(),
            }
        }
        // Token splice: drop a hostile fragment mid-source.
        2 => {
            let frag = SPLICES[rng.gen_usize(0, SPLICES.len() - 1)];
            let at = clamp_boundary(base, rng.gen_usize(0, base.len()));
            SourceCase {
                label: format!("splice:{name}@{at}+{frag:?}"),
                source: format!("{}{}{}", &base[..at], frag, &base[at..]),
            }
        }
        // Delete a span.
        3 => {
            let a = clamp_boundary(base, rng.gen_usize(0, base.len()));
            let b = clamp_boundary(base, rng.gen_usize(a, base.len()));
            SourceCase {
                label: format!("delete:{name}@{a}..{b}"),
                source: format!("{}{}", &base[..a], &base[b..]),
            }
        }
        // Duplicate a span in place.
        4 => {
            let a = clamp_boundary(base, rng.gen_usize(0, base.len()));
            let b = clamp_boundary(base, rng.gen_usize(a, base.len().min(a + 64)));
            SourceCase {
                label: format!("dup:{name}@{a}..{b}"),
                source: format!("{}{}{}", &base[..b], &base[a..b], &base[b..]),
            }
        }
        // Raw byte soup.
        5 => {
            let len = rng.gen_usize(0, 200);
            let mut s = String::new();
            for _ in 0..len {
                s.push_str(SOUP[rng.gen_usize(0, SOUP.len() - 1)]);
            }
            SourceCase {
                label: format!("soup:{len}"),
                source: s,
            }
        }
        // Nesting straddling the depth budget (under, at, and over).
        6 => {
            let d = rng.gen_usize(budget.max_depth.saturating_sub(2), budget.max_depth * 3);
            SourceCase {
                label: format!("nest:{d}"),
                source: format!("void f() {{ x = {}1{}; }}", "(".repeat(d), ")".repeat(d)),
            }
        }
        // Source sized exactly at the input-byte budget edge: one
        // statement padded by a comment to land on max_input_bytes - 1,
        // max_input_bytes, or max_input_bytes + 1.
        _ => {
            let target = budget.max_input_bytes + rng.gen_usize(0, 2) - 1;
            let stem = "void f() { x = 1; } /*";
            let pad = target.saturating_sub(stem.len() + 2);
            SourceCase {
                label: format!("edge:{target}"),
                source: format!("{stem}{}*/", "#".repeat(pad)),
            }
        }
    }
}

type ParseOutcome = Result<Program, Diagnostic>;

/// Runs the frontend under `catch_unwind`; `Err(())` means a panic
/// escaped — the one thing hardening must categorically prevent.
fn guarded_parse(source: &str, budget: &ParseBudget) -> Result<ParseOutcome, ()> {
    catch_unwind(AssertUnwindSafe(|| parse_program_with(source, budget))).map_err(|_| ())
}

/// Cross-examines the frontend on one source: no panics, deterministic
/// span-correct diagnostics, and round-trip identity on acceptance.
pub fn check_frontend(label: &str, source: &str, budget: &ParseBudget) -> Vec<Divergence> {
    let panic = || Divergence::FrontendPanic {
        label: label.to_string(),
    };
    let mismatch = |detail: String| Divergence::FrontendMismatch {
        label: label.to_string(),
        detail,
    };
    let mut out = Vec::new();

    let first = match guarded_parse(source, budget) {
        Ok(r) => r,
        Err(()) => return vec![panic()],
    };
    let second = match guarded_parse(source, budget) {
        Ok(r) => r,
        Err(()) => return vec![panic()],
    };
    // Replay determinism: same bytes, same verdict, byte-identical
    // diagnostic (budget rejections included).
    let show = |r: &ParseOutcome| match r {
        Ok(p) => format!("accepted ({} funcs)", p.funcs.len()),
        Err(d) => format!("{:?}", d),
    };
    if show(&first) != show(&second) {
        out.push(mismatch(format!(
            "non-deterministic frontend: first {}, second {}",
            show(&first),
            show(&second)
        )));
    }

    match first {
        Err(d) => {
            if d.span.start > d.span.end || d.span.end > source.len() {
                out.push(mismatch(format!(
                    "diagnostic [{}] span {}..{} escapes the {}-byte input",
                    d.code,
                    d.span.start,
                    d.span.end,
                    source.len()
                )));
            }
            if d.line == 0 {
                out.push(mismatch(format!(
                    "source-anchored diagnostic [{}] lost its line",
                    d.code
                )));
            }
            if catch_unwind(AssertUnwindSafe(|| d.render(source))).is_err() {
                out.push(panic());
            }
        }
        Ok(prog) => {
            // Round-trip identity: parse → canonicalize → print →
            // reparse → structural diff. The reparse runs under the
            // default budget — canonical printing may legitimately add
            // braces past a tight fuzz budget.
            let round = catch_unwind(AssertUnwindSafe(|| {
                let canon = canonicalize(&prog);
                let printed = print_program(&canon);
                (canon, printed)
            }));
            let (canon, printed) = match round {
                Ok(v) => v,
                Err(_) => return vec![panic()],
            };
            match guarded_parse(&printed, &ParseBudget::DEFAULT) {
                Err(()) => out.push(panic()),
                Ok(Err(d)) => out.push(mismatch(format!(
                    "canonical print failed to reparse: {} [{}]",
                    d, d.code
                ))),
                Ok(Ok(re)) => {
                    let diffs = diff_programs(&canon, &canonicalize(&re));
                    if let Some(first) = diffs.first() {
                        out.push(mismatch(format!(
                            "round-trip diverged ({} node(s)): {first}",
                            diffs.len()
                        )));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_sources_round_trip_clean() {
        for (name, src) in kernel_sources() {
            let d = check_frontend(name, src, &FUZZ_BUDGET);
            assert!(d.is_empty(), "{name}: {d:?}");
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let gen = |seed: u64| -> Vec<SourceCase> {
            let mut rng = Rng64::seed_from_u64(seed);
            (0..32)
                .map(|i| gen_source_case(&mut rng, i, &FUZZ_BUDGET))
                .collect()
        };
        let a = gen(7);
        let b = gen(7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn generator_covers_every_family() {
        let mut rng = Rng64::seed_from_u64(3);
        let labels: Vec<String> = (0..8)
            .map(|i| gen_source_case(&mut rng, i, &FUZZ_BUDGET).label)
            .collect();
        for fam in [
            "identity:",
            "truncate:",
            "splice:",
            "delete:",
            "dup:",
            "soup:",
            "nest:",
            "edge:",
        ] {
            assert!(
                labels.iter().any(|l| l.starts_with(fam)),
                "missing {fam} in {labels:?}"
            );
        }
    }

    #[test]
    fn hostile_mutations_never_panic() {
        let mut rng = Rng64::seed_from_u64(99);
        for i in 0..64 {
            let case = gen_source_case(&mut rng, i, &FUZZ_BUDGET);
            let d = check_frontend(&case.label, &case.source, &FUZZ_BUDGET);
            assert!(
                !d.iter()
                    .any(|d| matches!(d, Divergence::FrontendPanic { .. })),
                "{}: {d:?}",
                case.label
            );
        }
    }

    #[test]
    fn budget_edge_sources_reject_deterministically() {
        let over = format!("void f() {{ x = 1; }} /*{}*/", "#".repeat(1 << 16));
        let d1 = parse_program_with(&over, &FUZZ_BUDGET).unwrap_err();
        let d2 = parse_program_with(&over, &FUZZ_BUDGET).unwrap_err();
        assert!(d1.is_budget());
        assert_eq!(format!("{d1:?}"), format!("{d2:?}"));
        assert!(check_frontend("edge", &over, &FUZZ_BUDGET).is_empty());
    }

    #[test]
    fn frontend_checks_are_clean_across_seeds() {
        for seed in [7u64, 31337, 271828] {
            let mut rng = Rng64::seed_from_u64(seed);
            for i in 0..48 {
                let case = gen_source_case(&mut rng, i, &FUZZ_BUDGET);
                let d = check_frontend(&case.label, &case.source, &FUZZ_BUDGET);
                assert!(d.is_empty(), "seed {seed} {}: {d:?}", case.label);
            }
        }
    }
}
