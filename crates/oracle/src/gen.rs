//! Seeded generators for adversarial inputs.
//!
//! Everything here is driven by the workspace's deterministic
//! [`Rng64`], so a seed fully reproduces a campaign. The generators
//! deliberately over-sample the shapes that break naive inspectors and
//! evaluators: degenerate lengths, plateaus, violations planted exactly
//! at the parallel scan's chunk joins, values at the `usize` ceiling,
//! out-of-domain subscripts, and scalar bindings at the `i64` edges
//! where wrapping arithmetic flips comparisons.

use subsub_rtcheck::{parse_check, Bindings, CheckExpr, PAR_THRESHOLD};
use subsub_sparse::Rng64;
use subsub_symbolic::Symbol;

/// The adversarial index-array shapes the campaign cycles through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayShape {
    /// No entries (vacuously strict).
    Empty,
    /// One entry (vacuously strict).
    Single,
    /// All entries equal (non-strict only).
    Plateau,
    /// Strictly increasing ramp.
    StrictRamp,
    /// Repeated up-then-down teeth (neither flavour).
    Sawtooth,
    /// A strict ramp with exactly one planted violation.
    AlmostMonotone,
    /// A long strict ramp (≥ the parallel-scan threshold) whose only
    /// defect is a duplicate planted on a chunk-join pair — the pair the
    /// interior scans skip and only the boundary fixup sees.
    DuplicateAtBoundary,
    /// Entries pushed against `usize::MAX` (overflow bait for any scan
    /// arithmetic; also out of any realistic domain).
    NearMax,
    /// In-domain ramp with one entry planted past the domain bound.
    OutOfDomain,
    /// Independent uniform entries.
    RandomUniform,
    /// Strictly increasing with a constant gap ≥ 2 (the strided-SRA
    /// pattern: `#SMA+gap`).
    StridedRamp,
    /// Strict ramp restarting every `p` elements: block-monotone for
    /// block size `p`, globally non-monotone.
    BlockPeriodic,
    /// Block-periodic with one within-block duplicate planted, so even
    /// the block-monotone (strict) verdict must fail.
    BlockAlmostMonotone,
}

/// All shapes, in campaign order.
pub const ALL_SHAPES: [ArrayShape; 13] = [
    ArrayShape::Empty,
    ArrayShape::Single,
    ArrayShape::Plateau,
    ArrayShape::StrictRamp,
    ArrayShape::Sawtooth,
    ArrayShape::AlmostMonotone,
    ArrayShape::DuplicateAtBoundary,
    ArrayShape::NearMax,
    ArrayShape::OutOfDomain,
    ArrayShape::RandomUniform,
    ArrayShape::StridedRamp,
    ArrayShape::BlockPeriodic,
    ArrayShape::BlockAlmostMonotone,
];

impl std::fmt::Display for ArrayShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ArrayShape::Empty => "empty",
            ArrayShape::Single => "single",
            ArrayShape::Plateau => "plateau",
            ArrayShape::StrictRamp => "strict-ramp",
            ArrayShape::Sawtooth => "sawtooth",
            ArrayShape::AlmostMonotone => "almost-monotone",
            ArrayShape::DuplicateAtBoundary => "duplicate-at-boundary",
            ArrayShape::NearMax => "near-max",
            ArrayShape::OutOfDomain => "out-of-domain",
            ArrayShape::RandomUniform => "random-uniform",
            ArrayShape::StridedRamp => "strided-ramp",
            ArrayShape::BlockPeriodic => "block-periodic",
            ArrayShape::BlockAlmostMonotone => "block-almost-monotone",
        };
        write!(f, "{s}")
    }
}

impl ArrayShape {
    /// Inverse of the `Display` form; used by the corpus loader.
    pub fn parse(s: &str) -> Option<ArrayShape> {
        ALL_SHAPES.iter().copied().find(|sh| sh.to_string() == s)
    }
}

/// One generated index array plus the domain it claims to index into.
#[derive(Debug, Clone)]
pub struct GeneratedArray {
    /// The shape that produced it.
    pub shape: ArrayShape,
    /// The subscript values.
    pub data: Vec<usize>,
    /// Exclusive domain bound ingestion must validate against.
    pub domain: usize,
    /// Whether ingestion is expected to reject this array.
    pub expect_reject: bool,
}

/// Generates one index array of the given shape.
pub fn gen_array(rng: &mut Rng64, shape: ArrayShape) -> GeneratedArray {
    // Rng64 ranges are inclusive `[lo, hi]`.
    let small_len = rng.gen_usize(2, 64);
    // Long enough that the pooled inspector actually goes parallel.
    let long_len = PAR_THRESHOLD + rng.gen_usize(0, PAR_THRESHOLD);
    let (data, domain, expect_reject) = match shape {
        ArrayShape::Empty => (Vec::new(), rng.gen_usize(0, 100), false),
        ArrayShape::Single => {
            let domain = rng.gen_usize(1, 1000);
            (vec![rng.gen_usize(0, domain - 1)], domain, false)
        }
        ArrayShape::Plateau => {
            let domain = rng.gen_usize(1, 1000);
            let v = rng.gen_usize(0, domain - 1);
            (vec![v; small_len], domain, false)
        }
        ArrayShape::StrictRamp => {
            let len = if rng.gen_usize(0, 3) == 0 {
                long_len
            } else {
                small_len
            };
            let step = rng.gen_usize(1, 4);
            let data: Vec<usize> = (0..len).map(|i| i * step).collect();
            let domain = data.last().map_or(1, |&l| l + 1);
            (data, domain, false)
        }
        ArrayShape::Sawtooth => {
            let tooth = rng.gen_usize(2, 9);
            // At least one wrap so the array is genuinely non-monotone.
            let len = small_len.max(tooth + 1);
            let data: Vec<usize> = (0..len).map(|i| i % tooth).collect();
            (data, tooth, false)
        }
        ArrayShape::AlmostMonotone => {
            // Base values start above zero so the planted dip is a real
            // non-strict violation even at index 1.
            let mut data: Vec<usize> = (0..small_len).map(|i| (i + 1) * 2).collect();
            let at = rng.gen_usize(1, data.len() - 1);
            data[at] = data[at - 1] - rng.gen_usize(1, 2);
            let domain = 2 * small_len + 1;
            (data, domain, false)
        }
        ArrayShape::DuplicateAtBoundary => {
            let mut data: Vec<usize> = (0..long_len).map(|i| i * 2).collect();
            // The parallel scan cuts into threads*4 chunks; plant the
            // defect on a join pair for a plausible thread count so
            // neither interior scan sees it.
            let chunks = rng.gen_usize(2, 5) * 4;
            let join = (long_len.div_ceil(chunks)) * rng.gen_usize(1, chunks - 1);
            let at = join.clamp(1, long_len - 1);
            data[at] = data[at - 1];
            let domain = 2 * long_len;
            (data, domain, false)
        }
        ArrayShape::NearMax => {
            let data: Vec<usize> = (0..small_len)
                .map(|i| usize::MAX - (small_len - i) + 1 - rng.gen_usize(0, 2))
                .collect();
            // Claims a modest domain: every entry is far outside it.
            (data, rng.gen_usize(1, 1000), true)
        }
        ArrayShape::OutOfDomain => {
            let domain = small_len;
            let mut data: Vec<usize> = (0..small_len).collect();
            let at = rng.gen_usize(0, data.len() - 1);
            data[at] = domain + rng.gen_usize(0, 100);
            (data, domain, true)
        }
        ArrayShape::RandomUniform => {
            let domain = rng.gen_usize(1, 500);
            let data: Vec<usize> = (0..small_len)
                .map(|_| rng.gen_usize(0, domain - 1))
                .collect();
            (data, domain, false)
        }
        ArrayShape::StridedRamp => {
            let gap = rng.gen_usize(2, 7);
            let data: Vec<usize> = (0..small_len).map(|i| i * gap).collect();
            let domain = data.last().map_or(1, |&l| l + 1);
            (data, domain, false)
        }
        ArrayShape::BlockPeriodic => {
            let p = rng.gen_usize(4, 32);
            let blocks = rng.gen_usize(2, 5);
            let data: Vec<usize> = (0..p * blocks).map(|i| i % p).collect();
            (data, p, false)
        }
        ArrayShape::BlockAlmostMonotone => {
            let p = rng.gen_usize(4, 32);
            let blocks = rng.gen_usize(2, 5);
            let mut data: Vec<usize> = (0..p * blocks).map(|i| i % p).collect();
            // Duplicate a within-block pair (never the block's first
            // element, so the defect cannot alias a block join).
            let block = rng.gen_usize(0, blocks - 1);
            let at = block * p + rng.gen_usize(1, p - 1);
            data[at] = data[at - 1];
            (data, p, false)
        }
    };
    GeneratedArray {
        shape,
        data,
        domain,
        expect_reject,
    }
}

/// One step of a mutate-then-reinspect plan: write `value` at index
/// `at` through the validated boundary (`mutate_range`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationStep {
    /// Index written.
    pub at: usize,
    /// Value written (may be out of domain — then the write must be
    /// rejected and rolled back).
    pub value: usize,
}

/// Generates a mutate-then-reinspect plan for an array ingestion will
/// accept. Targets are biased toward the indices incremental block
/// summaries get wrong first — index 0, the last index, and 4 Ki block
/// joins — and roughly one write in six is out of domain, so the
/// reject-and-rollback path is exercised alongside the happy path.
/// Empty for arrays ingestion rejects (there is no boundary to mutate
/// through).
pub fn gen_mutation_plan(rng: &mut Rng64, g: &GeneratedArray) -> Vec<MutationStep> {
    if g.expect_reject || g.data.is_empty() {
        return Vec::new();
    }
    let n = g.data.len();
    let steps = rng.gen_usize(1, 6);
    let mut plan = Vec::with_capacity(steps);
    for _ in 0..steps {
        let at = match rng.gen_usize(0, 5) {
            0 => 0,
            1 => n - 1,
            2 if n > 4096 => (rng.gen_usize(1, n / 4096) * 4096).min(n - 1),
            _ => rng.gen_usize(0, n - 1),
        };
        let value = if rng.gen_usize(0, 5) == 0 {
            g.domain + rng.gen_usize(0, 100)
        } else {
            // Accepted non-empty arrays always have domain >= 1.
            rng.gen_usize(0, g.domain - 1)
        };
        plan.push(MutationStep { at, value });
    }
    plan
}

/// Ground truth the inspector is checked against: the O(n) definitional
/// scan of both monotonicity flavours, written independently of
/// `inspect_serial` (windows + iterator combinators, no early exit).
pub fn brute_force_monotone(data: &[usize]) -> (bool, bool) {
    let nonstrict = data.windows(2).all(|w| w[0] <= w[1]);
    let strict = data.windows(2).all(|w| w[0] < w[1]);
    (nonstrict, strict)
}

/// Definitional block-monotone scan, written independently of
/// `inspect_block_monotone`: every aligned block of `b` elements must be
/// monotone on its own; pairs straddling block boundaries are exempt.
/// `b == 0` degenerates to whole-array monotonicity.
pub fn brute_force_block_monotone(data: &[usize], b: usize) -> (bool, bool) {
    if b == 0 {
        return brute_force_monotone(data);
    }
    let nonstrict = data.chunks(b).all(|c| c.windows(2).all(|w| w[0] <= w[1]));
    let strict = data.chunks(b).all(|c| c.windows(2).all(|w| w[0] < w[1]));
    (nonstrict, strict)
}

/// Generates an inner index array for the composed (two-level) leg:
/// entries index into an outer array of `outer_len` elements, sampled
/// from monotone ramps, plateaus, and uniform noise so the composed
/// verdict sees both provable and refutable chains.
pub fn gen_inner_index(rng: &mut Rng64, outer_len: usize) -> Vec<usize> {
    if outer_len == 0 {
        return Vec::new();
    }
    let len = rng.gen_usize(1, (2 * outer_len).min(48));
    match rng.gen_usize(0, 2) {
        0 => {
            // Nondecreasing (sometimes strict) walk clamped into domain.
            let mut v = 0usize;
            (0..len)
                .map(|_| {
                    let cur = v.min(outer_len - 1);
                    v += rng.gen_usize(0, 2);
                    cur
                })
                .collect()
        }
        1 => vec![rng.gen_usize(0, outer_len - 1); len],
        _ => (0..len).map(|_| rng.gen_usize(0, outer_len - 1)).collect(),
    }
}

/// The scalar symbols generated predicates draw from.
const SYM_NAMES: [&str; 4] = ["a", "b", "c", "d"];

/// Adversarial binding values: zero, units, the `i64` edges (where
/// wrapping evaluation flips comparisons), and √MAX-adjacent values whose
/// products overflow.
fn adversarial_value(rng: &mut Rng64) -> i64 {
    match rng.gen_usize(0, 9) {
        0 => 0,
        1 => 1,
        2 => -1,
        3 => i64::MAX,
        4 => i64::MIN + 1,
        5 => i64::MAX - rng.gen_i64(0, 3),
        6 => 3_037_000_500 + rng.gen_i64(-2, 3), // ~ √(i64::MAX)
        7 => -3_037_000_500 + rng.gen_i64(-2, 3),
        8 => rng.gen_i64(-1_000_000, 1_000_000),
        _ => rng.gen_i64(-100, 100),
    }
}

/// Generates a random scalar runtime check: a conjunction of 1–3
/// comparisons over small polynomial sides. Coefficients stay small so
/// *construction* (the symbolic algebra canonicalizing `lhs - rhs`)
/// cannot overflow — the adversarial pressure comes from the bindings.
pub fn gen_check(rng: &mut Rng64) -> CheckExpr {
    let n_conj = rng.gen_usize(1, 3);
    let mut conj = Vec::with_capacity(n_conj);
    for _ in 0..n_conj {
        let lhs = gen_side(rng);
        let rhs = gen_side(rng);
        let op = ["<=", "<", ">=", ">", "==", "!="][rng.gen_usize(0, 5)];
        conj.push(format!("{lhs} {op} {rhs}"));
    }
    let text = conj.join(" && ");
    parse_check(&text).unwrap_or_else(|e| panic!("generated check {text:?} must parse: {e}"))
}

fn gen_side(rng: &mut Rng64) -> String {
    let terms = rng.gen_usize(1, 3);
    let last = SYM_NAMES.len() - 1;
    let mut side = String::new();
    for t in 0..terms {
        let coeff = rng.gen_i64(-8, 8);
        let part = match rng.gen_usize(0, 2) {
            0 => format!("{coeff}"),
            1 => format!("{coeff}*{}", SYM_NAMES[rng.gen_usize(0, last)]),
            _ => format!(
                "{coeff}*{}*{}",
                SYM_NAMES[rng.gen_usize(0, last)],
                SYM_NAMES[rng.gen_usize(0, last)]
            ),
        };
        if t == 0 {
            side = part;
        } else {
            side = format!("{side} + {part}");
        }
    }
    side
}

/// Generates bindings for a check's free symbols from the adversarial
/// value pool. With probability ~1/8 one symbol is left unbound, so the
/// unbound-symbol paths of both evaluators are exercised too.
pub fn gen_bindings(rng: &mut Rng64, check: &CheckExpr) -> Bindings {
    let syms: Vec<Symbol> = check.free_syms();
    let skip = if !syms.is_empty() && rng.gen_usize(0, 7) == 0 {
        Some(rng.gen_usize(0, syms.len() - 1))
    } else {
        None
    };
    let mut b = Bindings::new();
    for (i, s) in syms.iter().enumerate() {
        if Some(i) == skip {
            continue;
        }
        b.set(s.clone(), adversarial_value(rng));
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_have_advertised_properties() {
        let mut rng = Rng64::seed_from_u64(42);
        for _ in 0..50 {
            for shape in ALL_SHAPES {
                let g = gen_array(&mut rng, shape);
                let (nonstrict, strict) = brute_force_monotone(&g.data);
                match shape {
                    ArrayShape::Empty => assert!(g.data.is_empty() && strict),
                    ArrayShape::Single => assert!(g.data.len() == 1 && strict),
                    ArrayShape::Plateau => assert!(nonstrict && !strict),
                    ArrayShape::StrictRamp => assert!(strict),
                    ArrayShape::AlmostMonotone => assert!(!nonstrict),
                    ArrayShape::DuplicateAtBoundary => {
                        assert!(g.data.len() >= PAR_THRESHOLD);
                        assert!(nonstrict && !strict);
                    }
                    ArrayShape::StridedRamp => {
                        assert!(strict);
                        assert!(g.data.windows(2).all(|w| w[1] - w[0] >= 2));
                    }
                    ArrayShape::BlockPeriodic | ArrayShape::BlockAlmostMonotone => {
                        // The ramp restarts at least once: globally
                        // non-monotone. Block-strictness for the period
                        // is diffed by the oracle's block-inspector leg.
                        assert!(!nonstrict);
                    }
                    _ => {}
                }
                if g.expect_reject {
                    assert!(
                        g.data.iter().any(|&v| v >= g.domain),
                        "{shape}: reject expectation needs an OOB entry"
                    );
                } else {
                    assert!(g.data.iter().all(|&v| v < g.domain), "{shape}");
                }
            }
        }
    }

    #[test]
    fn generated_checks_parse_and_bind() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..200 {
            let c = gen_check(&mut rng);
            let b = gen_bindings(&mut rng, &c);
            // Not all symbols need be bound, but the environment never
            // binds symbols the check does not mention.
            assert!(b.len() <= c.free_syms().len());
        }
    }

    #[test]
    fn mutation_plans_target_valid_indices_only() {
        let mut rng = Rng64::seed_from_u64(99);
        for _ in 0..50 {
            for shape in ALL_SHAPES {
                let g = gen_array(&mut rng, shape);
                let plan = gen_mutation_plan(&mut rng, &g);
                if g.expect_reject || g.data.is_empty() {
                    assert!(plan.is_empty(), "{shape}: no plan for unmutable arrays");
                    continue;
                }
                assert!(!plan.is_empty());
                for step in &plan {
                    assert!(step.at < g.data.len(), "{shape}: index in bounds");
                }
            }
        }
    }

    #[test]
    fn brute_force_agrees_with_definitions() {
        assert_eq!(brute_force_monotone(&[]), (true, true));
        assert_eq!(brute_force_monotone(&[5]), (true, true));
        assert_eq!(brute_force_monotone(&[1, 2, 3]), (true, true));
        assert_eq!(brute_force_monotone(&[1, 1, 3]), (true, false));
        assert_eq!(brute_force_monotone(&[2, 1]), (false, false));
    }
}
