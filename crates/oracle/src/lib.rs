//! Differential fuzzing oracle for the inspect/guard/dispatch trust
//! boundary.
//!
//! The runtime subsystem (PR 2's `rtcheck`) decides, per execution, to
//! take an `unsafe` parallel path on the strength of three artifacts: an
//! inspector verdict over subscript arrays, a compiled scalar predicate,
//! and a guard that combines them. This crate cross-examines each
//! artifact against an independent ground truth:
//!
//! | checked artifact | ground truth |
//! |---|---|
//! | ingestion accept/reject ([`ValidatedIndexArray`]) | the generator's domain bookkeeping |
//! | `inspect_serial` / pooled `inspect_monotone` | definitional brute-force scan |
//! | [`CompiledCheck`](subsub_rtcheck::CompiledCheck) (`i64`, checked) | checked-`i128` interpreter over canonical forms |
//! | guarded parallel kernel output | serial golden run |
//! | incremental re-inspection (`mutate_range` + block summaries) | from-scratch summary rebuild + `inspect_serial` |
//! | C frontend on mutated sources ([`srcgen::check_frontend`]) | panic-freedom, replay determinism, canonical round-trip identity |
//!
//! The trust model is asymmetric (see [`refeval::compare`]): the fast
//! path may *conservatively deny* (e.g. `i64` overflow), but must never
//! admit where the sound evaluator would not, and admitted parallel runs
//! must be bit-for-bit trustworthy up to floating-point reduction order.
//!
//! Campaigns ([`fuzz::run_campaign`]) are seeded and deterministic;
//! failures shrink ([`shrink::shrink_array`]) to minimal reproducers;
//! shrunk cases are committed to `crates/oracle/corpus/` and replayed by
//! CI ([`corpus::load_dir`] + [`corpus::replay_all`]).

pub mod corpus;
pub mod diff;
pub mod fuzz;
pub mod gen;
pub mod refeval;
pub mod shrink;
pub mod srcgen;

pub use corpus::{load_dir, parse_corpus, replay, replay_all, CorpusEntry, CorpusError};
pub use diff::{
    check_composed, check_index_array, check_kernel, check_predicate, check_reinspect, Divergence,
};
pub use fuzz::{run_campaign, FuzzConfig, FuzzReport};
pub use gen::{
    brute_force_block_monotone, brute_force_monotone, gen_array, gen_bindings, gen_check,
    gen_inner_index, gen_mutation_plan, ArrayShape, MutationStep, ALL_SHAPES,
};
pub use refeval::{compare, ref_eval, PredicateAgreement, RefEvalError};
pub use shrink::shrink_array;
pub use srcgen::{check_frontend, gen_source_case, SourceCase, FUZZ_BUDGET};
// Re-export the ingestion types so oracle consumers name one crate.
pub use subsub_rtcheck::{Provenance, ValidatedIndexArray, ValidationError};
