//! Replays every committed corpus entry — the regression half of the
//! differential oracle. Any failure here means a previously-shrunk
//! adversarial case regressed.

use std::path::Path;
use subsub_omprt::ThreadPool;
use subsub_oracle::corpus::{load_dir, replay, CorpusEntry};

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn corpus_is_nonempty_and_well_formed() {
    let entries = load_dir(&corpus_dir()).expect("corpus loads");
    assert!(
        entries.len() >= 15,
        "expected the committed corpus, found {} entries",
        entries.len()
    );
    let arrays = entries
        .iter()
        .filter(|e| matches!(e, CorpusEntry::Array { .. }))
        .count();
    let predicates = entries
        .iter()
        .filter(|e| matches!(e, CorpusEntry::Predicate { .. }))
        .count();
    let kernels = entries
        .iter()
        .filter(|e| matches!(e, CorpusEntry::Kernel { .. }))
        .count();
    assert!(arrays >= 5, "array entries: {arrays}");
    assert!(predicates >= 5, "predicate entries: {predicates}");
    assert!(kernels >= 3, "kernel entries: {kernels}");
}

#[test]
fn every_corpus_entry_replays_clean() {
    let entries = load_dir(&corpus_dir()).expect("corpus loads");
    let pool = ThreadPool::new(3);
    let mut failures = Vec::new();
    for entry in &entries {
        failures.extend(replay(entry, &pool));
    }
    assert!(
        failures.is_empty(),
        "{} corpus regression(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn long_boundary_entry_actually_exercises_the_parallel_scan() {
    let entries = load_dir(&corpus_dir()).expect("corpus loads");
    let long = entries.iter().find_map(|e| match e {
        CorpusEntry::Array { name, data, .. } if name == "duplicate-at-chunk-join-long" => {
            Some(data)
        }
        _ => None,
    });
    let data = long.expect("the long chunk-join entry is committed");
    assert!(
        data.len() >= subsub_rtcheck::PAR_THRESHOLD,
        "entry must be long enough for the pooled inspector to split ({} < {})",
        data.len(),
        subsub_rtcheck::PAR_THRESHOLD
    );
}
