//! Runtime substrate benchmarks: fork-join overhead, schedule throughput
//! and the scheduling simulator — the quantities Figures 13 and 16 hinge
//! on.

use subsub_bench::bench;
use subsub_omprt::{sim, Schedule, SimParams, ThreadPool};

fn bench_fork_join() {
    let pool = ThreadPool::new(2);
    bench("fork_join_empty_region", || pool.run(|_| {}));
}

fn bench_schedules() {
    let pool = ThreadPool::new(2);
    let n = 10_000usize;
    let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
    for (name, sched) in [
        ("static", Schedule::static_default()),
        ("dynamic1", Schedule::dynamic_default()),
        ("dynamic64", Schedule::Dynamic { chunk: 64 }),
        ("guided", Schedule::Guided { min_chunk: 8 }),
    ] {
        bench(&format!("parallel_for/{name}"), || {
            let s = pool.parallel_for_reduce(
                n,
                sched,
                0.0f64,
                |acc, i| acc + data[i].sqrt(),
                |x, y| x + y,
            );
            std::hint::black_box(s);
        });
    }
}

fn bench_simulator() {
    let costs: Vec<f64> = (0..100_000).map(|i| 10.0 + (i % 97) as f64).collect();
    let params = SimParams::default();
    for (name, sched) in [
        ("static", Schedule::static_default()),
        ("dynamic", Schedule::dynamic_default()),
    ] {
        bench(&format!("simulator/{name}"), || {
            std::hint::black_box(sim::simulate_parallel_for(&costs, 16, sched, &params));
        });
    }
}

fn main() {
    bench_fork_join();
    bench_schedules();
    bench_simulator();
}
