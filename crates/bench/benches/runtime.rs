//! Runtime substrate benchmarks: fork-join overhead, schedule throughput
//! and the scheduling simulator — the quantities Figures 13 and 16 hinge
//! on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subsub_omprt::{sim, Schedule, SimParams, ThreadPool};

fn bench_fork_join(c: &mut Criterion) {
    let pool = ThreadPool::new(2);
    c.bench_function("fork_join_empty_region", |b| {
        b.iter(|| pool.run(|_| {}));
    });
}

fn bench_schedules(c: &mut Criterion) {
    let pool = ThreadPool::new(2);
    let n = 10_000usize;
    let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut g = c.benchmark_group("parallel_for");
    for (name, sched) in [
        ("static", Schedule::static_default()),
        ("dynamic1", Schedule::dynamic_default()),
        ("dynamic64", Schedule::Dynamic { chunk: 64 }),
        ("guided", Schedule::Guided { min_chunk: 8 }),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &sched, |b, &sched| {
            b.iter(|| {
                let s = pool.parallel_for_reduce(
                    n,
                    sched,
                    0.0f64,
                    |acc, i| acc + data[i].sqrt(),
                    |x, y| x + y,
                );
                std::hint::black_box(s);
            })
        });
    }
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let costs: Vec<f64> = (0..100_000).map(|i| 10.0 + (i % 97) as f64).collect();
    let params = SimParams::default();
    let mut g = c.benchmark_group("simulator");
    for (name, sched) in [
        ("static", Schedule::static_default()),
        ("dynamic", Schedule::dynamic_default()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &sched, |b, &sched| {
            b.iter(|| {
                std::hint::black_box(sim::simulate_parallel_for(&costs, 16, sched, &params))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fork_join, bench_schedules, bench_simulator);
criterion_main!(benches);
