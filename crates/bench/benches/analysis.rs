//! Compile-time cost of the analysis itself: Phase-1/Phase-2 throughput
//! over the twelve benchmark sources at each algorithm level. The paper's
//! selling point over inspector/executor and speculation is *zero runtime
//! overhead*; this bench quantifies the (small) compile-time price.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subsub_core::{analyze_program, AlgorithmLevel};
use subsub_kernels::all_kernels;

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    for kernel in all_kernels() {
        for level in [AlgorithmLevel::Classic, AlgorithmLevel::Base, AlgorithmLevel::New] {
            g.bench_with_input(
                BenchmarkId::new(kernel.name(), level),
                &level,
                |b, &level| {
                    b.iter(|| {
                        let r = analyze_program(kernel.source(), level).unwrap();
                        std::hint::black_box(r);
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let src = subsub_kernels::kernel_by_name("AMGmk").unwrap().source();
    let prog = subsub_cfront::parse_program(src).unwrap();
    let mut g = c.benchmark_group("stages");
    g.bench_function("parse", |b| {
        b.iter(|| std::hint::black_box(subsub_cfront::parse_program(src).unwrap()))
    });
    g.bench_function("lower", |b| {
        b.iter(|| {
            std::hint::black_box(
                subsub_ir::lower_function(&prog.funcs[0], &prog.globals).unwrap(),
            )
        })
    });
    let lowered = subsub_ir::lower_function(&prog.funcs[0], &prog.globals).unwrap();
    g.bench_function("analyze_function", |b| {
        b.iter(|| {
            std::hint::black_box(subsub_core::analyze_function(
                &lowered,
                AlgorithmLevel::New,
                &subsub_symbolic::RangeEnv::new(),
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_analysis, bench_pipeline_stages);
criterion_main!(benches);
