//! Compile-time cost of the analysis itself: Phase-1/Phase-2 throughput
//! over the twelve benchmark sources at each algorithm level. The paper's
//! selling point over inspector/executor and speculation is *zero runtime
//! overhead*; this bench quantifies the (small) compile-time price.

use subsub_bench::bench;
use subsub_core::{analyze_program, AlgorithmLevel};
use subsub_kernels::all_kernels;

fn bench_analysis() {
    for kernel in all_kernels() {
        for level in [
            AlgorithmLevel::Classic,
            AlgorithmLevel::Base,
            AlgorithmLevel::New,
        ] {
            bench(&format!("analysis/{}/{level}", kernel.name()), || {
                let r = analyze_program(kernel.source(), level).unwrap();
                std::hint::black_box(&r);
            });
        }
    }
}

fn bench_pipeline_stages() {
    let src = subsub_kernels::kernel_by_name("AMGmk").unwrap().source();
    let prog = subsub_cfront::parse_program(src).unwrap();
    bench("stages/parse", || {
        std::hint::black_box(subsub_cfront::parse_program(src).unwrap());
    });
    bench("stages/lower", || {
        std::hint::black_box(subsub_ir::lower_function(&prog.funcs[0], &prog.globals).unwrap());
    });
    let lowered = subsub_ir::lower_function(&prog.funcs[0], &prog.globals).unwrap();
    bench("stages/analyze_function", || {
        std::hint::black_box(subsub_core::analyze_function(
            &lowered,
            AlgorithmLevel::New,
            &subsub_symbolic::RangeEnv::new(),
        ));
    });
}

fn main() {
    bench_analysis();
    bench_pipeline_stages();
}
