//! Kernel execution benchmarks: serial versus the analysis-selected
//! parallel variant on the real runtime (test-size datasets so the suite
//! stays fast; the figure binaries run the full datasets).

use subsub_bench::bench;
use subsub_kernels::{kernel_by_name, Variant};
use subsub_omprt::{Schedule, ThreadPool};

fn main() {
    let pool = ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    for name in ["AMGmk", "SDDMM", "UA(transf)", "CHOLMOD-Supernodal"] {
        let k = kernel_by_name(name).unwrap();
        let mut inst = k.prepare("test");
        bench(&format!("kernels/{name}/serial"), || {
            inst.reset();
            inst.run_serial();
        });
        let mut inst2 = k.prepare("test");
        bench(&format!("kernels/{name}/outer"), || {
            inst2.reset();
            inst2.run(Variant::OuterParallel, &pool, Schedule::static_default());
        });
    }
}
