//! Kernel execution benchmarks: serial versus the analysis-selected
//! parallel variant on the real runtime (test-size datasets so the suite
//! stays fast; the figure binaries run the full datasets).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subsub_kernels::{kernel_by_name, Variant};
use subsub_omprt::{Schedule, ThreadPool};

fn bench_kernels(c: &mut Criterion) {
    let pool = ThreadPool::new(
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    );
    let mut g = c.benchmark_group("kernels");
    for name in ["AMGmk", "SDDMM", "UA(transf)", "CHOLMOD-Supernodal"] {
        let k = kernel_by_name(name).unwrap();
        let mut inst = k.prepare("test");
        g.bench_with_input(BenchmarkId::new(name, "serial"), &(), |b, _| {
            b.iter(|| {
                inst.reset();
                inst.run_serial();
            })
        });
        let mut inst2 = k.prepare("test");
        g.bench_with_input(BenchmarkId::new(name, "outer"), &(), |b, _| {
            b.iter(|| {
                inst2.reset();
                inst2.run(Variant::OuterParallel, &pool, Schedule::static_default());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
