/* Two-level subscripted subscripts: the value array is addressed through
 * a composition of index arrays (base[level1[level2[i]]]), the pattern
 * the composed-monotonicity rule proves. Exercises nested subscript
 * expressions through the canonical round-trip. */
void two_level_gather(int n, int m, int *starts, int *active,
                      double *base, double *delta) {
    int i; int s;
    s = 0;
    for (i = 0; i < n; i++) {
        starts[i] = s;
        s = s + 3;
    }
    for (i = 0; i < m; i++) {
        base[starts[active[i]]] = base[starts[active[i]]] + delta[i];
    }
}
