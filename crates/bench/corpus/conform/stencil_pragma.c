/* Multi-dimensional arrays, float-literal spellings (exponents,
 * fractions), compound assignment, and pragma lines. */
void stencil_pragma(int n, double A[100][100], double B[100][100]) {
    int i; int j; double c;
    c = 2.5e-1;
#pragma omp parallel for
    for (i = 1; i < n - 1; i++) {
        for (j = 1; j < n - 1; j++) {
            B[i][j] = c * (A[i][j - 1] + A[i][j + 1] + A[i - 1][j] + A[i + 1][j]);
            B[i][j] -= A[i][j] * 0.125;
            B[i][j] /= 1.0 + 1e-9;
        }
    }
}
