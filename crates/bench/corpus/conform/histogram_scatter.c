/* Indirect scatter with a postincrement write and a packing loop that
 * builds the index array itself (the recurrence the paper analyzes). */
void histogram_scatter(int n, int nb, int *idx, int *bins, int *src) {
    int i; int m;
    m = 0;
    for (i = 0; i < n; i++) {
        if (src[i] >= 0 && src[i] < nb)
            idx[m++] = src[i];
    }
    for (i = 0; i < m; i++)
        bins[idx[i]] += 1;
}
