/* Block-periodic histogram: keys restart a ramp every block, so the
 * subscript array is monotone only within blocks — a runtime property no
 * compile-time level proves. The flat data-dependent scatter must
 * survive the canonical round-trip (and analyze serial). */
void block_periodic_hist(int n, int *key, double *y, double *g) {
    int i;
    for (i = 0; i < n; i++) {
        y[key[i]] = y[key[i]] + g[i];
    }
}
