/* CSR sparse gather with subscripted subscripts: the canonical shape
 * the paper's analysis targets (x[col[k]] under a rowptr-bounded k). */
void csr_gather(int n, int *rowptr, int *col, double *val,
                double *x, double *y) {
    int i; int k; double acc;
    for (i = 0; i < n; i++) {
        acc = 0.0;
        for (k = rowptr[i]; k < rowptr[i + 1]; k++)
            acc += val[k] * x[col[k]];
        y[i] = acc;
    }
}
