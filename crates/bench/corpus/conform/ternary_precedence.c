/* Precedence torture: ternaries, negation chains, mixed mul/add/mod
 * chains, and comparisons feeding logical operators. */
void ternary_precedence(int n, int *a, int *b, double *w) {
    int i; int lo; int hi;
    for (i = 0; i < n; i++) {
        lo = a[i] < b[i] ? a[i] : b[i];
        hi = a[i] < b[i] ? b[i] : a[i];
        w[i] = -(-lo) + - -hi * 2 - (a[i] + b[i]) % 7;
        a[i] = (lo <= hi && hi - lo < n) || i % 2 == 0 ? hi : lo;
    }
}
