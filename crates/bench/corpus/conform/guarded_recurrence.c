/* Conditionally monotone recurrence: the prefix sum's step is a runtime
 * scalar, so monotonicity holds only under the guard 1 <= step. The
 * segment loop below consumes the offsets CHOLMOD-style. */
void guarded_recurrence(int n, int step, int *bound, double *work) {
    int i; int k;
    bound[0] = 0;
    for (i = 0; i < n; i++) {
        bound[i+1] = bound[i] + step;
    }
    for (i = 0; i < n; i++) {
        for (k = bound[i]; k < bound[i+1]; k++) {
            work[k] = work[k] + 1.0;
        }
    }
}
