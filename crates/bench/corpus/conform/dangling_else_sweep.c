/* Printer edge cases: dangling else, unbraced single-statement bodies,
 * an empty-clause for loop, and an else-if ladder. */
void sweep(int n, int *a, int *flags) {
    int i; int state;
    state = 0;
    for (i = 0; i < n; i++)
        if (flags[i])
            if (a[i] > 0)
                state = 1;
            else
                state = 2;
    i = 0;
    for (;;) {
        if (i >= n)
            break;
        if (state == 1)
            a[i] = a[i] + 1;
        else if (state == 2)
            a[i] = a[i] - 1;
        else
            a[i] = 0;
        i++;
    }
}
