/* Constant-stride recurrence filling an offset array (off[i] = i*4 in
 * recurrence form), then a scatter through it: the strided-SRA pattern
 * (#SMA+4). The fill and use loops share one function so the analysis
 * sees the definition site. */
void strided_update(int n, int *off, double *y, double *g) {
    int i; int p;
    p = 0;
    for (i = 0; i < n; i++) {
        off[i] = p;
        p = p + 4;
    }
    for (i = 0; i < n; i++) {
        y[off[i]] = y[off[i]] + g[i] * 0.5;
    }
}
