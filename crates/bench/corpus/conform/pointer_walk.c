/* Pointer declarators everywhere they can appear: parameters, local
 * declarations with initializers, and a for-init declaration. */
void pointer_walk(int n, int *base, int *out) {
    int *cursor = base;
    int j;
    j = 0;
    while (j < n) {
        out[j] = cursor[j];
        j++;
    }
    for (int *p = base; p < base + n; p++)
        out[0] += p[0];
}
