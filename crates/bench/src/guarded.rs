//! Guarded execution of a kernel: bridges the analysis decision (variant
//! + runtime check) to the `rtcheck` [`GuardedExecutor`].
//!
//! Construction runs the real compile-time pipeline once and compiles the
//! plan's check; each [`GuardedHarness::run`] then evaluates the check
//! against the instance's scalar bindings, inspects (or cache-revalidates)
//! its index arrays, and executes the admitted variant. Repeated runs on
//! an unchanged instance are revalidated from the inspector cache in O(1).
//!
//! Execution is fault-tolerant end to end: the two-phase
//! `decide_recoverable` / `execute_admitted` protocol re-checks index
//! array versions at dispatch (tamper gate), catches a panicking or
//! worker-losing parallel variant, resets the kernel instance, retries
//! once, and finishes on the serial golden path when the parallel one
//! cannot be trusted — reporting the classified [`ExecError`] instead of
//! aborting. Repeatedly faulting kernels are pinned to serial by the
//! executor's circuit breaker.

use crate::decide::{decision_report, variant_for};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use subsub_core::{AlgorithmLevel, CheckExpr};
use subsub_failpoint as failpoint;
use subsub_kernels::{Kernel, KernelInstance, Variant};
use subsub_omprt::{RegionError, Schedule, ThreadPool};
use subsub_rtcheck::{BreakerState, ExecError, GuardPath, GuardStats, GuardedExecutor};

/// What one guarded invocation did.
#[derive(Debug, Clone)]
pub struct GuardedOutcome {
    /// The variant the compile-time analysis selected.
    pub variant: Variant,
    /// The variant that actually ran (to completion) after the runtime
    /// guards and any fault recovery.
    pub executed: Variant,
    /// Which side of the guard the invocation finished on.
    /// Analysis-serial kernels report [`GuardPath::Serial`].
    pub path: GuardPath,
    /// Why the serial path was taken, when it was — a classified
    /// [`ExecError`], never a free-form string.
    pub reason: Option<ExecError>,
    /// Output checksum of the executed variant.
    pub checksum: f64,
}

/// A kernel's analysis decision bound to a guarded executor.
pub struct GuardedHarness {
    name: String,
    variant: Variant,
    check: Option<CheckExpr>,
    executor: GuardedExecutor,
}

impl GuardedHarness {
    /// Runs the analysis at `level` and compiles the resulting runtime
    /// check (if any) for the kernel's compute nest.
    pub fn new(kernel: &dyn Kernel, level: AlgorithmLevel) -> GuardedHarness {
        let variant = variant_for(kernel, level);
        let report = decision_report(kernel, level);
        let check = report
            .function(kernel.func_name())
            .and_then(|f| f.last_nest_parallel())
            .and_then(|l| l.decision.plan())
            .and_then(|p| p.runtime_check.clone());
        let executor = GuardedExecutor::new(check.as_ref())
            .unwrap_or_else(|e| panic!("{}: check not executable: {e}", kernel.name()));
        GuardedHarness {
            name: kernel.name().to_string(),
            variant,
            check,
            executor,
        }
    }

    /// The compile-time decision.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The structured check guarding the decision, if any.
    pub fn check(&self) -> Option<&CheckExpr> {
        self.check.as_ref()
    }

    /// Decision counters accumulated across runs.
    pub fn stats(&self) -> GuardStats {
        self.executor.stats()
    }

    /// This kernel's circuit-breaker position.
    pub fn breaker_state(&self) -> BreakerState {
        self.executor.breaker_state(&self.name)
    }

    /// Runs one invocation of the kernel under the guards, surviving
    /// parallel-path faults (see the module docs for the ladder).
    pub fn run(
        &self,
        inst: &mut dyn KernelInstance,
        pool: &ThreadPool,
        sched: Schedule,
    ) -> GuardedOutcome {
        let _kernel_span =
            subsub_telemetry::span_labeled(subsub_telemetry::Phase::KernelRun, &self.name);
        if self.variant == Variant::Serial {
            // Nothing to guard: the analysis itself kept the loop serial.
            inst.run_serial();
            return GuardedOutcome {
                variant: self.variant,
                executed: Variant::Serial,
                path: GuardPath::Serial,
                reason: Some(ExecError::AnalysisSerial),
                checksum: inst.checksum(),
            };
        }
        let bindings = inst.runtime_bindings();
        let decision = {
            let arrays = inst.index_arrays();
            self.executor
                .decide_recoverable(&self.name, &bindings, &arrays, Some(pool))
        };
        // The closures below each need the instance mutably, but only
        // ever one at a time; a RefCell makes that dynamic borrow safe.
        let cell = RefCell::new(inst);
        let versions_owned: Vec<(String, u64)> = cell
            .borrow()
            .index_arrays()
            .iter()
            .map(|v| (v.name.to_string(), v.version))
            .collect();
        let versions: Vec<(&str, u64)> = versions_owned
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        let variant = self.variant;
        let (checksum, reason) = self.executor.execute_admitted(
            &self.name,
            &decision,
            &versions,
            || {
                let mut inst = cell.borrow_mut();
                let r = catch_unwind(AssertUnwindSafe(|| {
                    failpoint::hit("bench.kernel.parallel");
                    inst.run(variant, pool, sched);
                }));
                match r {
                    Ok(()) => Ok(inst.checksum()),
                    Err(p) => Err(classify_panic(p.as_ref())),
                }
            },
            || {
                // A faulted attempt may have half-written the outputs;
                // reset restores the pristine dataset so the retry (or
                // the serial rescue) starts from known-good state.
                cell.borrow_mut().reset();
            },
            || {
                let mut inst = cell.borrow_mut();
                inst.run_serial();
                inst.checksum()
            },
        );
        let (executed, path) = match reason {
            None => (variant, GuardPath::Parallel),
            Some(_) => (Variant::Serial, GuardPath::Serial),
        };
        GuardedOutcome {
            variant,
            executed,
            path,
            reason,
            checksum,
        }
    }
}

/// Maps a caught panic payload from a parallel kernel run onto the
/// [`ExecError`] taxonomy.
fn classify_panic(p: &(dyn std::any::Any + Send)) -> ExecError {
    if let Some(e) = p.downcast_ref::<RegionError>() {
        return match e {
            RegionError::DeadlineExceeded => ExecError::Timeout,
            other => ExecError::ParallelFault {
                detail: other.to_string(),
            },
        };
    }
    if let Some(inj) = p.downcast_ref::<failpoint::InjectedPanic>() {
        return ExecError::ParallelFault {
            detail: inj.to_string(),
        };
    }
    if let Some(s) = p.downcast_ref::<&str>() {
        return ExecError::ParallelFault {
            detail: (*s).to_string(),
        };
    }
    if let Some(s) = p.downcast_ref::<String>() {
        return ExecError::ParallelFault { detail: s.clone() };
    }
    ExecError::ParallelFault {
        detail: "non-string panic payload".into(),
    }
}

/// One-shot convenience: analyze, prepare a dataset, run once guarded.
pub fn guarded_run(
    kernel: &dyn Kernel,
    dataset: &str,
    level: AlgorithmLevel,
    pool: &ThreadPool,
    sched: Schedule,
) -> GuardedOutcome {
    let harness = GuardedHarness::new(kernel, level);
    let mut inst = kernel.prepare(dataset);
    harness.run(inst.as_mut(), pool, sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsub_kernels::kernel_by_name;

    #[test]
    fn amgmk_guard_admits_parallel() {
        let pool = ThreadPool::new(3);
        let k = kernel_by_name("AMGmk").unwrap();
        let out = guarded_run(
            k.as_ref(),
            "test",
            AlgorithmLevel::New,
            &pool,
            Schedule::static_default(),
        );
        assert_eq!(out.path, GuardPath::Parallel);
        assert_eq!(out.executed, Variant::OuterParallel);
        assert!(out.reason.is_none());
    }

    #[test]
    fn repeated_runs_hit_the_cache() {
        let pool = ThreadPool::new(2);
        let k = kernel_by_name("SDDMM").unwrap();
        let harness = GuardedHarness::new(k.as_ref(), AlgorithmLevel::New);
        assert!(harness.check().is_some());
        let mut inst = k.prepare("test");
        harness.run(inst.as_mut(), &pool, Schedule::dynamic_default());
        inst.reset();
        harness.run(inst.as_mut(), &pool, Schedule::dynamic_default());
        let s = harness.stats();
        assert_eq!(s.parallel_runs, 2);
        assert!(
            s.cache.hits >= 1,
            "second run must revalidate from cache: {s:?}"
        );
    }

    #[test]
    fn serial_analysis_decision_short_circuits() {
        let pool = ThreadPool::new(2);
        // The IS histogram is serial at every level: no guard to consult.
        let is = kernel_by_name("IS").unwrap();
        let harness = GuardedHarness::new(is.as_ref(), AlgorithmLevel::New);
        assert_eq!(harness.variant(), Variant::Serial);
        assert!(harness.check().is_none());
        let mut inst = is.prepare(is.datasets()[0]);
        let out = harness.run(inst.as_mut(), &pool, Schedule::static_default());
        assert_eq!(out.path, GuardPath::Serial);
        assert_eq!(out.reason, Some(ExecError::AnalysisSerial));
    }
}
