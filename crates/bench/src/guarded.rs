//! Guarded execution of a kernel: bridges the analysis decision (variant
//! + runtime check) to the `rtcheck` [`GuardedExecutor`].
//!
//! Construction runs the real compile-time pipeline once and compiles the
//! plan's check; each [`GuardedHarness::run`] then evaluates the check
//! against the instance's scalar bindings, inspects (or cache-revalidates)
//! its index arrays, and executes the admitted variant. Repeated runs on
//! an unchanged instance are revalidated from the inspector cache in O(1).

use crate::decide::{decision_report, variant_for};
use subsub_core::{AlgorithmLevel, CheckExpr};
use subsub_kernels::{Kernel, KernelInstance, Variant};
use subsub_omprt::{Schedule, ThreadPool};
use subsub_rtcheck::{GuardPath, GuardStats, GuardedExecutor};

/// What one guarded invocation did.
#[derive(Debug, Clone)]
pub struct GuardedOutcome {
    /// The variant the compile-time analysis selected.
    pub variant: Variant,
    /// The variant that actually ran after the runtime guards.
    pub executed: Variant,
    /// Which side of the guard the invocation took. Analysis-serial
    /// kernels report [`GuardPath::Serial`].
    pub path: GuardPath,
    /// Why the serial path was taken, when it was.
    pub reason: Option<String>,
    /// Output checksum of the executed variant.
    pub checksum: f64,
}

/// A kernel's analysis decision bound to a guarded executor.
pub struct GuardedHarness {
    variant: Variant,
    check: Option<CheckExpr>,
    executor: GuardedExecutor,
}

impl GuardedHarness {
    /// Runs the analysis at `level` and compiles the resulting runtime
    /// check (if any) for the kernel's compute nest.
    pub fn new(kernel: &dyn Kernel, level: AlgorithmLevel) -> GuardedHarness {
        let variant = variant_for(kernel, level);
        let report = decision_report(kernel, level);
        let check = report
            .function(kernel.func_name())
            .and_then(|f| f.last_nest_parallel())
            .and_then(|l| l.decision.plan())
            .and_then(|p| p.runtime_check.clone());
        let executor = GuardedExecutor::new(check.as_ref())
            .unwrap_or_else(|e| panic!("{}: check not executable: {e}", kernel.name()));
        GuardedHarness {
            variant,
            check,
            executor,
        }
    }

    /// The compile-time decision.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The structured check guarding the decision, if any.
    pub fn check(&self) -> Option<&CheckExpr> {
        self.check.as_ref()
    }

    /// Decision counters accumulated across runs.
    pub fn stats(&self) -> GuardStats {
        self.executor.stats()
    }

    /// Runs one invocation of the kernel under the guards.
    pub fn run(
        &self,
        inst: &mut dyn KernelInstance,
        pool: &ThreadPool,
        sched: Schedule,
    ) -> GuardedOutcome {
        if self.variant == Variant::Serial {
            // Nothing to guard: the analysis itself kept the loop serial.
            inst.run_serial();
            return GuardedOutcome {
                variant: self.variant,
                executed: Variant::Serial,
                path: GuardPath::Serial,
                reason: Some("analysis decision is serial".into()),
                checksum: inst.checksum(),
            };
        }
        let bindings = inst.runtime_bindings();
        let verdict = {
            let arrays = inst.index_arrays();
            self.executor.decide(&bindings, &arrays, Some(pool))
        };
        let executed = match verdict.path {
            GuardPath::Parallel => self.variant,
            GuardPath::Serial => Variant::Serial,
        };
        inst.run(executed, pool, sched);
        GuardedOutcome {
            variant: self.variant,
            executed,
            path: verdict.path,
            reason: verdict.reason,
            checksum: inst.checksum(),
        }
    }
}

/// One-shot convenience: analyze, prepare a dataset, run once guarded.
pub fn guarded_run(
    kernel: &dyn Kernel,
    dataset: &str,
    level: AlgorithmLevel,
    pool: &ThreadPool,
    sched: Schedule,
) -> GuardedOutcome {
    let harness = GuardedHarness::new(kernel, level);
    let mut inst = kernel.prepare(dataset);
    harness.run(inst.as_mut(), pool, sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsub_kernels::kernel_by_name;

    #[test]
    fn amgmk_guard_admits_parallel() {
        let pool = ThreadPool::new(3);
        let k = kernel_by_name("AMGmk").unwrap();
        let out = guarded_run(
            k.as_ref(),
            "test",
            AlgorithmLevel::New,
            &pool,
            Schedule::static_default(),
        );
        assert_eq!(out.path, GuardPath::Parallel);
        assert_eq!(out.executed, Variant::OuterParallel);
        assert!(out.reason.is_none());
    }

    #[test]
    fn repeated_runs_hit_the_cache() {
        let pool = ThreadPool::new(2);
        let k = kernel_by_name("SDDMM").unwrap();
        let harness = GuardedHarness::new(k.as_ref(), AlgorithmLevel::New);
        assert!(harness.check().is_some());
        let mut inst = k.prepare("test");
        harness.run(inst.as_mut(), &pool, Schedule::dynamic_default());
        inst.reset();
        harness.run(inst.as_mut(), &pool, Schedule::dynamic_default());
        let s = harness.stats();
        assert_eq!(s.parallel_runs, 2);
        assert!(
            s.cache.hits >= 1,
            "second run must revalidate from cache: {s:?}"
        );
    }

    #[test]
    fn serial_analysis_decision_short_circuits() {
        let pool = ThreadPool::new(2);
        // The IS histogram is serial at every level: no guard to consult.
        let is = kernel_by_name("IS").unwrap();
        let harness = GuardedHarness::new(is.as_ref(), AlgorithmLevel::New);
        assert_eq!(harness.variant(), Variant::Serial);
        assert!(harness.check().is_none());
        let mut inst = is.prepare(is.datasets()[0]);
        let out = harness.run(inst.as_mut(), &pool, Schedule::static_default());
        assert_eq!(out.path, GuardPath::Serial);
        assert_eq!(out.reason.as_deref(), Some("analysis decision is serial"));
    }
}
