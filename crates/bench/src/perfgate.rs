//! Perf-regression gate: a pinned micro-suite compared against a
//! committed baseline.
//!
//! The suite is small and deterministic by construction — fixed dataset
//! seeds, fixed thread count, serial kernel variants — so its medians
//! move only when the code's constant factors move. [`run_suite`] times
//! each entry with the adaptive [`crate::microbench::bench`] harness;
//! [`compare`] checks every median against `BENCH_baseline.json` with a
//! symmetric relative tolerance. CI fails on any *regression* (median
//! above baseline × (1 + tol)); an *improvement* beyond the band is
//! reported as a warning suggesting a baseline refresh, because a stale
//! too-slow baseline would mask future regressions.
//!
//! The tolerance is deliberately wide (±25%): the suite gates against
//! structural slowdowns (an accidentally-armed telemetry path, a lock on
//! the claim fast path), not scheduler jitter on shared CI hardware.

use crate::microbench::{bench, BenchStats};
use std::time::Duration;
use subsub_kernels::kernel_by_name;
use subsub_omprt::{Schedule, ThreadPool};
use subsub_rtcheck::{
    composed_verdict, inspect_serial, BlockSummaries, Provenance, ValidatedIndexArray,
};
use subsub_service::{AnalysisService, Payload, Request, ServiceConfig};
use subsub_telemetry::json::{parse, Json};

/// Symmetric relative tolerance band around each baseline median.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Threads used by the fork-join latency entry (pinned so the baseline
/// is comparable across runs).
pub const FORKJOIN_THREADS: usize = 4;

/// Elements scanned by the inspector-throughput entries.
pub const INSPECT_LEN: usize = 65_536;

/// Elements in the incremental re-inspection entry's array (1 Mi).
pub const REINSPECT_LEN: usize = 1 << 20;

/// Kernels timed serially (first dataset of each), chosen to cover the
/// structural families: sparse gather (AMGmk), sampled dense product
/// (SDDMM), a dense stencil (heat-3d), the two-level composed gather
/// (CSRoCSR), and the strided-recurrence scatter (StridedScatter).
pub const SUITE_KERNELS: &[&str] = &["AMGmk", "SDDMM", "heat-3d", "CSRoCSR", "StridedScatter"];

/// Requests per burst in the service-throughput entry.
pub const SERVICE_BURST: usize = 16;

/// Runs the pinned suite and returns one stats row per entry.
pub fn run_suite() -> Vec<BenchStats> {
    let mut out = Vec::new();

    let pool = ThreadPool::new(FORKJOIN_THREADS);
    out.push(bench("forkjoin/empty-region", || {
        pool.parallel_for(FORKJOIN_THREADS, Schedule::static_default(), |_| {});
    }));

    let ramp: Vec<usize> = (0..INSPECT_LEN).collect();
    out.push(bench("inspect/serial-65536", || {
        std::hint::black_box(inspect_serial(std::hint::black_box(&ramp)));
    }));

    // Fused single-pass ingest: domain scan + per-block fingerprint +
    // monotonicity summaries over one traversal (what `ingest` pays).
    out.push(bench("inspect/simd-65536", || {
        let s = BlockSummaries::build(std::hint::black_box(&ramp), INSPECT_LEN)
            .expect("ramp is in domain");
        std::hint::black_box(s.checksum());
    }));

    // Composed two-level verdict over two pre-ingested 65 Ki arrays:
    // O(blocks) summary recombination per level plus the domain-chain
    // test — the inspection cost the CSR-of-CSR rule pays per execution
    // once both levels are resident.
    let two_outer = ValidatedIndexArray::ingest(
        "perfgate-two-level-outer",
        (0..INSPECT_LEN).map(|i| 2 * i).collect::<Vec<usize>>(),
        2 * INSPECT_LEN,
        Provenance::Generated { seed: 0x5eed },
    )
    .expect("strided ramp is in domain");
    let two_inner = ValidatedIndexArray::ingest(
        "perfgate-two-level-inner",
        (0..INSPECT_LEN).collect::<Vec<usize>>(),
        INSPECT_LEN,
        Provenance::Generated { seed: 0x5eed },
    )
    .expect("ramp is in domain");
    out.push(bench("inspect/two-level-65536", || {
        std::hint::black_box(composed_verdict(
            std::hint::black_box(&two_outer),
            std::hint::black_box(&two_inner),
        ));
    }));

    // O(Δ) re-inspection: single-element mutate_range into a 1 Mi-element
    // array, verdict + checksum refreshed from summaries. Rewriting the
    // resident value keeps every iteration identical while still paying
    // the full dirty-window bookkeeping.
    let n = REINSPECT_LEN;
    let mut big = ValidatedIndexArray::ingest(
        "perfgate-1Mi",
        (0..n).collect::<Vec<usize>>(),
        n,
        Provenance::Generated { seed: 0x5eed },
    )
    .expect("ramp is in domain");
    out.push(bench("reinspect/delta-1Mi", || {
        let at = n / 2;
        let v = big.data()[at];
        big.mutate_range(at..at + 1, |w| w[0] = v)
            .expect("rewrite stays in domain");
        std::hint::black_box(big.summary_verdict());
    }));

    for name in SUITE_KERNELS {
        let kernel = kernel_by_name(name)
            .unwrap_or_else(|| panic!("suite kernel {name:?} missing from registry"));
        let dataset = kernel.datasets()[0];
        let mut inst = kernel.prepare(dataset);
        out.push(bench(&format!("kernel/{name}-serial"), || {
            inst.run_serial();
        }));
    }

    // Frontend throughput: lex + parse every kernel source in the
    // registry under the default budget. Guards the constant factors of
    // the hardened lexer/parser loops (span tracking, budget checks,
    // cancellation polls) against structural slowdowns.
    let sources: Vec<&'static str> = subsub_kernels::all_kernels()
        .iter()
        .map(|k| k.source())
        .collect();
    out.push(bench("cfront/parse-throughput", || {
        for src in &sources {
            let prog = subsub_cfront::parse_program_with(
                std::hint::black_box(src),
                &subsub_cfront::ParseBudget::DEFAULT,
            )
            .expect("registry kernel sources parse");
            std::hint::black_box(&prog);
        }
    }));

    // Service front-door entries, pinned small: one worker and a
    // single-thread pool so the medians track the submit → shard-cache
    // hit → dispatch constant factors, not scheduler jitter.
    let service = AnalysisService::start(ServiceConfig {
        workers: 1,
        pool_threads: 1,
        ..ServiceConfig::default()
    });
    let request = |client: String| Request {
        client,
        payload: Payload::Execute {
            kernel: "AMGmk".into(),
            dataset: "test".into(),
        },
        deadline: None,
    };
    // Warm the registry entry and the verdict cache so the timed path
    // is the steady-state hot hit.
    let warmup = service
        .submit(request("perfgate".into()))
        .expect("admitted")
        .wait();
    warmup.result.expect("warmup request must execute");
    out.push(bench("service/hot-hit", || {
        let response = service
            .submit(request("perfgate".into()))
            .expect("admitted")
            .wait();
        std::hint::black_box(&response);
    }));
    // Same hot hit with a (generous) deadline attached: the lifecycle
    // machinery — doom stamping, cancel-token plumbing, janitor
    // coexistence — must not tax the steady-state path.
    out.push(bench("service/hot-hit-deadline", || {
        let response = service
            .submit(request("perfgate".into()).with_deadline(Duration::from_secs(30)))
            .expect("admitted")
            .wait();
        std::hint::black_box(&response);
    }));
    out.push(bench("service/throughput-16", || {
        let tickets: Vec<_> = (0..SERVICE_BURST)
            .map(|i| {
                service
                    .submit(request(format!("burst-{}", i % 4)))
                    .expect("admitted")
            })
            .collect();
        for t in tickets {
            std::hint::black_box(&t.wait());
        }
    }));
    service.shutdown();
    out
}

/// Renders suite results as the committed baseline document.
pub fn baseline_json(results: &[BenchStats]) -> String {
    let entries = results
        .iter()
        .map(|s| format!("{{\"name\":\"{}\",\"median_ns\":{}}}", s.name, s.median_ns))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"schema\":\"subsub-perfgate/v1\",\"tolerance\":{DEFAULT_TOLERANCE},\"benches\":[{entries}]}}")
}

/// Parses a baseline document into `(name, median_ns)` rows.
pub fn parse_baseline(doc: &str) -> Result<Vec<(String, u64)>, String> {
    let root = parse(doc).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    match root.get("schema").and_then(Json::as_str) {
        Some("subsub-perfgate/v1") => {}
        other => return Err(format!("unexpected baseline schema {other:?}")),
    }
    let benches = root
        .get("benches")
        .and_then(Json::as_array)
        .ok_or("baseline has no \"benches\" array")?;
    let mut out = Vec::with_capacity(benches.len());
    for b in benches {
        let name = b
            .get("name")
            .and_then(Json::as_str)
            .ok_or("bench entry missing \"name\"")?;
        let median = b
            .get("median_ns")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("bench {name:?} missing integer \"median_ns\""))?;
        out.push((name.to_string(), median));
    }
    Ok(out)
}

/// Outcome of one suite entry against the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// Within the tolerance band.
    Ok,
    /// Faster than baseline × (1 − tol): not a failure, but the
    /// baseline is stale enough to mask future regressions.
    Improved,
    /// Slower than baseline × (1 + tol): fails the gate.
    Regressed,
    /// Present in the suite but absent from the baseline: fails the
    /// gate (the baseline must be refreshed when the suite grows).
    Missing,
}

/// One row of the gate report.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Suite entry name.
    pub name: String,
    /// Baseline median (ns/iter), when the entry was found.
    pub baseline_ns: Option<u64>,
    /// Measured median (ns/iter).
    pub current_ns: u64,
    /// Verdict for this entry.
    pub status: GateStatus,
}

impl GateRow {
    /// current / baseline, when a baseline exists.
    pub fn ratio(&self) -> Option<f64> {
        self.baseline_ns
            .map(|b| self.current_ns as f64 / (b.max(1)) as f64)
    }
}

/// Compares measured medians against the baseline with a symmetric
/// relative tolerance.
pub fn compare(results: &[BenchStats], baseline: &[(String, u64)], tolerance: f64) -> Vec<GateRow> {
    results
        .iter()
        .map(|s| {
            let current_ns = u64::try_from(s.median_ns).unwrap_or(u64::MAX);
            let baseline_ns = baseline.iter().find(|(n, _)| *n == s.name).map(|(_, m)| *m);
            let status = match baseline_ns {
                None => GateStatus::Missing,
                Some(base) => {
                    let base = base.max(1) as f64;
                    let cur = current_ns as f64;
                    if cur > base * (1.0 + tolerance) {
                        GateStatus::Regressed
                    } else if cur < base * (1.0 - tolerance) {
                        GateStatus::Improved
                    } else {
                        GateStatus::Ok
                    }
                }
            };
            GateRow {
                name: s.name.clone(),
                baseline_ns,
                current_ns,
                status,
            }
        })
        .collect()
}

/// Whether a comparison passes the gate (regressions and missing
/// baselines fail; improvements only warn).
pub fn passes(rows: &[GateRow]) -> bool {
    rows.iter()
        .all(|r| !matches!(r.status, GateStatus::Regressed | GateStatus::Missing))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(name: &str, median_ns: u128) -> BenchStats {
        BenchStats {
            name: name.to_string(),
            iters: 1,
            min_ns: median_ns,
            median_ns,
            p90_ns: median_ns,
            samples_ns: vec![median_ns],
        }
    }

    #[test]
    fn baseline_roundtrips_through_the_parser() {
        let doc = baseline_json(&[stats("a", 100), stats("b", 2_000_000)]);
        let parsed = parse_baseline(&doc).expect("roundtrip");
        assert_eq!(
            parsed,
            vec![("a".to_string(), 100), ("b".to_string(), 2_000_000)]
        );
    }

    #[test]
    fn tolerance_band_classifies_all_four_ways() {
        let baseline = vec![
            ("ok".to_string(), 1000u64),
            ("fast".to_string(), 1000),
            ("slow".to_string(), 1000),
        ];
        let rows = compare(
            &[
                stats("ok", 1100),
                stats("fast", 500),
                stats("slow", 1500),
                stats("new", 10),
            ],
            &baseline,
            0.25,
        );
        assert_eq!(rows[0].status, GateStatus::Ok);
        assert_eq!(rows[1].status, GateStatus::Improved);
        assert_eq!(rows[2].status, GateStatus::Regressed);
        assert_eq!(rows[3].status, GateStatus::Missing);
        assert!(!passes(&rows));
        assert!(passes(&rows[..2]));
    }

    #[test]
    fn band_edges_are_inclusive() {
        let baseline = vec![("x".to_string(), 1000u64)];
        // Exactly on the upper edge (1250) and lower edge (750): inside.
        assert_eq!(
            compare(&[stats("x", 1250)], &baseline, 0.25)[0].status,
            GateStatus::Ok
        );
        assert_eq!(
            compare(&[stats("x", 750)], &baseline, 0.25)[0].status,
            GateStatus::Ok
        );
    }

    #[test]
    fn malformed_baseline_is_rejected() {
        assert!(parse_baseline("not json").is_err());
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"schema\":\"other/v9\",\"benches\":[]}").is_err());
        assert!(parse_baseline(
            "{\"schema\":\"subsub-perfgate/v1\",\"benches\":[{\"name\":\"a\"}]}"
        )
        .is_err());
    }
}
