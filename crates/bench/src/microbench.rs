//! A minimal self-contained micro-benchmark harness (criterion substitute,
//! so the workspace builds without registry access). Adaptive iteration
//! counts, warmup, and median-of-samples reporting — enough fidelity for
//! the relative comparisons the bench binaries make.

use std::time::{Duration, Instant};

/// Target measurement time per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Number of measured samples per benchmark.
const SAMPLES: usize = 7;

/// Summary statistics for one benchmark, in nanoseconds per iteration.
///
/// Returned by [`bench`] so callers can act on measurements (emit JSON,
/// compare variants, gate CI) instead of scraping stdout.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark name as printed.
    pub name: String,
    /// Iterations per sample (adaptively chosen).
    pub iters: u64,
    /// Fastest sample (ns/iter).
    pub min_ns: u128,
    /// Median sample (ns/iter) — the headline number.
    pub median_ns: u128,
    /// 90th-percentile sample (ns/iter).
    pub p90_ns: u128,
    /// All samples (ns/iter), sorted ascending.
    pub samples_ns: Vec<u128>,
}

impl BenchStats {
    /// The stats as one flat JSON object (hand-rolled: the workspace has
    /// no serde). The key names match what `MachineCalibration`-style
    /// scanners and the `BENCH_*.json` consumers expect.
    pub fn to_json(&self) -> String {
        let samples = self
            .samples_ns
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"name\":\"{}\",\"iters\":{},\"min_ns\":{},\"median_ns\":{},\"p90_ns\":{},\"samples_ns\":[{}]}}",
            self.name.replace('"', "'"),
            self.iters,
            self.min_ns,
            self.median_ns,
            self.p90_ns,
            samples
        )
    }
}

/// Times one closure, prints the median per-iteration latency, and
/// returns the full stats.
pub fn bench(name: &str, mut f: impl FnMut()) -> BenchStats {
    // Warmup + calibration: find an iteration count filling the sample
    // window.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let el = t.elapsed();
        if el >= SAMPLE_TARGET / 4 || iters >= 1 << 20 {
            let per = el.as_nanos().max(1) / iters as u128;
            let want = (SAMPLE_TARGET.as_nanos() / per).max(1);
            iters = want.min(1 << 20) as u64;
            break;
        }
        iters *= 4;
    }
    let mut samples: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() / iters as u128
        })
        .collect();
    samples.sort_unstable();
    let stats = BenchStats {
        name: name.to_string(),
        iters,
        min_ns: samples[0],
        median_ns: samples[SAMPLES / 2],
        p90_ns: samples[(SAMPLES * 9) / 10],
        samples_ns: samples,
    };
    println!(
        "{name:<48} {:>12}/iter  ({iters} iters/sample)",
        fmt_ns(stats.median_ns)
    );
    stats
}

/// Runs a set of named benchmarks and returns them as one JSON document
/// (`{"benches":[...]}`), suitable for writing to a `BENCH_*.json` file.
pub fn bench_json(benches: Vec<BenchStats>) -> String {
    let items = benches
        .iter()
        .map(BenchStats::to_json)
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"benches\":[{items}]}}")
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        // Smoke test: must terminate quickly for a trivial closure.
        let mut n = 0u64;
        let stats = bench("noop", || n = n.wrapping_add(1));
        assert!(n > 0);
        assert_eq!(stats.samples_ns.len(), SAMPLES);
        assert!(stats.min_ns <= stats.median_ns);
        assert!(stats.median_ns <= stats.p90_ns);
        assert!(stats.iters > 0);
    }

    #[test]
    fn bench_json_is_machine_readable() {
        let stats = BenchStats {
            name: "x".into(),
            iters: 10,
            min_ns: 1,
            median_ns: 2,
            p90_ns: 3,
            samples_ns: vec![1, 2, 3],
        };
        let doc = bench_json(vec![stats]);
        assert!(doc.starts_with("{\"benches\":["));
        assert!(doc.contains("\"median_ns\":2"));
        assert!(doc.contains("\"samples_ns\":[1,2,3]"));
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(5), "5 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
