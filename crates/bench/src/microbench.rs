//! A minimal self-contained micro-benchmark harness (criterion substitute,
//! so the workspace builds without registry access). Adaptive iteration
//! counts, warmup, and median-of-samples reporting — enough fidelity for
//! the relative comparisons the bench binaries make.

use std::time::{Duration, Instant};

/// Target measurement time per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);
/// Number of measured samples per benchmark.
const SAMPLES: usize = 7;

/// Times one closure and reports the median per-iteration latency.
pub fn bench(name: &str, mut f: impl FnMut()) {
    // Warmup + calibration: find an iteration count filling the sample
    // window.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let el = t.elapsed();
        if el >= SAMPLE_TARGET / 4 || iters >= 1 << 20 {
            let per = el.as_nanos().max(1) / iters as u128;
            let want = (SAMPLE_TARGET.as_nanos() / per).max(1);
            iters = want.min(1 << 20) as u64;
            break;
        }
        iters *= 4;
    }
    let mut samples: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() / iters as u128
        })
        .collect();
    samples.sort_unstable();
    let median = samples[SAMPLES / 2];
    println!(
        "{name:<48} {:>12}/iter  ({iters} iters/sample)",
        fmt_ns(median)
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        // Smoke test: must terminate quickly for a trivial closure.
        let mut n = 0u64;
        bench("noop", || n = n.wrapping_add(1));
        assert!(n > 0);
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(5), "5 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
