//! Analysis-to-variant mapping: runs the compile-time pipeline on a
//! kernel's C source and selects the execution strategy its decision
//! implies.

use subsub_core::{analyze_program, AlgorithmLevel, ProgramReport};
use subsub_kernels::{Kernel, Variant};

/// Runs the analysis at `level` and maps the decision for the kernel's
/// compute nest (the last top-level nest — fills precede it under the
/// paper's inline-expansion methodology) to a [`Variant`].
pub fn variant_for(kernel: &dyn Kernel, level: AlgorithmLevel) -> Variant {
    let report = analyze_program(kernel.source(), level)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    let f = report
        .function(kernel.func_name())
        .unwrap_or_else(|| panic!("{}: function missing", kernel.name()));
    match f.last_nest_parallel() {
        None => Variant::Serial,
        Some(l) if l.depth == 0 => Variant::OuterParallel,
        Some(_) => Variant::InnerParallel,
    }
}

/// The full analysis report (for the `analyze` binary and examples).
pub fn decision_report(kernel: &dyn Kernel, level: AlgorithmLevel) -> ProgramReport {
    analyze_program(kernel.source(), level).unwrap_or_else(|e| panic!("{}: {e}", kernel.name()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsub_kernels::kernel_by_name;

    #[test]
    fn amgmk_variants_per_level() {
        let k = kernel_by_name("AMGmk").unwrap();
        assert_eq!(
            variant_for(k.as_ref(), AlgorithmLevel::Classic),
            Variant::InnerParallel
        );
        assert_eq!(
            variant_for(k.as_ref(), AlgorithmLevel::Base),
            Variant::InnerParallel
        );
        assert_eq!(
            variant_for(k.as_ref(), AlgorithmLevel::New),
            Variant::OuterParallel
        );
    }
}
