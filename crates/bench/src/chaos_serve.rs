//! Chaos at the service layer: seeded failpoint schedules over the
//! multi-client serve workload, exercising the request lifecycle end to
//! end — admission faults, worker dispatch deaths, single-flight leader
//! panics, kernel-body panics, frontend lex/parse faults, and snapshot
//! save/rotate/load faults — while clients mix plain requests with
//! short deadlines, abandoned tickets, and a fuzz client streaming
//! malformed C sources through `AnalyzeSource` (which must always
//! settle as typed `Rejected`, never as a worker fault or a quarantine
//! strike).
//!
//! The acceptance invariant mirrors the kernel-level chaos sweep one
//! layer up. Whatever fires, every submitted request must settle in one
//! of the typed terminal states (`Ok`, `Shed`, `Expired`, `Abandoned`,
//! or a *classified* `Failed`) within a bounded interval:
//!
//! * no wedge — no kept ticket waits out its 60 s harness timeout;
//! * no divergence — every `Ok` execution matches the kernel's serial
//!   golden checksum;
//! * no lockout — once the storm ends, a fresh client is admitted for
//!   every mix entry (quarantined identities must re-admit via their
//!   serial probe within the backoff ladder's bounded delay);
//! * crash-consistent persistence — after shutdown, recovery from the
//!   snapshot directory never panics and never loads a partial
//!   generation.
//!
//! Every run is reproducible from its seed (`ci.sh full` step
//! `chaos-serve` sweeps [`CHAOS_SERVE_SEEDS`]).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use subsub_core::AlgorithmLevel;
use subsub_failpoint::{self as failpoint, Arm, FailPlan};
use subsub_kernels::common::close;
use subsub_service::{
    AnalysisService, Outcome, Payload, QuarantineConfig, Request, ServiceConfig, ServiceError,
    ShardedVerdictCache, ShedReason, SnapshotStore,
};
use subsub_sparse::rng::Rng64;

use crate::serve::SERVE_MIX;

/// Service-layer failpoint sites with the arms a schedule may legally
/// draw. Panic arms are allowed only where a `catch_unwind` is
/// guaranteed above the site (worker dispatch, single-flight leader,
/// kernel body — all under the worker's or executor's containment);
/// client-thread and janitor-persistence sites are restricted to
/// error/corrupt/delay, which their callers absorb as typed failures.
pub const CHAOS_SERVE_SITES: &[(&str, &[Arm])] = &[
    // Admission path, hit on the client thread under the queue lock.
    ("service.queue.push", &[Arm::Error, Arm::Delay(1)]),
    // Worker dispatch boundary (under the worker's catch_unwind).
    ("service.worker.dispatch", &[Arm::Panic, Arm::Delay(1)]),
    // Single-flight inspection leader (FlightGuard clears the marker on
    // unwind; the panic lands in the worker's catch_unwind).
    ("service.flight.leader", &[Arm::Panic, Arm::Delay(1)]),
    // Parallel kernel body (under the executor's catch_unwind).
    ("service.kernel.parallel", &[Arm::Panic, Arm::Delay(1)]),
    // Snapshot persistence: aborted saves, torn writes, mid-rotation
    // crashes, blocked head reads.
    (
        "service.snapshot.save",
        &[Arm::Error, Arm::Corrupt, Arm::Delay(1)],
    ),
    (
        "service.snapshot.rotate",
        &[Arm::Error, Arm::Corrupt, Arm::Delay(1)],
    ),
    (
        "service.snapshot.load",
        &[Arm::Error, Arm::Corrupt, Arm::Delay(1)],
    ),
    // Frontend lex/parse, hit on a worker thread while it analyzes an
    // `AnalyzeSource` payload. Error injects a typed `injected-fault`
    // diagnostic (a Rejected response, never a worker fault); Panic is
    // deliberately excluded — the frontend's contract is that it never
    // panics, so an injected panic would fail the storm for the wrong
    // reason.
    ("cfront.lex", &[Arm::Error, Arm::Delay(1)]),
    ("cfront.parse", &[Arm::Error, Arm::Delay(1)]),
];

/// Sources the frontend fuzz client streams during the storm, tagged
/// with whether the frontend accepts them when no fault is injected.
const FUZZ_SOURCES: &[(&str, bool)] = &[
    (
        "void f(int n, int *a) { int i; for (i = 0; i < n; i++) a[i] = i; }",
        true,
    ),
    ("void f() { x = 1; }", true),
    ("void f( {", false),
    ("void f() { x = ; }", false),
    ("void f() { /* unterminated", false),
    ("void f() { x = 1e999; }", false),
    ("}{)(", false),
];

/// The pinned seeds CI sweeps (`ci.sh full` step `chaos-serve`).
pub const CHAOS_SERVE_SEEDS: &[u64] = &[29, 8181, 424_243];

/// Shape of one chaos-serve storm.
#[derive(Debug, Clone)]
pub struct ChaosServeConfig {
    /// Storm seed (failpoint schedule + client streams derive from it).
    pub seed: u64,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Snapshot directory (a scratch dir is derived when `None`).
    pub snapshot_dir: Option<PathBuf>,
}

impl Default for ChaosServeConfig {
    fn default() -> ChaosServeConfig {
        ChaosServeConfig {
            seed: CHAOS_SERVE_SEEDS[0],
            clients: 6,
            requests_per_client: 12,
            snapshot_dir: None,
        }
    }
}

/// Everything one storm produced.
#[derive(Debug, Clone)]
pub struct ChaosServeReport {
    /// The storm's seed.
    pub seed: u64,
    /// Requests that completed `Ok` with a golden-matching checksum.
    pub ok: u64,
    /// Requests shed at admission (typed, immediate).
    pub shed: u64,
    /// Typed `Expired` responses.
    pub expired: u64,
    /// Tickets deliberately abandoned by their clients.
    pub abandoned: u64,
    /// Classified terminal `Failed` responses (injected faults that
    /// exhausted the serial rescue — typed, not violations).
    pub classified_failures: u64,
    /// Fuzz-client sources answered `Ok(Analyzed)`.
    pub sources_ok: u64,
    /// Fuzz-client sources answered with a typed `Rejected` (the
    /// expected state for malformed input and injected frontend faults).
    pub sources_rejected: u64,
    /// Sites whose rules actually fired during the storm.
    pub fired_sites: Vec<String>,
    /// What recovery found on disk after shutdown.
    pub recovered_entries: usize,
    /// Wall-clock of the armed storm phase.
    pub storm: Duration,
    /// Invariant violations; empty means the storm passed.
    pub violations: Vec<String>,
}

impl ChaosServeReport {
    /// Did the storm uphold every invariant?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let fired: Vec<String> = self
            .fired_sites
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect();
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('"', "'")))
            .collect();
        format!(
            "{{\n  \"seed\": {},\n  \"ok\": {},\n  \"shed\": {},\n  \"expired\": {},\n  \
             \"abandoned\": {},\n  \"classified_failures\": {},\n  \"sources_ok\": {},\n  \
             \"sources_rejected\": {},\n  \"fired_sites\": [{}],\n  \
             \"recovered_entries\": {},\n  \"storm_ms\": {},\n  \"violations\": [{}]\n}}",
            self.seed,
            self.ok,
            self.shed,
            self.expired,
            self.abandoned,
            self.classified_failures,
            self.sources_ok,
            self.sources_rejected,
            fired.join(", "),
            self.recovered_entries,
            self.storm.as_millis(),
            violations.join(", ")
        )
    }
}

fn sub_seed(seed: u64, tag: &str) -> u64 {
    tag.bytes().fold(seed ^ 0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3)
    })
}

fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("subsub-chaos-serve-{}-{seed}", std::process::id()))
}

fn execute(kernel: &str, dataset: &str, client: &str) -> Request {
    Request::new(
        client,
        Payload::Execute {
            kernel: kernel.into(),
            dataset: dataset.into(),
        },
    )
}

struct StormCounters {
    ok: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    abandoned: AtomicU64,
    classified_failures: AtomicU64,
    divergences: AtomicU64,
    wedged: AtomicU64,
    unclassified: AtomicU64,
    sources_ok: AtomicU64,
    sources_rejected: AtomicU64,
    source_misroutes: AtomicU64,
}

/// Runs one seeded chaos-serve storm.
pub fn chaos_serve_storm(cfg: &ChaosServeConfig) -> ChaosServeReport {
    failpoint::silence_injected_panics();
    let seed = cfg.seed;
    let dir = cfg
        .snapshot_dir
        .clone()
        .unwrap_or_else(|| scratch_dir(seed));
    let scratch = cfg.snapshot_dir.is_none();
    let mut violations = Vec::new();

    let service = Arc::new(AnalysisService::start(ServiceConfig {
        workers: 3,
        pool_threads: 2,
        queue_capacity: 32,
        fairness_cap: 4,
        quarantine: QuarantineConfig {
            backoff_base: Duration::from_millis(20),
            ..QuarantineConfig::default()
        },
        snapshot_dir: Some(dir.clone()),
        autosave_dirty: 2,
        ..ServiceConfig::default()
    }));
    // Goldens are computed unarmed: chaos targets the service machinery,
    // not the reference results.
    let goldens: HashMap<(String, String), f64> = SERVE_MIX
        .iter()
        .map(|(k, d)| {
            let golden = service.golden_checksum(k, d).expect("registered kernel");
            ((k.to_string(), d.to_string()), golden)
        })
        .collect();

    let counters = Arc::new(StormCounters {
        ok: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        expired: AtomicU64::new(0),
        abandoned: AtomicU64::new(0),
        classified_failures: AtomicU64::new(0),
        divergences: AtomicU64::new(0),
        wedged: AtomicU64::new(0),
        unclassified: AtomicU64::new(0),
        sources_ok: AtomicU64::new(0),
        sources_rejected: AtomicU64::new(0),
        source_misroutes: AtomicU64::new(0),
    });

    let plan = FailPlan::seeded(sub_seed(seed, "serve-storm"), CHAOS_SERVE_SITES);
    let planned = plan.sites();
    let storm_started = Instant::now();
    let fired_sites: Vec<String> = {
        let _armed = failpoint::arm(plan);
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let service = Arc::clone(&service);
                let counters = Arc::clone(&counters);
                let goldens = goldens.clone();
                let requests = cfg.requests_per_client;
                let mut rng = Rng64::seed_from_u64(sub_seed(seed, &format!("client-{c}")));
                std::thread::spawn(move || {
                    let client = format!("chaos-client-{c}");
                    for _ in 0..requests {
                        let (kernel, dataset) = SERVE_MIX[rng.gen_usize(0, SERVE_MIX.len() - 1)];
                        let style = rng.gen_usize(0, 3);
                        let mut request = execute(kernel, dataset, &client);
                        // Style 1: a deadline tight enough that some
                        // requests expire mid-flight under injected
                        // delays; style 2: an abandoned ticket.
                        if style == 1 {
                            request = request
                                .with_deadline(Duration::from_millis(rng.gen_usize(1, 20) as u64));
                        }
                        let ticket = match service.submit(request) {
                            Ok(t) => t,
                            Err(_) => {
                                counters.shed.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        };
                        if style == 2 {
                            // Abandon: drop without receiving. The
                            // lifecycle must settle it without us.
                            counters.abandoned.fetch_add(1, Ordering::Relaxed);
                            drop(ticket);
                            continue;
                        }
                        let Some(response) = ticket.wait_timeout(Duration::from_secs(60)) else {
                            counters.wedged.fetch_add(1, Ordering::Relaxed);
                            continue;
                        };
                        match response.result {
                            Ok(Outcome::Executed { checksum, .. }) => {
                                let golden = goldens[&(kernel.to_string(), dataset.to_string())];
                                if close(checksum, golden) {
                                    counters.ok.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    counters.divergences.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Ok(_) => {
                                counters.ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServiceError::Expired) => {
                                counters.expired.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServiceError::Shed(_)) => {
                                counters.shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServiceError::Failed(_)) => {
                                counters.classified_failures.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(
                                ServiceError::Abandoned
                                | ServiceError::Canceled
                                | ServiceError::Rejected { .. }
                                | ServiceError::UnknownKernel { .. },
                            ) => {
                                // A kept ticket must never see these.
                                counters.unclassified.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        // Frontend fuzz client: streams malformed and well-formed
        // sources through `AnalyzeSource` while the storm rages. Every
        // response must be a typed terminal state; `Failed` on a source
        // payload would mean the client's own bad input read as a
        // worker fault.
        let fuzz_handle = {
            let service = Arc::clone(&service);
            let counters = Arc::clone(&counters);
            let mut rng = Rng64::seed_from_u64(sub_seed(seed, "fuzz-client"));
            let rounds = cfg.requests_per_client * 2;
            std::thread::spawn(move || {
                for _ in 0..rounds {
                    let (source, _ok) = FUZZ_SOURCES[rng.gen_usize(0, FUZZ_SOURCES.len() - 1)];
                    let request = Request::new(
                        "chaos-fuzz",
                        Payload::AnalyzeSource {
                            source: source.to_string(),
                            level: AlgorithmLevel::New,
                        },
                    );
                    let ticket = match service.submit(request) {
                        Ok(t) => t,
                        Err(_) => {
                            counters.shed.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    let Some(response) = ticket.wait_timeout(Duration::from_secs(60)) else {
                        counters.wedged.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    match response.result {
                        Ok(_) => {
                            counters.sources_ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServiceError::Rejected { code, .. }) => {
                            if code.is_empty() {
                                counters.source_misroutes.fetch_add(1, Ordering::Relaxed);
                            } else {
                                counters.sources_rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(ServiceError::Expired) => {
                            counters.expired.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServiceError::Shed(_)) => {
                            counters.shed.fetch_add(1, Ordering::Relaxed);
                        }
                        // An injected *service* fault (worker dispatch
                        // panic) can fail any payload mid-storm; the
                        // "bad input never reads as a worker fault"
                        // invariant is asserted disarmed, post-storm.
                        Err(ServiceError::Failed(_)) => {
                            counters.classified_failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            counters.source_misroutes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        };
        for h in handles.into_iter().chain(std::iter::once(fuzz_handle)) {
            if h.join().is_err() {
                violations.push(format!("[seed {seed}] a client thread panicked"));
            }
        }
        planned
            .into_iter()
            .filter(|s| failpoint::fired(s) > 0)
            .collect()
    };
    let storm = storm_started.elapsed();

    // Post-storm (disarmed): no lockout. Every mix identity must
    // re-admit for a fresh client — quarantined ones via their serial
    // probe within the backoff ladder's bounded delay.
    for (kernel, dataset) in SERVE_MIX {
        let golden = goldens[&(kernel.to_string(), dataset.to_string())];
        let mut settled = false;
        for _attempt in 0..200 {
            match service.submit(execute(kernel, dataset, "post-storm")) {
                Ok(t) => {
                    let Some(response) = t.wait_timeout(Duration::from_secs(60)) else {
                        violations
                            .push(format!("[seed {seed}] {kernel}: post-storm ticket wedged"));
                        settled = true;
                        break;
                    };
                    match response.result {
                        Ok(Outcome::Executed { checksum, .. }) => {
                            if !close(checksum, golden) {
                                violations.push(format!(
                                    "[seed {seed}] {kernel}: post-storm divergence \
                                     ({checksum} != {golden})"
                                ));
                            }
                            settled = true;
                            break;
                        }
                        Ok(_) => {
                            settled = true;
                            break;
                        }
                        Err(e) => {
                            violations.push(format!(
                                "[seed {seed}] {kernel}: post-storm request failed: {e}"
                            ));
                            settled = true;
                            break;
                        }
                    }
                }
                Err(ShedReason::Quarantined) => {
                    // Expected for identities struck during the storm:
                    // wait out the probe backoff and retry.
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(other) => {
                    violations.push(format!(
                        "[seed {seed}] {kernel}: post-storm shed {other:?} after disarm"
                    ));
                    settled = true;
                    break;
                }
            }
        }
        if !settled {
            violations.push(format!(
                "[seed {seed}] {kernel}: still locked out 200 attempts after the storm"
            ));
        }
    }

    // Post-storm frontend trust boundary (disarmed): malformed source
    // rejects typed, strikes nothing, and leaves the client admitted;
    // an oversized body is shed at the door; a valid source analyzes.
    let bad_payload = Payload::AnalyzeSource {
        source: "void f( {".to_string(),
        level: AlgorithmLevel::New,
    };
    for round in 0..2 {
        match service
            .submit(Request::new("post-storm-frontend", bad_payload.clone()))
            .ok()
            .and_then(|t| t.wait_timeout(Duration::from_secs(60)))
        {
            Some(response) => match response.result {
                Err(ServiceError::Rejected { code, .. }) if !code.is_empty() => {}
                other => violations.push(format!(
                    "[seed {seed}] malformed source round {round} not typed-rejected: {other:?}"
                )),
            },
            None => violations.push(format!(
                "[seed {seed}] malformed source round {round} shed or wedged after disarm"
            )),
        }
    }
    if service.is_quarantined(&bad_payload) {
        violations.push(format!(
            "[seed {seed}] malformed source was quarantined (client input read as worker fault)"
        ));
    }
    let oversized = Request::new(
        "post-storm-frontend",
        Payload::AnalyzeSource {
            source: "x".repeat(ServiceConfig::default().parse_budget.max_input_bytes + 1),
            level: AlgorithmLevel::New,
        },
    );
    match service.submit(oversized) {
        Err(ShedReason::OverBudget) => {}
        other => violations.push(format!(
            "[seed {seed}] oversized source not shed OverBudget: {:?}",
            other.map(|_| "admitted")
        )),
    }
    match service
        .submit(Request::new(
            "post-storm-frontend",
            Payload::AnalyzeSource {
                source: FUZZ_SOURCES[0].0.to_string(),
                level: AlgorithmLevel::New,
            },
        ))
        .ok()
        .and_then(|t| t.wait_timeout(Duration::from_secs(60)))
    {
        Some(response) => {
            if !matches!(response.result, Ok(Outcome::Analyzed(_))) {
                violations.push(format!(
                    "[seed {seed}] valid source failed to analyze after disarm"
                ));
            }
        }
        None => violations.push(format!(
            "[seed {seed}] valid source shed or wedged after disarm"
        )),
    }

    let final_entries = service.stats().cache.entries;
    service.shutdown();
    drop(service);

    // Crash-consistency: whatever the storm did to the snapshot
    // directory, recovery must find a verified generation or start cold
    // — never panic, never load partially.
    let recovered_entries = {
        let recovered = catch_unwind(AssertUnwindSafe(|| {
            let store = SnapshotStore::open(&dir).expect("reopen snapshot dir");
            let cache = ShardedVerdictCache::new(4, 256);
            let r = store.recover(&cache);
            (r.entries(), cache.stats().entries)
        }));
        match recovered {
            Ok((entries, loaded)) => {
                if entries != loaded as usize {
                    violations.push(format!(
                        "[seed {seed}] partial recovery: reported {entries}, loaded {loaded}"
                    ));
                }
                // Shutdown persists a final unarmed generation, so a
                // cache that learned anything must recover non-cold.
                if final_entries > 0 && entries == 0 {
                    violations.push(format!(
                        "[seed {seed}] shutdown save lost: {final_entries} live entries, \
                         cold recovery"
                    ));
                }
                entries
            }
            Err(_) => {
                violations.push(format!("[seed {seed}] recovery panicked"));
                0
            }
        }
    };
    if scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let divergences = counters.divergences.load(Ordering::Relaxed);
    if divergences > 0 {
        violations.push(format!(
            "[seed {seed}] {divergences} checksum divergences from the golden path"
        ));
    }
    let wedged = counters.wedged.load(Ordering::Relaxed);
    if wedged > 0 {
        violations.push(format!("[seed {seed}] {wedged} kept tickets wedged"));
    }
    let unclassified = counters.unclassified.load(Ordering::Relaxed);
    if unclassified > 0 {
        violations.push(format!(
            "[seed {seed}] {unclassified} kept tickets saw lifecycle errors meant for \
             abandoned or doomed requests"
        ));
    }
    if counters.ok.load(Ordering::Relaxed) == 0 {
        violations.push(format!("[seed {seed}] no request completed successfully"));
    }
    let source_misroutes = counters.source_misroutes.load(Ordering::Relaxed);
    if source_misroutes > 0 {
        violations.push(format!(
            "[seed {seed}] {source_misroutes} source payloads settled outside the typed \
             reject/analyze states"
        ));
    }

    ChaosServeReport {
        seed,
        ok: counters.ok.load(Ordering::Relaxed),
        shed: counters.shed.load(Ordering::Relaxed),
        expired: counters.expired.load(Ordering::Relaxed),
        abandoned: counters.abandoned.load(Ordering::Relaxed),
        classified_failures: counters.classified_failures.load(Ordering::Relaxed),
        sources_ok: counters.sources_ok.load(Ordering::Relaxed),
        sources_rejected: counters.sources_rejected.load(Ordering::Relaxed),
        fired_sites,
        recovered_entries,
        storm,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_table_restricts_unprotected_paths() {
        for (site, arms) in CHAOS_SERVE_SITES {
            if site.starts_with("service.queue") || site.starts_with("service.snapshot") {
                assert!(
                    !arms.contains(&Arm::Panic),
                    "{site} is hit outside a guaranteed catch_unwind; Panic would abort"
                );
            }
            if site.starts_with("cfront.") {
                assert!(
                    !arms.contains(&Arm::Panic),
                    "{site}: the frontend's contract is panic-freedom; inject typed faults only"
                );
            }
        }
    }

    #[test]
    fn sub_seeds_differ_per_tag() {
        assert_ne!(sub_seed(3, "client-0"), sub_seed(3, "client-1"));
        assert_eq!(sub_seed(3, "serve-storm"), sub_seed(3, "serve-storm"));
    }

    /// One pinned-seed storm end to end (small enough for the tier-1
    /// test suite; the full sweep runs in `ci.sh full`).
    #[test]
    fn pinned_seed_storm_upholds_the_invariants() {
        let report = chaos_serve_storm(&ChaosServeConfig {
            seed: CHAOS_SERVE_SEEDS[0],
            clients: 4,
            requests_per_client: 6,
            snapshot_dir: None,
        });
        assert!(
            report.ok(),
            "chaos-serve violations: {:?}",
            report.violations
        );
    }
}
