//! The incremental re-inspection workload: O(Δ) `mutate_range` against
//! the full re-ingest + full-scan reference it replaces.
//!
//! The scenario is the paper's steady-state loop with a twist the block
//! summaries exist for: between kernel invocations the application
//! writes a handful of entries into a large index array. Before PR 7
//! every such write invalidated the whole trust chain — re-validate the
//! domain O(n), re-fingerprint O(n), re-inspect O(n). With block
//! summaries the same write costs one ~4 Ki-element block rescan plus an
//! O(blocks) verdict/checksum recombine, independent of the array size.
//!
//! [`run_reinspect_workload`] times both paths on the same 1 Mi-element
//! array and reports the ratio; the `reinspect` bin gates CI on the
//! acceptance floor (incremental ≥ [`MIN_SPEEDUP`]× faster) and on the
//! two paths agreeing about verdict and checksum.

use crate::microbench::{bench, BenchStats};
use subsub_rtcheck::{inspect_serial, BlockSummaries, Provenance, ValidatedIndexArray};

/// Elements in the workload array (1 Mi).
pub const REINSPECT_LEN: usize = 1 << 20;

/// Acceptance floor: the incremental path must beat the full
/// re-ingest + full-scan reference by at least this factor.
pub const MIN_SPEEDUP: f64 = 20.0;

/// Measured outcome of the workload.
#[derive(Debug, Clone)]
pub struct ReinspectReport {
    /// Single-element `mutate_range` + summary verdict (ns/iter).
    pub incremental: BenchStats,
    /// Full fused re-ingest (domain + fingerprint + summaries) plus a
    /// full serial scan of the same array (ns/iter).
    pub full: BenchStats,
    /// `full.median_ns / incremental.median_ns`.
    pub speedup: f64,
    /// Whether both paths agreed on verdict and checksum at every
    /// checkpoint (they must; a disagreement is a correctness bug, not
    /// a perf result).
    pub verdicts_agree: bool,
}

/// The single-element write the incremental path is timed on. Writing
/// the value already present keeps the array bit-identical across
/// benchmark iterations (every iteration measures the same work:
/// 1-block rescan + recombine), while still driving the full dirty
/// window bookkeeping — the boundary cannot know the write was a no-op.
fn touch(array: &mut ValidatedIndexArray, at: usize) {
    let v = array.data()[at];
    array
        .mutate_range(at..at + 1, |w| w[0] = v)
        .expect("rewriting an in-domain value stays in domain");
}

/// Runs both paths and returns the comparison. The timed reference is
/// deliberately allocation-free (it rebuilds summaries and rescans in
/// place, no `Vec` clone), so the measured gap is scan work, not
/// allocator noise.
pub fn run_reinspect_workload() -> ReinspectReport {
    let data: Vec<usize> = (0..REINSPECT_LEN).collect();
    let domain = REINSPECT_LEN;
    let mut array = ValidatedIndexArray::ingest(
        "reinspect-1Mi",
        data,
        domain,
        Provenance::Generated { seed: 0x5eed },
    )
    .expect("ramp is in domain");

    // Correctness checkpoint before timing: incremental state after a
    // few scattered writes must match a from-scratch rebuild.
    let mut verdicts_agree = true;
    for at in [0, REINSPECT_LEN / 2, REINSPECT_LEN - 1, 4096, 4095] {
        touch(&mut array, at);
        let fresh = BlockSummaries::build(array.data(), domain).expect("still in domain");
        verdicts_agree &= array.summary_verdict() == fresh.verdict();
        verdicts_agree &= array.checksum() == fresh.checksum();
        verdicts_agree &= array.summary_verdict() == inspect_serial(array.data());
    }

    let mid = REINSPECT_LEN / 2;
    let incremental = bench("reinspect/delta-1Mi", || {
        touch(&mut array, mid);
        std::hint::black_box(array.summary_verdict());
    });

    let full = bench("reinspect/full-1Mi", || {
        // What the pre-summary world paid after any mutation: re-ingest
        // (fused domain scan + fingerprint + summary build, one pass)
        // and a full monotonicity scan.
        let s = BlockSummaries::build(std::hint::black_box(array.data()), domain)
            .expect("still in domain");
        std::hint::black_box(s.checksum());
        std::hint::black_box(inspect_serial(array.data()));
    });

    let speedup = full.median_ns as f64 / incremental.median_ns.max(1) as f64;
    ReinspectReport {
        incremental,
        full,
        speedup,
        verdicts_agree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_preserves_contents_and_bumps_version() {
        let mut a = ValidatedIndexArray::ingest(
            "t",
            (0..10_000).collect::<Vec<_>>(),
            10_000,
            Provenance::Generated { seed: 1 },
        )
        .unwrap();
        let before = a.data().to_vec();
        let checksum = a.checksum();
        touch(&mut a, 7_777);
        assert_eq!(a.data(), &before[..]);
        assert_eq!(
            a.checksum(),
            checksum,
            "identical contents, same v2 checksum"
        );
        assert_eq!(a.version(), 1, "the boundary still saw a write");
    }
}
