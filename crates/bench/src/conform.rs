//! AST round-trip conformance harness.
//!
//! The frontend's canonical contract (DESIGN.md §9) is that for every
//! accepted source, `parse → canonicalize → print → reparse` reproduces
//! a structurally identical AST, the printed form is a fixpoint of the
//! printer, and the `subsub-ast/v1` JSON serialization is deterministic
//! and well-formed. This module checks that contract over two corpora:
//!
//! * the full kernel registry (the twelve paper benchmark sources), and
//! * `crates/bench/corpus/conform/*.c` — committed C-subset kernels
//!   chosen to pin down printer edge cases (dangling else, empty `for`
//!   clauses, pointer declarators, negation chains, ternaries).
//!
//! Run by `cargo run -p subsub-bench --bin conform` (CI `full` tier);
//! any divergence fails the run.

use std::fmt;
use std::path::Path;
use subsub_cfront::printer::print_program;
use subsub_cfront::{
    canonicalize, diff_programs, parse_program_with, program_to_json, ParseBudget,
};
use subsub_kernels::all_kernels;
use subsub_telemetry::json;

/// One source the harness conforms.
#[derive(Debug, Clone)]
pub struct ConformCase {
    /// Case id (kernel name or corpus file stem).
    pub name: String,
    /// The C-subset source text.
    pub source: String,
}

/// One broken conformance invariant.
#[derive(Debug, Clone)]
pub struct ConformFailure {
    /// Which case broke.
    pub name: String,
    /// Which invariant, and how.
    pub detail: String,
}

impl fmt::Display for ConformFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.name, self.detail)
    }
}

/// What a conformance run covered and what it found.
#[derive(Debug, Clone)]
pub struct ConformReport {
    /// Cases checked.
    pub cases: usize,
    /// Every broken invariant (empty = conformant).
    pub failures: Vec<ConformFailure>,
}

impl ConformReport {
    /// True when every case round-tripped.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for ConformReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "conformance: {} case(s), {} failure(s)",
            self.cases,
            self.failures.len()
        )?;
        for fail in &self.failures {
            writeln!(f, "  {fail}")?;
        }
        Ok(())
    }
}

/// Checks every conformance invariant on one source. The source must be
/// *accepted* by the frontend — a corpus entry that fails to parse is
/// itself a failure (the conform corpus holds well-formed kernels; the
/// rejection paths belong to the oracle's mutation leg).
pub fn check_source(name: &str, source: &str) -> Vec<ConformFailure> {
    let fail = |detail: String| ConformFailure {
        name: name.to_string(),
        detail,
    };
    let prog = match parse_program_with(source, &ParseBudget::DEFAULT) {
        Ok(p) => p,
        Err(d) => return vec![fail(format!("corpus source rejected [{}]: {d}", d.code))],
    };
    let mut out = Vec::new();

    // Invariant 1: canonical print reparses to a structurally identical
    // program.
    let canon = canonicalize(&prog);
    let printed = print_program(&canon);
    let reparsed = match parse_program_with(&printed, &ParseBudget::DEFAULT) {
        Ok(p) => p,
        Err(d) => {
            out.push(fail(format!(
                "canonical print failed to reparse [{}]: {d}",
                d.code
            )));
            return out;
        }
    };
    let recanon = canonicalize(&reparsed);
    let diffs = diff_programs(&canon, &recanon);
    if !diffs.is_empty() {
        for d in diffs.iter().take(4) {
            out.push(fail(format!("round-trip diverged: {d}")));
        }
        if diffs.len() > 4 {
            out.push(fail(format!("... and {} more node(s)", diffs.len() - 4)));
        }
    }

    // Invariant 2: the printed form is a printer fixpoint (printing the
    // reparsed AST reproduces the same bytes).
    let reprinted = print_program(&recanon);
    if reprinted != printed {
        out.push(fail(
            "printer is not a fixpoint on its own output".to_string(),
        ));
    }

    // Invariant 3: the `subsub-ast/v1` serialization is deterministic,
    // well-formed JSON, and identical across the round trip.
    let j1 = program_to_json(&canon);
    let j2 = program_to_json(&recanon);
    if json::parse(&j1).is_err() {
        out.push(fail("ast/v1 serialization is not valid JSON".to_string()));
    }
    if j1 != j2 {
        out.push(fail(
            "ast/v1 serialization differs across the round trip".to_string(),
        ));
    }
    out
}

/// The kernel-registry corpus: every benchmark source in the registry.
pub fn kernel_cases() -> Vec<ConformCase> {
    all_kernels()
        .iter()
        .map(|k| ConformCase {
            name: format!("kernel:{}", k.name()),
            source: k.source().to_string(),
        })
        .collect()
}

/// Loads every `*.c` file in `dir` (sorted by name for stable order).
pub fn load_corpus_dir(dir: &Path) -> Result<Vec<ConformCase>, String> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let source = std::fs::read_to_string(&f).map_err(|e| format!("{}: {e}", f.display()))?;
        let stem = f
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| f.display().to_string());
        out.push(ConformCase {
            name: format!("corpus:{stem}"),
            source,
        });
    }
    Ok(out)
}

/// Runs the harness over `cases`.
pub fn run_conformance(cases: &[ConformCase]) -> ConformReport {
    let mut report = ConformReport {
        cases: 0,
        failures: Vec::new(),
    };
    for c in cases {
        report.cases += 1;
        report.failures.extend(check_source(&c.name, &c.source));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_source_conforms() {
        let report = run_conformance(&kernel_cases());
        assert!(report.cases >= 12, "{report}");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn committed_corpus_conforms() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("corpus")
            .join("conform");
        let cases = load_corpus_dir(&dir).expect("conform corpus dir exists");
        assert!(cases.len() >= 6, "expected >= 6 corpus kernels");
        let report = run_conformance(&cases);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn rejected_sources_are_reported_not_skipped() {
        let fails = check_source("bad", "void f( {");
        assert_eq!(fails.len(), 1);
        assert!(fails[0].detail.contains("rejected"), "{fails:?}");
    }

    #[test]
    fn a_divergence_would_be_caught() {
        // Sanity-check the harness itself: hand-diff two different
        // programs through the same machinery the checker uses.
        let a = parse_program_with("void f() { x = 1; }", &ParseBudget::DEFAULT).unwrap();
        let b = parse_program_with("void f() { x = 2; }", &ParseBudget::DEFAULT).unwrap();
        assert!(!diff_programs(&canonicalize(&a), &canonicalize(&b)).is_empty());
    }
}
