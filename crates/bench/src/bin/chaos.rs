//! Chaos sweep CLI: seeded fault-injection over the full kernel
//! registry, asserting the robustness invariant (complete parallel
//! matching golden, or degrade serially with a classified error — never
//! abort, hang, or corrupt).
//!
//! Usage: `cargo run -p subsub-bench --bin chaos [seed...]`
//! (defaults to the pinned CI seeds). With no CLI seeds, the
//! `SUBSUB_CHAOS_SEEDS` environment variable (comma- or
//! whitespace-separated u64s) overrides the pinned trio, so a CI
//! matrix can widen the sweep without editing the script.

use subsub_bench::chaos::{chaos_sweep, DEFAULT_SEEDS};

fn env_seeds() -> Option<Vec<u64>> {
    let raw = std::env::var("SUBSUB_CHAOS_SEEDS").ok()?;
    let seeds: Vec<u64> = raw
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| panic!("SUBSUB_CHAOS_SEEDS: seed must be a u64, got {s:?}"))
        })
        .collect();
    (!seeds.is_empty()).then_some(seeds)
}

fn main() {
    let seeds: Vec<u64> = {
        let args: Vec<u64> = std::env::args()
            .skip(1)
            .map(|a| {
                a.parse()
                    .unwrap_or_else(|_| panic!("seed must be a u64, got {a:?}"))
            })
            .collect();
        if args.is_empty() {
            env_seeds().unwrap_or_else(|| DEFAULT_SEEDS.to_vec())
        } else {
            args
        }
    };
    let mut failed = false;
    for seed in seeds {
        let report = chaos_sweep(seed);
        let (parallel, degraded) = report.outcome_counts();
        println!(
            "seed {seed}: {} kernels — {parallel} completed parallel, {degraded} degraded serial",
            report.results.len()
        );
        for r in &report.results {
            let outcome = match &r.degraded {
                None => "parallel (matches golden)".to_string(),
                Some(e) => format!("serial ({e})"),
            };
            let injected = if r.fired_sites.is_empty() {
                "no injections fired".to_string()
            } else {
                format!("fired: {}", r.fired_sites.join(", "))
            };
            println!("  {:12} {outcome} [{injected}]", r.kernel);
        }
        for v in &report.violations {
            eprintln!("  VIOLATION: {v}");
            failed = true;
        }
    }
    if failed {
        eprintln!("chaos sweep FAILED");
        std::process::exit(1);
    }
    println!("chaos sweep passed");
}
