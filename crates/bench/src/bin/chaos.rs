//! Chaos sweep CLI: seeded fault-injection over the full kernel
//! registry, asserting the robustness invariant (complete parallel
//! matching golden, or degrade serially with a classified error — never
//! abort, hang, or corrupt).
//!
//! Usage: `cargo run -p subsub-bench --bin chaos [seed...]`
//! (defaults to the pinned CI seeds).

use subsub_bench::chaos::{chaos_sweep, DEFAULT_SEEDS};

fn main() {
    let seeds: Vec<u64> = {
        let args: Vec<u64> = std::env::args()
            .skip(1)
            .map(|a| {
                a.parse()
                    .unwrap_or_else(|_| panic!("seed must be a u64, got {a:?}"))
            })
            .collect();
        if args.is_empty() {
            DEFAULT_SEEDS.to_vec()
        } else {
            args
        }
    };
    let mut failed = false;
    for seed in seeds {
        let report = chaos_sweep(seed);
        let (parallel, degraded) = report.outcome_counts();
        println!(
            "seed {seed}: {} kernels — {parallel} completed parallel, {degraded} degraded serial",
            report.results.len()
        );
        for r in &report.results {
            let outcome = match &r.degraded {
                None => "parallel (matches golden)".to_string(),
                Some(e) => format!("serial ({e})"),
            };
            let injected = if r.fired_sites.is_empty() {
                "no injections fired".to_string()
            } else {
                format!("fired: {}", r.fired_sites.join(", "))
            };
            println!("  {:12} {outcome} [{injected}]", r.kernel);
        }
        for v in &report.violations {
            eprintln!("  VIOLATION: {v}");
            failed = true;
        }
    }
    if failed {
        eprintln!("chaos sweep FAILED");
        std::process::exit(1);
    }
    println!("chaos sweep passed");
}
