//! Demonstrates guarded execution end to end: the compiled runtime check,
//! the index-array inspection, memoized re-runs, and graceful degradation
//! to serial when an index array is corrupted.
//!
//! Usage: `cargo run -p subsub-bench --bin guarded [kernel-name]`

use subsub_bench::GuardedHarness;
use subsub_core::AlgorithmLevel;
use subsub_kernels::kernel_by_name;
use subsub_omprt::{Schedule, ThreadPool};

fn main() {
    let filter = std::env::args().nth(1);
    let pool = ThreadPool::new(4);
    let demos = ["AMGmk", "SDDMM", "UA(transf)", "CSRoCSR", "GuardedPrefix"];
    let mut matched = false;
    for name in demos {
        if let Some(f) = &filter {
            if name != f {
                continue;
            }
        }
        matched = true;
        let k = kernel_by_name(name).unwrap();
        let harness = GuardedHarness::new(k.as_ref(), AlgorithmLevel::New);
        println!("=== {name} ===");
        println!("decision:       {}", harness.variant());
        match harness.check() {
            Some(c) => println!("runtime check:  {c}"),
            None => println!("runtime check:  (none — unconditionally parallel)"),
        }

        let mut inst = k.prepare(k.datasets()[0]);
        for run in 1..=2 {
            let out = harness.run(inst.as_mut(), &pool, Schedule::dynamic_default());
            println!(
                "run {run}:          {} (checksum {:.6})",
                match out.reason {
                    Some(ref r) => format!("{} — {r}", out.executed),
                    None => out.executed.to_string(),
                },
                out.checksum
            );
            inst.reset();
        }

        if inst.tamper_index_arrays() {
            let out = harness.run(inst.as_mut(), &pool, Schedule::dynamic_default());
            println!(
                "tampered run:   {} — {}",
                out.executed,
                out.reason
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "(admitted)".into())
            );
        }

        let s = harness.stats();
        println!(
            "guard stats:    {} parallel, {} serial fallback ({} inspection), cache {} hit / {} miss / {} invalidated",
            s.parallel_runs,
            s.serial_fallbacks,
            s.inspection_failures,
            s.cache.hits,
            s.cache.misses,
            s.cache.invalidations
        );
        println!();
    }
    if !matched {
        eprintln!(
            "no kernel named {:?}; available: {}",
            filter.as_deref().unwrap_or(""),
            demos.join(", ")
        );
        std::process::exit(2);
    }
}
