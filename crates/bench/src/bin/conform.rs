//! AST round-trip conformance CLI: checks `parse → canonicalize → print
//! → reparse` identity, printer fixpoints and `subsub-ast/v1` JSON
//! stability over the kernel registry and the committed conform corpus.
//!
//! Usage:
//!   conform [--corpus DIR | --no-corpus] [--no-kernels]
//!
//! Exits non-zero on any divergence, printing every path-addressed
//! mismatch.

use std::path::PathBuf;
use std::process::ExitCode;
use subsub_bench::conform::{kernel_cases, load_corpus_dir, run_conformance, ConformCase};

struct Args {
    corpus: Option<PathBuf>,
    kernels: bool,
}

fn default_corpus_dir() -> Option<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join("conform");
    dir.is_dir().then_some(dir)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        corpus: default_corpus_dir(),
        kernels: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-corpus" => args.corpus = None,
            "--no-kernels" => args.kernels = false,
            "--corpus" => {
                args.corpus = Some(PathBuf::from(it.next().ok_or("--corpus requires a value")?))
            }
            "--help" | "-h" => {
                return Err("usage: conform [--corpus DIR | --no-corpus] [--no-kernels]".into())
            }
            s => return Err(format!("unrecognized argument `{s}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut cases: Vec<ConformCase> = Vec::new();
    if args.kernels {
        cases.extend(kernel_cases());
    }
    if let Some(dir) = &args.corpus {
        match load_corpus_dir(dir) {
            Ok(c) => cases.extend(c),
            Err(e) => {
                eprintln!("conform corpus load failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if cases.is_empty() {
        eprintln!("conform: no cases to run (corpus and kernels both disabled?)");
        return ExitCode::FAILURE;
    }

    let report = run_conformance(&cases);
    print!("{report}");
    if report.is_clean() {
        println!("CONFORM: all {} case(s) round-trip clean", report.cases);
        ExitCode::SUCCESS
    } else {
        eprintln!("CONFORM: divergences found");
        ExitCode::FAILURE
    }
}
