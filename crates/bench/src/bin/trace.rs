//! Capture a Chrome-trace of one guarded kernel run, or validate an
//! existing trace file.
//!
//! ```text
//! trace [--kernel NAME] [--dataset NAME] [--threads N]
//!       [--out PATH] [--snapshot PATH]
//! trace --validate PATH
//! ```
//!
//! Capture mode arms the flight recorder, runs the kernel twice under
//! the full guarded pipeline (plus one pool-sized synthetic inspection,
//! so analysis-serial kernels still exercise fork-join and the guard),
//! writes the Chrome `trace_event` JSON and the `subsub-telemetry/v1`
//! metrics snapshot, and self-validates the emitted trace — exiting
//! nonzero if it is malformed or missing a required span family. Load
//! the output at `chrome://tracing` or <https://ui.perfetto.dev>.

use std::process;
use subsub_bench::trace::{capture_trace, counter_lines, summarize, validate_trace_file};

fn main() {
    let mut kernel = "AMGmk".to_string();
    let mut dataset: Option<String> = None;
    let mut threads = 4usize;
    let mut out = "target/BENCH_trace.json".to_string();
    let mut snapshot = "target/BENCH_telemetry.json".to_string();
    let mut validate: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--kernel" => {
                kernel = need(i);
                i += 2;
            }
            "--dataset" => {
                dataset = Some(need(i));
                i += 2;
            }
            "--threads" => {
                threads = need(i).parse().expect("--threads must be an integer");
                i += 2;
            }
            "--out" => {
                out = need(i);
                i += 2;
            }
            "--snapshot" => {
                snapshot = need(i);
                i += 2;
            }
            "--validate" => {
                validate = Some(need(i));
                i += 2;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    if let Some(path) = validate {
        let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("trace: cannot read {path}: {e}");
            process::exit(1);
        });
        match validate_trace_file(&doc) {
            Ok(summary) => {
                println!(
                    "{path}: valid Chrome trace ({} spans, {} instants, {} threads)",
                    summary.spans, summary.instants, summary.threads
                );
            }
            Err(e) => {
                eprintln!("trace: {path}: INVALID: {e}");
                process::exit(1);
            }
        }
        return;
    }

    let art = match capture_trace(&kernel, dataset.as_deref(), threads) {
        Ok(art) => art,
        Err(e) => {
            eprintln!("trace: capture failed: {e}");
            process::exit(1);
        }
    };
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Some(dir) = std::path::Path::new(&snapshot).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out, &art.chrome_json) {
        eprintln!("trace: cannot write {out}: {e}");
        process::exit(1);
    }
    if let Err(e) = std::fs::write(&snapshot, &art.snapshot_json) {
        eprintln!("trace: cannot write {snapshot}: {e}");
        process::exit(1);
    }

    println!("kernel {kernel} on {threads} threads");
    println!("{}", summarize(&art.summary, art.events));
    for line in counter_lines() {
        println!("  {line}");
    }
    println!("chrome trace  -> {out}");
    println!("metrics snap  -> {snapshot}");
}
