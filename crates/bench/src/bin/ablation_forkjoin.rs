//! Ablation: fork-join overhead sweep.
//!
//! Figure 13's anomaly — classical inner-loop parallelization running far
//! slower than serial — is driven by the fork-join cost per parallel
//! region. This ablation sweeps the overhead and locates the crossover
//! where the inner strategy stops losing to serial execution, for the
//! three subscripted-subscript applications.

use subsub_bench::harness::{calibrate, simulate_variant, Calibration};
use subsub_bench::Table;
use subsub_kernels::{kernel_by_name, Variant};
use subsub_omprt::Schedule;

fn main() {
    println!("Ablation: fork-join overhead sweep (simulated, 16 cores)\n");
    let overheads_us = [0.0f64, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0];

    for name in ["AMGmk", "SDDMM", "UA(transf)"] {
        let k = kernel_by_name(name).unwrap();
        let ds = k.datasets()[0];
        let mut inst = k.prepare(ds);
        inst.run_serial();
        let mut t = Table::new(&["fork-join", "inner/serial", "outer/serial", "outer wins by"]);
        for us in overheads_us {
            let cal: Calibration = calibrate(inst.as_mut(), us * 1e-6);
            let serial = simulate_variant(
                inst.as_ref(),
                Variant::Serial,
                16,
                Schedule::static_default(),
                &cal,
            );
            let inner = simulate_variant(
                inst.as_ref(),
                Variant::InnerParallel,
                16,
                Schedule::static_default(),
                &cal,
            );
            let outer = simulate_variant(
                inst.as_ref(),
                Variant::OuterParallel,
                16,
                Schedule::static_default(),
                &cal,
            );
            t.row(vec![
                format!("{us:.1} µs"),
                format!("{:.2}x", inner / serial),
                format!("{:.2}x", outer / serial),
                format!("{:.1}x", inner / outer),
            ]);
        }
        println!("({name} on {ds}; inner/serial > 1 means the classical");
        println!("strategy is a slowdown — the Figure 13 anomaly):");
        println!("{t}");
    }
}
