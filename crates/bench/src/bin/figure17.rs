//! Regenerates **Figure 17**: performance of the three analysis
//! configurations — Cetus (classical), Cetus+BaseAlgo (ICS'21) and
//! Cetus+NewAlgo (this paper) — on all twelve benchmarks at 16 cores,
//! relative to serial execution.

use subsub_bench::harness::{measured_fork_join, Series};
use subsub_bench::{variant_for, Table};
use subsub_core::AlgorithmLevel;
use subsub_kernels::all_kernels;
use subsub_omprt::{Schedule, ThreadPool};

fn main() {
    let pool = ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let fj = measured_fork_join(&pool);
    let cores = 16usize;
    println!("Figure 17: Cetus vs Cetus+BaseAlgo vs Cetus+NewAlgo at {cores} cores");
    println!("(improvement over serial; simulated cores; Experiment-2 datasets)\n");

    let mut t = Table::new(&[
        "Benchmark",
        "Dataset",
        "Cetus",
        "Cetus+BaseAlgo",
        "Cetus+NewAlgo",
    ]);
    let mut improved = [0usize; 3];
    let mut total = 0usize;
    for k in all_kernels() {
        total += 1;
        let ds = k.datasets()[0];
        let levels = [
            AlgorithmLevel::Classic,
            AlgorithmLevel::Base,
            AlgorithmLevel::New,
        ];
        let variants: Vec<_> = levels.iter().map(|&l| variant_for(k.as_ref(), l)).collect();
        let series = Series::new(k.as_ref(), ds, &variants, &pool, fj);
        let mut row = vec![k.name().to_string(), ds.to_string()];
        for (i, &v) in variants.iter().enumerate() {
            let sp = series.speedup(v, cores, Schedule::static_default());
            if sp > 1.05 {
                improved[i] += 1;
            }
            row.push(format!("{sp:.2}x"));
        }
        t.row(row);
    }
    println!("{t}");
    println!(
        "benchmarks improved: Cetus {}/{total}, +BaseAlgo {}/{total}, +NewAlgo {}/{total}",
        improved[0], improved[1], improved[2]
    );
    println!("(paper suite of 12: 6/12, 7/12 and 10/12 — 83.33% with the new algorithm;");
    println!(" the four extra rows exercise the widened pattern language)");
}
