//! Ablation: memory-bandwidth roofline sensitivity.
//!
//! The simulator's `mem_scale` parameter (aggregate bandwidth speedup of
//! the machine over one core) caps bandwidth-bound kernels. This sweep
//! shows how the Figure 14 speedups respond — AMGmk (bandwidth-bound)
//! tracks the roofline, syrk (compute-bound) barely notices.

use subsub_bench::harness::{calibrate, measured_fork_join, simulate_variant};
use subsub_bench::Table;
use subsub_kernels::{kernel_by_name, Variant};
use subsub_omprt::{Schedule, ThreadPool};

fn main() {
    let pool = ThreadPool::new(2);
    let fj = measured_fork_join(&pool);
    println!("Ablation: roofline mem_scale sweep (16 simulated cores)\n");
    let mut t = Table::new(&["Benchmark", "ms=2", "ms=3.5", "ms=6", "ms=12"]);
    for name in ["AMGmk", "SDDMM", "UA(transf)", "syrk"] {
        let k = kernel_by_name(name).unwrap();
        let mut inst = k.prepare(k.datasets()[0]);
        inst.run_serial();
        let mut cal = calibrate(inst.as_mut(), fj);
        let mut row = vec![name.to_string()];
        for ms in [2.0f64, 3.5, 6.0, 12.0] {
            cal.params.mem_scale = ms;
            let v = Variant::OuterParallel;
            let s = simulate_variant(inst.as_ref(), v, 16, Schedule::static_default(), &cal);
            row.push(format!("{:.2}x", cal.serial_time / s));
        }
        t.row(row);
    }
    println!("{t}");
}
