//! CI gate for the incremental re-inspection path.
//!
//! Usage:
//!   reinspect [--min-speedup X]
//!
//! Runs the 1 Mi-element mutate-then-reinspect workload and exits
//! non-zero unless (a) the incremental and full-scan paths agree on
//! verdict + checksum and (b) the incremental path is at least the
//! acceptance floor (default 20×) faster than a full re-ingest + scan.

use std::process::ExitCode;
use subsub_bench::reinspect::{run_reinspect_workload, MIN_SPEEDUP, REINSPECT_LEN};

fn main() -> ExitCode {
    let mut min_speedup = MIN_SPEEDUP;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--min-speedup" => {
                let Some(v) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--min-speedup requires a numeric value");
                    return ExitCode::from(2);
                };
                min_speedup = v;
            }
            "--help" | "-h" => {
                println!("usage: reinspect [--min-speedup X]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unrecognized argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    println!(
        "reinspect workload: {REINSPECT_LEN} elements, single-element mutate_range vs full re-ingest + scan"
    );
    let report = run_reinspect_workload();
    println!(
        "speedup: {:.1}x (full {} ns/iter vs incremental {} ns/iter, floor {min_speedup}x)",
        report.speedup, report.full.median_ns, report.incremental.median_ns
    );

    if !report.verdicts_agree {
        eprintln!("REINSPECT: incremental and full-scan paths disagree (correctness bug)");
        return ExitCode::FAILURE;
    }
    if report.speedup < min_speedup {
        eprintln!(
            "REINSPECT: speedup {:.1}x below the {min_speedup}x floor",
            report.speedup
        );
        return ExitCode::FAILURE;
    }
    println!("REINSPECT: ok");
    ExitCode::SUCCESS
}
