//! Ablation: dynamic chunk-size sweep for SDDMM.
//!
//! Figure 16 compares static against dynamic with the OpenMP default
//! chunk of 1. This ablation shows the dispatch-overhead/balance tradeoff
//! as the dynamic chunk grows — large chunks converge back to static
//! behaviour on skewed inputs.

use subsub_bench::harness::{calibrate, measured_fork_join, simulate_variant};
use subsub_bench::Table;
use subsub_kernels::{kernel_by_name, Variant};
use subsub_omprt::{Schedule, ThreadPool};

fn main() {
    let pool = ThreadPool::new(2);
    let fj = measured_fork_join(&pool);
    println!("Ablation: dynamic chunk size, SDDMM, 16 simulated cores\n");
    let k = kernel_by_name("SDDMM").unwrap();
    let mut t = Table::new(&[
        "Dataset", "static", "dyn,1", "dyn,4", "dyn,16", "dyn,64", "guided",
    ]);
    for ds in ["gsm_106857", "dielFilterV2clx", "af_shell1", "inline_1"] {
        let mut inst = k.prepare(ds);
        inst.run_serial();
        let cal = calibrate(inst.as_mut(), fj);
        let time = |sched| {
            let s = simulate_variant(inst.as_ref(), Variant::OuterParallel, 16, sched, &cal);
            format!("{:.2}x", cal.serial_time / s)
        };
        t.row(vec![
            ds.to_string(),
            time(Schedule::static_default()),
            time(Schedule::Dynamic { chunk: 1 }),
            time(Schedule::Dynamic { chunk: 4 }),
            time(Schedule::Dynamic { chunk: 16 }),
            time(Schedule::Dynamic { chunk: 64 }),
            time(Schedule::Guided { min_chunk: 4 }),
        ]);
    }
    println!("{t}");
    println!("(speedup over serial; larger dynamic chunks trade balance for");
    println!("lower dispatch overhead and converge toward static behaviour)");
}
