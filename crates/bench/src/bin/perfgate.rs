//! Perf-regression CI gate.
//!
//! ```text
//! perfgate [--baseline PATH] [--tolerance FRAC]   # compare, exit 1 on regression
//! perfgate --update [--baseline PATH]             # (re)write the baseline
//! ```
//!
//! Runs the pinned micro-suite (fork-join latency, inspector
//! throughput, three representative serial kernels) and compares each
//! median against the committed `BENCH_baseline.json`. A median beyond
//! baseline × (1 + tolerance) fails the gate; one beyond the band in
//! the fast direction only warns, with a suggestion to refresh the
//! baseline. Run with `--update` after an intentional perf change and
//! commit the new baseline alongside it.

use std::process;
use subsub_bench::perfgate::{
    baseline_json, compare, parse_baseline, passes, run_suite, GateStatus, DEFAULT_TOLERANCE,
};

fn main() {
    let mut baseline_path = "BENCH_baseline.json".to_string();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut update = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
                .clone()
        };
        match args[i].as_str() {
            "--baseline" => {
                baseline_path = need(i);
                i += 2;
            }
            "--tolerance" => {
                tolerance = need(i).parse().expect("--tolerance must be a number");
                i += 2;
            }
            "--update" => {
                update = true;
                i += 1;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(
        tolerance > 0.0 && tolerance < 1.0,
        "--tolerance must be in (0, 1)"
    );

    let results = run_suite();

    if update {
        let doc = baseline_json(&results);
        if let Err(e) = std::fs::write(&baseline_path, format!("{doc}\n")) {
            eprintln!("perfgate: cannot write {baseline_path}: {e}");
            process::exit(1);
        }
        println!(
            "perfgate: wrote {} entries to {baseline_path}",
            results.len()
        );
        return;
    }

    let doc = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("perfgate: cannot read {baseline_path}: {e} (run `perfgate --update` once)");
        process::exit(1);
    });
    let baseline = parse_baseline(&doc).unwrap_or_else(|e| {
        eprintln!("perfgate: {baseline_path}: {e}");
        process::exit(1);
    });

    let rows = compare(&results, &baseline, tolerance);
    println!();
    println!(
        "perfgate vs {baseline_path} (tolerance ±{:.0}%)",
        tolerance * 100.0
    );
    for row in &rows {
        let ratio = row
            .ratio()
            .map(|r| format!("{r:>6.2}x"))
            .unwrap_or_else(|| "     —".to_string());
        let base = row
            .baseline_ns
            .map(|b| b.to_string())
            .unwrap_or_else(|| "—".to_string());
        let tag = match row.status {
            GateStatus::Ok => "ok",
            GateStatus::Improved => "IMPROVED (refresh baseline?)",
            GateStatus::Regressed => "REGRESSED",
            GateStatus::Missing => "MISSING FROM BASELINE",
        };
        println!(
            "  {:<28} base {:>12} ns  now {:>12} ns  {ratio}  {tag}",
            row.name, base, row.current_ns
        );
    }
    if passes(&rows) {
        println!("perfgate: PASS ({} entries)", rows.len());
    } else {
        eprintln!("perfgate: FAIL — regression or stale baseline (see rows above)");
        process::exit(1);
    }
}
