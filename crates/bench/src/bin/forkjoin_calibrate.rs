//! Measures the machine's real fork-join constants and emits
//! `BENCH_forkjoin.json`, the calibration file `omprt::sim` loads.
//!
//! Two quantities are measured, both against live pools:
//!
//! * **fork-join latency** — median over 7 samples of back-to-back empty
//!   regions, for the claim-based [`ThreadPool`] *and* the retained
//!   pre-rework [`LegacyMutexPool`], at each requested thread count. The
//!   side-by-side legacy number makes the rework's improvement
//!   reproducible on any machine rather than a historical claim.
//! * **dynamic dispatch overhead** — the extra cost of `dynamic(1)`
//!   self-scheduling over `static` for the same trivial loop, divided by
//!   the number of batched claims the dynamic schedule actually issues.
//!
//! Usage:
//!
//! ```text
//! forkjoin_calibrate [--quick] [--out PATH] [--threads 1,2,4]
//! forkjoin_calibrate --validate PATH
//! ```
//!
//! `--validate` re-parses an emitted file through the strict JSON parser
//! *and* the same `MachineCalibration` scanner the simulator uses, and
//! fails loudly if the constants are missing, non-finite, or
//! non-positive — this is the CI smoke check. When `--threads` is given
//! alongside `--validate`, the file's measured `series` must match those
//! thread counts exactly (with the calibration point at the last of
//! them), so a stale file measured at the wrong team sizes cannot pass.

use std::time::Instant;
use subsub_bench::calibration::validate_calibration_doc;
use subsub_omprt::legacy::LegacyMutexPool;
use subsub_omprt::schedule::dynamic_batch;
use subsub_omprt::{MachineCalibration, Schedule, ThreadPool};

/// Measured samples per statistic (the acceptance criterion requires a
/// median of at least 7).
const SAMPLES: usize = 7;

struct Args {
    quick: bool,
    out: String,
    validate: Option<String>,
    threads: Vec<usize>,
    /// Whether `--threads` was given on the command line (an explicit
    /// list makes `--validate` enforce the series thread counts; the
    /// default list does not, so plain `--validate PATH` keeps working
    /// on files measured with any counts).
    threads_explicit: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: "BENCH_forkjoin.json".to_string(),
        validate: None,
        threads: vec![1, 2, 4],
        threads_explicit: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--validate" => args.validate = Some(it.next().expect("--validate needs a path")),
            "--threads" => {
                args.threads = it
                    .next()
                    .expect("--threads needs a list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("thread counts are integers"))
                    .collect();
                assert!(!args.threads.is_empty(), "--threads list is empty");
                args.threads_explicit = true;
            }
            other => panic!("unknown argument: {other} (see module docs)"),
        }
    }
    args
}

/// Median of `SAMPLES` timings of `regions` calls to `f`, in ns/call.
fn median_ns(regions: u32, mut f: impl FnMut()) -> f64 {
    let mut v: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..regions {
                f();
            }
            t0.elapsed().as_nanos() as f64 / regions as f64
        })
        .collect();
    v.sort_by(f64::total_cmp);
    v[SAMPLES / 2]
}

/// Per-claim overhead of dynamic self-scheduling: time the same trivial
/// loop under `static` and `dynamic(1)` and attribute the difference to
/// the dynamic claims.
fn dispatch_overhead_ns(pool: &ThreadPool, quick: bool) -> f64 {
    let n: usize = if quick { 50_000 } else { 200_000 };
    let reps: u32 = if quick { 3 } else { 10 };
    let body = |i: usize| {
        std::hint::black_box(i);
    };
    let t_static = median_ns(reps, || {
        pool.parallel_for(n, Schedule::static_default(), body)
    });
    let t_dyn = median_ns(reps, || {
        pool.parallel_for(n, Schedule::Dynamic { chunk: 1 }, body)
    });
    let claim = dynamic_batch(n, pool.threads(), 1);
    let claims = n.div_ceil(claim) as f64;
    // A noisy machine can time dynamic faster than static; clamp to a
    // token positive value so the calibration file stays valid.
    ((t_dyn - t_static) / claims).max(0.1)
}

fn validate(path: &str, requested: Option<&[usize]>) -> Result<(), String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let s = validate_calibration_doc(&doc, requested).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: OK (fork_join_ns={:.1}, dispatch_ns={:.2}, cal_threads={}, series={:?})",
        s.fork_join_ns, s.dispatch_ns, s.cal_threads, s.series_threads
    );
    Ok(())
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.validate {
        let requested = args.threads_explicit.then_some(args.threads.as_slice());
        if let Err(e) = validate(path, requested) {
            eprintln!("forkjoin_calibrate: {e}");
            std::process::exit(1);
        }
        return;
    }

    let regions: u32 = if args.quick { 60 } else { 300 };
    println!(
        "fork-join calibration: {SAMPLES} samples x {regions} regions per point{}",
        if args.quick { " (quick)" } else { "" }
    );
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "threads", "new (ns)", "legacy (ns)", "improvement"
    );

    let mut series = Vec::new();
    for &t in &args.threads {
        // Legacy first and dropped before the new pool exists, so neither
        // pool's workers can perturb the other's measurement.
        let legacy_ns = {
            let pool = LegacyMutexPool::new(t);
            for _ in 0..regions {
                pool.run(|_| {});
            }
            median_ns(regions, || pool.run(|_| {}))
        };
        let new_ns = {
            let pool = ThreadPool::new(t);
            for _ in 0..regions {
                pool.run(|_| {});
            }
            median_ns(regions, || pool.run(|_| {}))
        };
        let improvement = legacy_ns / new_ns.max(1e-9);
        println!("{t:>8} {new_ns:>14.1} {legacy_ns:>14.1} {improvement:>11.1}x");
        series.push((t, new_ns, legacy_ns, improvement));
    }

    // Calibration point: the largest requested team (the paper's tables
    // quote 4 threads by default).
    let &(cal_threads, fork_join_ns, legacy_fork_join_ns, improvement) =
        series.last().expect("at least one thread count");
    let dispatch_ns = {
        let pool = ThreadPool::new(cal_threads);
        dispatch_overhead_ns(&pool, args.quick)
    };
    println!("dispatch overhead at {cal_threads} threads: {dispatch_ns:.2} ns/claim");
    if improvement < 2.0 {
        eprintln!(
            "warning: claim-based pool is only {improvement:.2}x over the legacy \
             mutex pool at {cal_threads} threads (expected >= 2x on an idle machine)"
        );
    }

    let series_json = series
        .iter()
        .map(|(t, n, l, i)| {
            format!(
                "{{\"threads\":{t},\"new_ns\":{n:.1},\"legacy_ns\":{l:.1},\"improvement\":{i:.2}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let doc =
        format!(
        "{{\n  \"schema\": \"subsub-forkjoin/v1\",\n  \"quick\": {},\n  \"cal_threads\": {},\n  \
         \"fork_join_ns\": {:.1},\n  \"dispatch_ns\": {:.2},\n  \"legacy_fork_join_ns\": {:.1},\n  \
         \"improvement\": {:.2},\n  \"series\": [{}]\n}}\n",
        args.quick, cal_threads, fork_join_ns, dispatch_ns, legacy_fork_join_ns, improvement,
        series_json
    );
    // Dogfood: the emitted document must round-trip through the parser
    // the simulator will use.
    assert!(
        MachineCalibration::parse_json(&doc).is_some(),
        "emitted JSON failed self-validation"
    );
    std::fs::write(&args.out, &doc).expect("write calibration file");
    println!("wrote {}", args.out);
}
