//! Regenerates **Figure 16**: dynamic versus (default) static scheduling
//! for SDDMM on 4, 8 and 16 cores, as improvement over serial execution.
//!
//! The paper finds dynamic ahead on three of the four matrices (skewed
//! column degrees) and static ahead on af_shell1 (balanced columns).

use subsub_bench::harness::{measured_fork_join, Series};
use subsub_bench::{variant_for, Table};
use subsub_core::AlgorithmLevel;
use subsub_kernels::kernel_by_name;
use subsub_omprt::{Schedule, ThreadPool};

fn main() {
    let pool = ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let fj = measured_fork_join(&pool);
    println!("Figure 16: dynamic vs static scheduling for SDDMM");
    println!("(improvement over serial; simulated cores)\n");

    let k = kernel_by_name("SDDMM").unwrap();
    let with = variant_for(k.as_ref(), AlgorithmLevel::New);
    let mut t = Table::new(&["Dataset", "sched", "4 cores", "8 cores", "16 cores"]);
    for ds in ["gsm_106857", "dielFilterV2clx", "af_shell1", "inline_1"] {
        let series = Series::new(k.as_ref(), ds, &[with], &pool, fj);
        for (label, sched) in [
            ("dynamic", Schedule::dynamic_default()),
            ("static", Schedule::static_default()),
        ] {
            let mut row = vec![ds.to_string(), label.to_string()];
            for cores in [4usize, 8, 16] {
                row.push(format!("{:.2}x", series.speedup(with, cores, sched)));
            }
            t.row(row);
        }
    }
    println!("{t}");
}
