//! Analysis-service workload CLI: seeded multi-client closed-loop
//! benchmark with cold/warm cache phases, mid-run fault injection, and
//! snapshot round-trip drills.
//!
//! Usage:
//!   cargo run -p subsub-bench --bin serve [--seed N] [--clients N]
//!       [--requests N] [--no-chaos] [--snapshot PATH] [--light]
//!   cargo run -p subsub-bench --bin serve -- --roundtrip [--seed N]
//!
//! The default mode runs the workload and asserts the acceptance
//! invariants: zero checksum divergences from the serial golden path,
//! zero wedged tickets, warm-phase hit rate ≥ 90%, and ≥ 8 requests
//! concurrently in flight. `--light` drops the concurrency/hit-rate
//! bars (for constrained smoke environments) while keeping the
//! correctness ones. `--roundtrip` runs the snapshot write → corrupt →
//! reject → rebuild → warm-start drill instead. Exit code is nonzero on
//! any violation, so CI can gate on it directly.

use subsub_bench::serve::{run_serve_workload, snapshot_roundtrip_drill, ServeConfig};

fn parse_flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} expects a number, got {v:?}"))
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = parse_flag_value(&args, "--seed").unwrap_or(0x5eed_5e47);

    if args.iter().any(|a| a == "--roundtrip") {
        let violations = snapshot_roundtrip_drill(seed);
        if violations.is_empty() {
            println!("snapshot round-trip drill passed (seed {seed})");
            return;
        }
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        eprintln!("snapshot round-trip drill FAILED");
        std::process::exit(1);
    }

    let light = args.iter().any(|a| a == "--light");
    let cfg = ServeConfig {
        seed,
        clients: parse_flag_value(&args, "--clients").unwrap_or(12) as usize,
        requests_per_client: parse_flag_value(&args, "--requests").unwrap_or(16) as usize,
        kill_worker: !args.iter().any(|a| a == "--no-chaos"),
        ..ServeConfig::default()
    };
    let (report, service) = run_serve_workload(&cfg);
    println!("{}", report.to_json());

    if let Some(i) = args.iter().position(|a| a == "--snapshot") {
        let path = args.get(i + 1).expect("--snapshot expects a path");
        std::fs::write(path, service.snapshot())
            .unwrap_or_else(|e| panic!("writing snapshot to {path}: {e}"));
        eprintln!("snapshot written to {path}");
    }
    service.shutdown();

    let violations: Vec<String> = report
        .violations()
        .into_iter()
        .filter(|v| !light || (!v.contains("in-flight") && !v.contains("hit rate")))
        .collect();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        eprintln!("serve workload FAILED (seed {seed})");
        std::process::exit(1);
    }
    println!(
        "serve workload passed (seed {seed}): {} requests, warm hit rate {:.1}%, max in-flight {}",
        report.cold.completed + report.warm.completed,
        report.warm.hit_rate * 100.0,
        report.max_inflight
    );
}
