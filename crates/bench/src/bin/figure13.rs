//! Regenerates **Figure 13**: overall improvement of the parallel codes
//! *with* versus *without* subscripted-subscript analysis on 4, 8 and 16
//! cores, for AMGmk (5 matrices), SDDMM (4 matrices) and UA(transf)
//! (4 classes).
//!
//! "Without" is the classical decision (inner-loop parallelization, paying
//! one fork-join per outer iteration); "with" is the new algorithm's
//! outer-loop parallelization. Multi-core times come from the calibrated
//! scheduling simulator (see DESIGN.md).

use subsub_bench::harness::{measured_fork_join, Series};
use subsub_bench::{variant_for, Table};
use subsub_core::AlgorithmLevel;
use subsub_kernels::kernel_by_name;
use subsub_omprt::{Schedule, ThreadPool};

fn main() {
    let pool = ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let fj = measured_fork_join(&pool);
    println!("Figure 13: performance improvement with vs without subscripted-");
    println!(
        "subscript analysis (simulated cores; measured fork-join = {:.2} µs)\n",
        fj * 1e6
    );

    for name in ["AMGmk", "SDDMM", "UA(transf)"] {
        let k = kernel_by_name(name).unwrap();
        let without = variant_for(k.as_ref(), AlgorithmLevel::Classic);
        let with = variant_for(k.as_ref(), AlgorithmLevel::New);
        let mut t = Table::new(&["Dataset", "4 cores", "8 cores", "16 cores"]);
        for ds in k.datasets() {
            let series = Series::new(k.as_ref(), ds, &[without, with], &pool, fj);
            let mut row = vec![ds.to_string()];
            for cores in [4usize, 8, 16] {
                let t_without = series.sim(without, cores, Schedule::static_default());
                let t_with = series.sim(with, cores, Schedule::static_default());
                row.push(format!("{:.2}x", t_without / t_with));
            }
            t.row(row);
        }
        println!("({name}) improvement of {with} over {without}:");
        println!("{t}");
    }
}
