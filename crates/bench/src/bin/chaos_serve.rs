//! Service-layer chaos CLI: seeded failpoint storms over the
//! multi-client serve workload — deadlines, abandonment, worker deaths,
//! snapshot faults — asserting the request-lifecycle invariants (typed
//! terminal states only, bounded completion, no divergence, no
//! post-storm lockout, crash-consistent recovery).
//!
//! Usage: `cargo run -p subsub-bench --bin chaos_serve [seed...]`
//! (defaults to the pinned CI seeds).

use subsub_bench::chaos_serve::{chaos_serve_storm, ChaosServeConfig, CHAOS_SERVE_SEEDS};

fn main() {
    let seeds: Vec<u64> = {
        let args: Vec<u64> = std::env::args()
            .skip(1)
            .map(|a| {
                a.parse()
                    .unwrap_or_else(|_| panic!("seed must be a u64, got {a:?}"))
            })
            .collect();
        if args.is_empty() {
            CHAOS_SERVE_SEEDS.to_vec()
        } else {
            args
        }
    };
    let mut failed = false;
    for seed in seeds {
        let report = chaos_serve_storm(&ChaosServeConfig {
            seed,
            ..ChaosServeConfig::default()
        });
        println!("{}", report.to_json());
        for v in &report.violations {
            eprintln!("  VIOLATION: {v}");
            failed = true;
        }
    }
    if failed {
        eprintln!("chaos-serve sweep FAILED");
        std::process::exit(1);
    }
    println!("chaos-serve sweep passed");
}
