//! Prints the full per-loop analysis report of every benchmark at every
//! algorithm level — the compiler-side view behind Figure 17.
//!
//! Usage: `cargo run -p subsub-bench --bin analyze [kernel-name]`

use subsub_bench::decision_report;
use subsub_core::AlgorithmLevel;
use subsub_kernels::all_kernels;

fn main() {
    let filter = std::env::args().nth(1);
    for k in all_kernels() {
        if let Some(f) = &filter {
            if k.name() != f {
                continue;
            }
        }
        println!("################ {} ################", k.name());
        for level in [
            AlgorithmLevel::Classic,
            AlgorithmLevel::Base,
            AlgorithmLevel::New,
        ] {
            print!("{}", decision_report(k.as_ref(), level));
        }
        println!();
    }
}
