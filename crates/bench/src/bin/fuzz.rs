//! Differential fuzzing CLI: runs seeded adversarial campaigns over the
//! inspect/guard/dispatch trust boundary and replays the committed
//! regression corpus.
//!
//! Usage:
//!   fuzz [SEED...] [--no-kernels] [--arrays N] [--predicates N]
//!        [--sources N] [--corpus DIR | --no-corpus] [--threads N]
//!        [--replay-only]
//!
//! With no seeds given, the CI-pinned trio 7, 31337, 271828 runs.
//! `--replay-only` skips the campaigns and only replays the committed
//! corpus (the quick-tier CI leg). The `SUBSUB_FUZZ_CASES` environment
//! variable scales campaign volume without touching the script: `N`
//! sets predicates to `N`, sources to `4N/5` and arrays-per-shape to
//! `N/25` (so `N=200` reproduces the defaults); explicit CLI flags win
//! over the environment. Exits non-zero on ANY divergence or corpus
//! regression, printing every minimized counterexample so it can be
//! promoted into the corpus.

use std::path::PathBuf;
use std::process::ExitCode;
use subsub_omprt::ThreadPool;
use subsub_oracle::{load_dir, replay_all, run_campaign, FuzzConfig};

const PINNED_SEEDS: [u64; 3] = [7, 31337, 271828];

struct Args {
    seeds: Vec<u64>,
    arrays_per_shape: usize,
    predicates: usize,
    sources: usize,
    kernels: bool,
    corpus: Option<PathBuf>,
    threads: usize,
    replay_only: bool,
}

fn default_corpus_dir() -> Option<PathBuf> {
    // bench and oracle are sibling crates; resolve relative to this
    // crate's manifest so the binary works from any cwd inside the repo.
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let dir = here.parent()?.join("oracle").join("corpus");
    dir.is_dir().then_some(dir)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: Vec::new(),
        arrays_per_shape: 8,
        predicates: 200,
        sources: 160,
        kernels: true,
        corpus: default_corpus_dir(),
        threads: 3,
        replay_only: false,
    };
    // Environment-scaled campaign volume; CLI flags below override it.
    if let Ok(cases) = std::env::var("SUBSUB_FUZZ_CASES") {
        let n: usize = cases
            .parse()
            .map_err(|e| format!("SUBSUB_FUZZ_CASES: {e}"))?;
        if n == 0 {
            return Err("SUBSUB_FUZZ_CASES must be >= 1".into());
        }
        args.predicates = n;
        args.sources = n * 4 / 5;
        args.arrays_per_shape = (n / 25).max(1);
    }
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = |what: &str| it.next().ok_or_else(|| format!("{what} requires a value"));
        match a.as_str() {
            "--no-kernels" => args.kernels = false,
            "--no-corpus" => args.corpus = None,
            "--replay-only" => args.replay_only = true,
            "--arrays" => {
                args.arrays_per_shape = grab("--arrays")?
                    .parse()
                    .map_err(|e| format!("--arrays: {e}"))?
            }
            "--predicates" => {
                args.predicates = grab("--predicates")?
                    .parse()
                    .map_err(|e| format!("--predicates: {e}"))?
            }
            "--sources" => {
                args.sources = grab("--sources")?
                    .parse()
                    .map_err(|e| format!("--sources: {e}"))?
            }
            "--corpus" => args.corpus = Some(PathBuf::from(grab("--corpus")?)),
            "--threads" => {
                args.threads = grab("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: fuzz [SEED...] [--no-kernels] [--arrays N] [--predicates N] \
                     [--sources N] [--corpus DIR | --no-corpus] [--threads N] [--replay-only]"
                        .into(),
                )
            }
            s => {
                let seed: u64 = s
                    .parse()
                    .map_err(|_| format!("unrecognized argument `{s}` (expected a seed)"))?;
                args.seeds.push(seed);
            }
        }
    }
    if args.seeds.is_empty() {
        args.seeds = PINNED_SEEDS.to_vec();
    }
    if args.threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let pool = ThreadPool::new(args.threads);
    let mut failed = false;

    if args.replay_only {
        if args.corpus.is_none() {
            eprintln!("--replay-only with --no-corpus leaves nothing to run");
            return ExitCode::from(2);
        }
    } else {
        for &seed in &args.seeds {
            let cfg = FuzzConfig {
                seed,
                arrays_per_shape: args.arrays_per_shape,
                predicates: args.predicates,
                sources: args.sources,
                kernels: args.kernels,
            };
            let report = run_campaign(&cfg, &pool);
            println!("{report}");
            if !report.is_clean() {
                failed = true;
            }
        }
    }

    if let Some(dir) = &args.corpus {
        match load_dir(dir) {
            Ok(entries) => {
                let regressions = replay_all(&entries, &pool);
                println!(
                    "corpus replay: {} entries from {}, {} regression(s)",
                    entries.len(),
                    dir.display(),
                    regressions.len()
                );
                for r in &regressions {
                    eprintln!("corpus regression: {r}");
                }
                if !regressions.is_empty() {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("corpus load failed: {e}");
                failed = true;
            }
        }
    }

    if failed {
        eprintln!("FUZZ: divergences found");
        ExitCode::FAILURE
    } else {
        println!("FUZZ: all campaigns clean");
        ExitCode::SUCCESS
    }
}
