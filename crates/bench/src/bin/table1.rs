//! Regenerates **Table 1** of the paper: the benchmark suite with input
//! datasets and measured serial execution times.
//!
//! Usage: `cargo run --release -p subsub-bench --bin table1`

use subsub_bench::Table;
use subsub_kernels::all_kernels;
use subsub_omprt::time_repeat;

fn main() {
    let mut t = Table::new(&["Benchmark", "Input Dataset", "Serial Execution time"]);
    for k in all_kernels() {
        for ds in k.datasets() {
            let mut inst = k.prepare(ds);
            let m = time_repeat(3, || {
                inst.reset();
                inst.run_serial();
            });
            t.row(vec![
                k.name().to_string(),
                ds.to_string(),
                format!("{:.4} s", m.mean()),
            ]);
        }
    }
    println!("Table 1: Benchmarks and input data used (synthetic substitutes;");
    println!("see DESIGN.md for the per-matrix mapping). Mean of 3 runs.\n");
    println!("{t}");
}
