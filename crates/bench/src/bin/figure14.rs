//! Regenerates **Figure 14**: improvement of the parallel applications
//! (with subscripted-subscript analysis applied) versus the serial
//! versions on 4, 8 and 16 cores.

use subsub_bench::harness::{measured_fork_join, Series};
use subsub_bench::{variant_for, Table};
use subsub_core::AlgorithmLevel;
use subsub_kernels::kernel_by_name;
use subsub_omprt::{Schedule, ThreadPool};

fn main() {
    let pool = ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let fj = measured_fork_join(&pool);
    println!("Figure 14: improvement over serial with the new analysis applied");
    println!(
        "(simulated cores; measured fork-join = {:.2} µs)\n",
        fj * 1e6
    );

    for name in ["AMGmk", "SDDMM", "UA(transf)"] {
        let k = kernel_by_name(name).unwrap();
        let with = variant_for(k.as_ref(), AlgorithmLevel::New);
        let mut t = Table::new(&["Dataset", "4 cores", "8 cores", "16 cores"]);
        for ds in k.datasets() {
            let series = Series::new(k.as_ref(), ds, &[with], &pool, fj);
            let mut row = vec![ds.to_string()];
            for cores in [4usize, 8, 16] {
                row.push(format!(
                    "{:.2}x",
                    series.speedup(with, cores, Schedule::static_default())
                ));
            }
            t.row(row);
        }
        println!("({name}) speedup over serial:");
        println!("{t}");
    }
}
