//! Regenerates **Figure 15**: parallel efficiency (speedup / cores) of the
//! three applications with increasing core count.

use subsub_bench::harness::{measured_fork_join, Series};
use subsub_bench::{variant_for, Table};
use subsub_core::AlgorithmLevel;
use subsub_kernels::kernel_by_name;
use subsub_omprt::{Schedule, ThreadPool};

fn main() {
    let pool = ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let fj = measured_fork_join(&pool);
    println!("Figure 15: parallel efficiency (speedup / cores), simulated cores\n");

    for name in ["AMGmk", "SDDMM", "UA(transf)"] {
        let k = kernel_by_name(name).unwrap();
        let with = variant_for(k.as_ref(), AlgorithmLevel::New);
        let mut t = Table::new(&["Dataset", "4 cores", "8 cores", "16 cores"]);
        for ds in k.datasets() {
            let series = Series::new(k.as_ref(), ds, &[with], &pool, fj);
            let mut row = vec![ds.to_string()];
            for cores in [4usize, 8, 16] {
                let sp = series.speedup(with, cores, Schedule::static_default());
                row.push(format!("{:.1}%", 100.0 * sp / cores as f64));
            }
            t.row(row);
        }
        println!("({name}) efficiency:");
        println!("{t}");
    }
}
