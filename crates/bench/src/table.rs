//! Minimal aligned text tables for harness output.

/// A simple text table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["x".into(), "1.5".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("x"));
    }

    #[test]
    #[should_panic]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
